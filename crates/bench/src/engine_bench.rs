//! Steady-state engine-throughput measurement (rounds/sec).
//!
//! The repo's every published number is produced by `SyncEngine::step`
//! via `rumor_sim::Driver`, so engine throughput bounds how many
//! replications, populations and scenarios the harness can afford. This
//! module defines the *tracked* benchmark: fixed steady-state scenarios
//! (partial knowledge per paper §2, churn, loss, periodic staleness
//! pulls so traffic never dies down) measured for the paper peer and the
//! Demers anti-entropy baseline, emitted as `BENCH_engine.json` so the
//! perf trajectory is comparable across commits. The criterion bench
//! (`benches/engine_throughput.rs`) wraps the same scenarios.

use crate::json::Json;
use rumor_baselines::AntiEntropy;
use rumor_churn::MarkovChurn;
use rumor_core::{ProtocolConfig, PullStrategy};
use rumor_sim::{PaperProtocol, Protocol, Scenario, TopologySpec, UpdateEvent};
use rumor_types::DataKey;
use std::time::Instant;

/// Seed every engine-bench scenario derives from.
pub const ENGINE_BENCH_SEED: u64 = 77;

/// Rounds of warm-up before the timed window (fills inbox capacities and
/// lets churn reach its stationary mix).
pub const WARMUP_ROUNDS: u32 = 20;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchRow {
    /// Contender label (`"paper"` or `"anti-entropy"`).
    pub contender: String,
    /// Population size `R`.
    pub population: usize,
    /// Rounds in the timed window.
    pub rounds: u32,
    /// Wall-clock seconds for the timed window.
    pub elapsed_secs: f64,
    /// Timed-window throughput.
    pub rounds_per_sec: f64,
    /// Messages sent during the whole run (steady-state traffic proof).
    pub messages: u64,
}

/// The steady-state environment: partial knowledge (each replica knows a
/// small fraction of the replica set, §2), Markov churn and link loss.
pub fn bench_scenario(population: usize, seed: u64) -> Scenario {
    let k = 32.min(population.saturating_sub(1)).max(1);
    Scenario::builder(population, seed)
        .online_fraction(0.7)
        .topology(TopologySpec::RandomSubset { k })
        .churn(MarkovChurn::new(0.97, 0.2).expect("valid churn"))
        .loss(0.03)
        .build()
        .expect("valid bench scenario")
}

/// The paper-peer configuration used by the bench: modest fanout, eager
/// pull with retries, and a short staleness interval so anti-entropy
/// pulls keep the round loop under sustained load forever.
pub fn bench_paper_config(population: usize) -> ProtocolConfig {
    ProtocolConfig::builder(population)
        .fanout_absolute(4)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 3)
        .staleness_rounds(6)
        .build()
        .expect("valid bench config")
}

fn bench_event() -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name("engine-bench"),
        delete: false,
        sequence: 0,
    }
}

fn measure<P: Protocol>(
    label: &str,
    protocol: &P,
    population: usize,
    rounds: u32,
) -> EngineBenchRow {
    let scenario = bench_scenario(population, ENGINE_BENCH_SEED);
    let mut driver = scenario.drive(protocol);
    driver
        .initiate(protocol, None, &bench_event())
        .expect("bench initiator online");
    driver.run_rounds(WARMUP_ROUNDS);
    #[allow(clippy::disallowed_methods)]
    // rumor-lint: allow(determinism) -- wall-clock is the measurand here, never a protocol input
    let start = Instant::now();
    driver.run_rounds(rounds);
    let elapsed = start.elapsed().as_secs_f64();
    EngineBenchRow {
        contender: label.to_owned(),
        population,
        rounds,
        elapsed_secs: elapsed,
        rounds_per_sec: f64::from(rounds) / elapsed.max(f64::MIN_POSITIVE),
        messages: driver.messages(),
    }
}

/// Measures the paper peer's steady-state throughput.
pub fn measure_paper(population: usize, rounds: u32) -> EngineBenchRow {
    let protocol = PaperProtocol::new(bench_paper_config(population));
    measure("paper", &protocol, population, rounds)
}

/// Measures the Demers push-pull anti-entropy baseline (per-round digest
/// exchange: heavy sustained small-message traffic).
pub fn measure_anti_entropy(population: usize, rounds: u32) -> EngineBenchRow {
    measure(
        "anti-entropy",
        &AntiEntropy { push_pull: true },
        population,
        rounds,
    )
}

/// Timed rounds per population: enough for a stable median without
/// letting the largest population dominate the run time.
pub fn default_rounds_for(population: usize) -> u32 {
    match population {
        0..=256 => 2_000,
        257..=2_048 => 300,
        _ => 40,
    }
}

/// Runs the full tracked matrix (both contenders at each population).
pub fn run_matrix(populations: &[usize]) -> Vec<EngineBenchRow> {
    let mut rows = Vec::new();
    for &n in populations {
        let rounds = default_rounds_for(n);
        rows.push(measure_paper(n, rounds));
        rows.push(measure_anti_entropy(n, rounds));
    }
    rows
}

/// Serialises rows into the `BENCH_engine.json` document (schema
/// `rumor-bench/engine/v1`).
pub fn to_json(rows: &[EngineBenchRow]) -> Json {
    Json::obj([
        ("schema", Json::Str("rumor-bench/engine/v1".into())),
        ("seed", Json::Int(ENGINE_BENCH_SEED as i64)),
        ("warmup_rounds", Json::Int(i64::from(WARMUP_ROUNDS))),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("contender", Json::Str(r.contender.clone())),
                            ("population", Json::Int(r.population as i64)),
                            ("rounds", Json::Int(i64::from(r.rounds))),
                            ("elapsed_secs", Json::Num(r.elapsed_secs)),
                            ("rounds_per_sec", Json::Num(r.rounds_per_sec)),
                            ("messages", Json::Int(r.messages as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_produces_traffic_and_throughput() {
        let row = measure_paper(48, 10);
        assert_eq!(row.contender, "paper");
        assert_eq!(row.population, 48);
        assert!(row.rounds_per_sec > 0.0);
        assert!(row.messages > 0, "steady-state scenario must send traffic");
        let ae = measure_anti_entropy(48, 10);
        assert!(ae.messages > 0);
    }

    #[test]
    fn json_schema_is_stable() {
        let rows = vec![EngineBenchRow {
            contender: "paper".into(),
            population: 64,
            rounds: 10,
            elapsed_secs: 0.5,
            rounds_per_sec: 20.0,
            messages: 1234,
        }];
        let text = to_json(&rows).pretty();
        for key in [
            "\"schema\"",
            "rumor-bench/engine/v1",
            "\"seed\"",
            "\"warmup_rounds\"",
            "\"rows\"",
            "\"contender\"",
            "\"population\"",
            "\"rounds\"",
            "\"elapsed_secs\"",
            "\"rounds_per_sec\"",
            "\"messages\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn scenario_traffic_is_deterministic() {
        // Throughput varies with the host; the *workload* must not.
        let a = measure_paper(48, 10).messages;
        let b = measure_paper(48, 10).messages;
        assert_eq!(a, b);
    }
}
