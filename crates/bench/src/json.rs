//! Hand-rolled JSON emission for experiment artefacts.
//!
//! The offline `serde` shim provides no serialization framework, so the
//! experiment payload types serialise through this module instead: a tiny
//! document model ([`Json`]) with a pretty printer, plus [`ToJson`]
//! implementations for every payload `all_experiments` writes. Output is
//! plain standards-compliant JSON, so downstream plotting scripts see the
//! same artefacts they would with `serde_json`.

use crate::ablation::AblationRow;
use crate::artefact::FigureArtefact;
use crate::experiments::{FigureSeries, FloodingRow, PullRow};
use crate::extensions::{BimodalReport, HeterogeneityRow};
use crate::head_to_head::{ContenderRow, ContenderSummary};
use crate::simfig::{ReplicatedSeries, ValidationRow};
use rumor_analysis::{PfSchedule, PushOutcome, PushParams, RoundRow, SchemeResult};
use rumor_metrics::SampleStats;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point, as `serde_json`
    /// would for Rust integer types).
    Int(i64),
    /// A finite number (non-finite values emit as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-prints with two-space indentation, mirroring
    /// `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{:.1}", x));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Conversion into the [`Json`] document model.
pub trait ToJson {
    /// Converts `self` into a JSON document.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Int(i64::from(*self))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for (f64, f64) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![Json::Num(self.0), Json::Num(self.1)])
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

impl ToJson for FigureSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("points", self.points.to_json()),
            ("rounds", self.rounds.to_json()),
            ("died", self.died.to_json()),
            ("total_per_peer", self.total_per_peer.to_json()),
            ("final_awareness", self.final_awareness.to_json()),
        ])
    }
}

impl ToJson for PullRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("f_aware", self.f_aware.to_json()),
            ("attempts", self.attempts.to_json()),
            ("probability", self.probability.to_json()),
        ])
    }
}

impl ToJson for FloodingRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fanout", self.fanout.to_json()),
            ("pure_flooding", self.pure_flooding.to_json()),
            ("gnutella_per_peer", self.gnutella_per_peer.to_json()),
            ("attempts_10_targets", self.attempts_10_targets.to_json()),
        ])
    }
}

impl ToJson for SampleStats {
    /// The replication-statistics block every Monte Carlo artefact
    /// publishes: `mean/ci95/stddev/n` plus extrema. `ci95` is the
    /// half-width of the Student-t interval (`null` when `n < 2`, where
    /// dispersion is unknowable).
    fn to_json(&self) -> Json {
        let ci = self.ci95();
        Json::obj([
            ("mean", self.mean().to_json()),
            ("ci95", ci.half_width().to_json()),
            ("stddev", self.std_dev().to_json()),
            ("n", self.n().to_json()),
            ("min", self.min().to_json()),
            ("max", self.max().to_json()),
            ("median", self.median().to_json()),
        ])
    }
}

impl ToJson for ValidationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("setting", self.setting.to_json()),
            ("model_cost", self.model_cost.to_json()),
            ("sim_cost", self.sim_cost.to_json()),
            ("model_awareness", self.model_awareness.to_json()),
            ("sim_awareness", self.sim_awareness.to_json()),
            ("model_rounds", self.model_rounds.to_json()),
            ("sim_rounds", self.sim_rounds.to_json()),
            ("trials", self.trials.to_json()),
        ])
    }
}

impl ToJson for ReplicatedSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("n", self.n.to_json()),
            ("total_per_peer", self.total_per_peer.to_json()),
            ("rounds", self.rounds.to_json()),
            ("final_awareness", self.final_awareness.to_json()),
            ("died_fraction", self.died_fraction.to_json()),
        ])
    }
}

impl ToJson for FigureArtefact {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", self.figure.to_json()),
            ("analytic", self.analytic.to_json()),
            ("simulated", self.simulated.to_json()),
        ])
    }
}

impl ToJson for ContenderSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", self.protocol.to_json()),
            ("n", self.n.to_json()),
            ("protocol_messages", self.protocol_messages.to_json()),
            ("total_messages", self.total_messages.to_json()),
            ("total_bytes", self.total_bytes.to_json()),
            ("mean_message_bytes", self.mean_message_bytes.to_json()),
            (
                "messages_per_initial_online",
                self.messages_per_initial_online.to_json(),
            ),
            ("coverage", self.coverage.to_json()),
            ("rounds", self.rounds.to_json()),
        ])
    }
}

impl ToJson for BimodalReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("awareness", self.awareness.to_json()),
            ("low", self.low.to_json()),
            ("high", self.high.to_json()),
            ("middle", self.middle.to_json()),
            ("stats", self.stats.to_json()),
            ("is_bimodal", self.is_bimodal().to_json()),
        ])
    }
}

impl ToJson for HeterogeneityRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("awareness", self.awareness.to_json()),
            ("cost", self.cost.to_json()),
            ("rounds", self.rounds.to_json()),
        ])
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("variant", self.variant.to_json()),
            ("push_cost", self.push_cost.to_json()),
            ("duplicates", self.duplicates.to_json()),
            ("total_cost", self.total_cost.to_json()),
            ("awareness", self.awareness.to_json()),
            ("rounds", self.rounds.to_json()),
        ])
    }
}

impl ToJson for PfSchedule {
    fn to_json(&self) -> Json {
        match self {
            PfSchedule::One => Json::Str("One".into()),
            PfSchedule::Constant(p) => Json::obj([("Constant", Json::Num(*p))]),
            PfSchedule::Linear { rate } => {
                Json::obj([("Linear", Json::obj([("rate", Json::Num(*rate))]))])
            }
            PfSchedule::Exponential { base } => {
                Json::obj([("Exponential", Json::obj([("base", Json::Num(*base))]))])
            }
            PfSchedule::OffsetExponential {
                scale,
                base,
                offset,
            } => Json::obj([(
                "OffsetExponential",
                Json::obj([
                    ("scale", Json::Num(*scale)),
                    ("base", Json::Num(*base)),
                    ("offset", Json::Num(*offset)),
                ]),
            )]),
            PfSchedule::FloodThenGossip { p, k } => Json::obj([(
                "FloodThenGossip",
                Json::obj([("p", Json::Num(*p)), ("k", k.to_json())]),
            )]),
        }
    }
}

impl ToJson for PushParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total_replicas", self.total_replicas.to_json()),
            ("online_initial", self.online_initial.to_json()),
            ("sigma", self.sigma.to_json()),
            ("f_r", self.f_r.to_json()),
            ("pf", self.pf.to_json()),
            ("partial_list", self.partial_list.to_json()),
            ("list_threshold", self.list_threshold.to_json()),
            ("update_size", self.update_size.to_json()),
            ("delta", self.delta.to_json()),
            ("max_rounds", self.max_rounds.to_json()),
            ("awareness_target", self.awareness_target.to_json()),
            ("min_new_aware", self.min_new_aware.to_json()),
            ("died_threshold", self.died_threshold.to_json()),
        ])
    }
}

impl ToJson for RoundRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("t", self.t.to_json()),
            ("online", self.online.to_json()),
            ("pushers", self.pushers.to_json()),
            ("messages", self.messages.to_json()),
            ("cum_messages", self.cum_messages.to_json()),
            ("new_aware", self.new_aware.to_json()),
            ("f_aware", self.f_aware.to_json()),
            ("list_len", self.list_len.to_json()),
            ("message_bytes", self.message_bytes.to_json()),
        ])
    }
}

impl ToJson for PushOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("total_messages", self.total_messages.to_json()),
            ("rounds", self.rounds.to_json()),
            ("final_awareness", self.final_awareness.to_json()),
            ("died", self.died.to_json()),
            ("params", self.params.to_json()),
        ])
    }
}

impl ToJson for SchemeResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scheme", self.scheme.to_json()),
            ("messages_per_online", self.messages_per_online.to_json()),
            ("rounds", self.rounds.to_json()),
            ("final_awareness", self.final_awareness.to_json()),
            ("outcome", self.outcome.to_json()),
        ])
    }
}

impl ToJson for ContenderRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", self.protocol.to_json()),
            ("protocol_messages", self.protocol_messages.to_json()),
            ("total_messages", self.total_messages.to_json()),
            ("total_bytes", self.total_bytes.to_json()),
            ("mean_message_bytes", self.mean_message_bytes.to_json()),
            (
                "messages_per_initial_online",
                self.messages_per_initial_online.to_json(),
            ),
            ("coverage", self.coverage.to_json()),
            ("rounds", self.rounds.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_control_characters() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_render_json_style() {
        assert_eq!(Json::Num(3.0).pretty(), "3.0");
        assert_eq!(Json::Num(0.5).pretty(), "0.5");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Int(12).pretty(), "12");
        assert_eq!(7u32.to_json().pretty(), "7");
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn objects_pretty_print_with_indentation() {
        let j = Json::obj([("k", Json::Num(1.0)), ("s", Json::Str("v".into()))]);
        assert_eq!(j.pretty(), "{\n  \"k\": 1.0,\n  \"s\": \"v\"\n}");
    }

    #[test]
    fn flooding_row_includes_every_field() {
        let row = FloodingRow {
            fanout: 4.0,
            pure_flooding: 1.0,
            gnutella_per_peer: 2.0,
            attempts_10_targets: 3.0,
        };
        let text = row.to_json().pretty();
        for key in [
            "fanout",
            "pure_flooding",
            "gnutella_per_peer",
            "attempts_10_targets",
        ] {
            assert!(
                text.contains(&format!("\"{key}\"")),
                "missing {key} in {text}"
            );
        }
    }

    #[test]
    fn sample_stats_emit_mean_ci95_stddev_n() {
        let text = SampleStats::of(&[1.0, 2.0, 3.0]).to_json().pretty();
        for key in ["mean", "ci95", "stddev", "n", "min", "max", "median"] {
            assert!(
                text.contains(&format!("\"{key}\"")),
                "missing {key} in {text}"
            );
        }
        assert!(text.contains("\"n\": 3"));
        // A single sample has an unknowable dispersion: ci95 is null.
        let lone = SampleStats::of(&[5.0]).to_json().pretty();
        assert!(lone.contains("\"ci95\": null"), "{lone}");
    }

    #[test]
    fn figure_series_includes_every_field() {
        let s = FigureSeries {
            label: "c".into(),
            points: vec![(0.1, 2.0)],
            rounds: 3,
            died: false,
            total_per_peer: 2.0,
            final_awareness: 0.9,
        };
        let text = s.to_json().pretty();
        for key in [
            "label",
            "points",
            "rounds",
            "died",
            "total_per_peer",
            "final_awareness",
        ] {
            assert!(
                text.contains(&format!("\"{key}\"")),
                "missing {key} in {text}"
            );
        }
    }
}
