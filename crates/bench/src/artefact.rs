//! Figure artefacts: the analytical curves of each paper figure paired
//! with a replicated simulation overlay, ready for JSON emission.
//!
//! Every figure bin (`fig1` … `fig5`) and `all_experiments` writes one
//! [`FigureArtefact`] per figure. The analytical side reproduces the
//! paper's closed-form curves; the simulated side runs the real protocol
//! at simulator-friendly scale through the replication harness
//! ([`rumor_sim::Experiment`]), so the artefact carries
//! `mean/ci95/stddev/n` blocks downstream plotting draws as error bars.

use crate::experiments::FigureSeries;
use crate::json::ToJson;
use crate::simfig::{self, ReplicatedSeries};
use crate::{experiments, render};
use rumor_types::derive_seed;
use std::path::{Path, PathBuf};

/// The master seed the figure overlays derive their replication
/// substreams from (each figure further derives its own namespace).
pub const DEFAULT_FIGURE_SEED: u64 = 42;

/// One figure's full payload: the paper's analytical curves plus the
/// replicated simulation overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureArtefact {
    /// Artefact name (also the JSON file stem, e.g. `fig2`).
    pub figure: String,
    /// The closed-form curves from `experiments`.
    pub analytic: Vec<FigureSeries>,
    /// The replicated simulation overlay with dispersion statistics.
    pub simulated: Vec<ReplicatedSeries>,
}

impl FigureArtefact {
    /// Writes the artefact as pretty JSON into `dir` as
    /// `<figure>.json`, creating the directory if needed. Returns the
    /// path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or the
    /// write.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.figure));
        std::fs::write(&path, self.to_json().pretty())?;
        Ok(path)
    }

    /// Renders the analytic summary plus the overlay's error bars.
    pub fn render(&self, title: &str) -> String {
        let replications = self.simulated.first().map_or(0, |s| s.n);
        format!(
            "{}\n{}",
            render::render_summary(title, &self.analytic),
            render::render_replicated(
                &format!("{title} — simulated ({replications} replications)"),
                &self.simulated
            )
        )
    }
}

fn figure_seed(master: u64, figure: &str) -> u64 {
    derive_seed(master, figure)
}

/// Fig. 1(a) artefact: the dying-rumor regime plus its simulated
/// counterpart (1% initial availability). Runs only that one setting —
/// it shares labels/seeds with [`simfig::fig1_overlay`]'s first series,
/// so the numbers match Fig. 1(b)'s overlay without recomputing the
/// other four curves.
pub fn fig1a(replications: u32, master_seed: u64) -> FigureArtefact {
    FigureArtefact {
        figure: "fig1a".into(),
        analytic: experiments::fig1a(),
        simulated: vec![simfig::fig1_overlay_low_availability(
            replications,
            figure_seed(master_seed, "fig1"),
        )],
    }
}

/// Fig. 1(b) artefact: varying the initial online population.
pub fn fig1b(replications: u32, master_seed: u64) -> FigureArtefact {
    FigureArtefact {
        figure: "fig1b".into(),
        analytic: experiments::fig1b(),
        simulated: simfig::fig1_overlay(replications, figure_seed(master_seed, "fig1")),
    }
}

/// Fig. 2 artefact: varying the fanout fraction `f_r`.
pub fn fig2(replications: u32, master_seed: u64) -> FigureArtefact {
    FigureArtefact {
        figure: "fig2".into(),
        analytic: experiments::fig2(),
        simulated: simfig::fig2_overlay(replications, figure_seed(master_seed, "fig2")),
    }
}

/// Fig. 3 artefact: varying the stay-online probability `sigma`.
pub fn fig3(replications: u32, master_seed: u64) -> FigureArtefact {
    FigureArtefact {
        figure: "fig3".into(),
        analytic: experiments::fig3(),
        simulated: simfig::fig3_overlay(replications, figure_seed(master_seed, "fig3")),
    }
}

/// Fig. 4 artefact: varying the forwarding schedule `PF(t)`.
pub fn fig4(replications: u32, master_seed: u64) -> FigureArtefact {
    FigureArtefact {
        figure: "fig4".into(),
        analytic: experiments::fig4(),
        simulated: simfig::fig4_overlay(replications, figure_seed(master_seed, "fig4")),
    }
}

/// Fig. 5 artefact: scalability across population sizes.
pub fn fig5(replications: u32, master_seed: u64) -> FigureArtefact {
    FigureArtefact {
        figure: "fig5".into(),
        analytic: experiments::fig5(),
        simulated: simfig::fig5_overlay(replications, figure_seed(master_seed, "fig5")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simfig::PushSetting;

    #[test]
    fn artefact_json_has_stats_blocks() {
        // A tiny artefact (2 replications, smallest population) keeps the
        // test fast while exercising the whole emission path.
        let artefact = FigureArtefact {
            figure: "figX".into(),
            analytic: experiments::fig1a(),
            simulated: vec![simfig::replicated_sim_series(
                "sim",
                PushSetting {
                    total: 200,
                    online: 100,
                    sigma: 1.0,
                    f_r: 0.02,
                    pf_base: None,
                },
                2,
                9,
            )],
        };
        let text = artefact.to_json().pretty();
        for key in [
            "figure",
            "analytic",
            "simulated",
            "mean",
            "ci95",
            "stddev",
            "n",
        ] {
            assert!(
                text.contains(&format!("\"{key}\"")),
                "missing {key} in artefact JSON"
            );
        }
    }

    #[test]
    fn artefact_writes_named_file() {
        let dir = std::env::temp_dir().join("rumor-artefact-test");
        let artefact = FigureArtefact {
            figure: "figtest".into(),
            analytic: Vec::new(),
            simulated: Vec::new(),
        };
        let path = artefact.write_json(&dir).expect("write artefact");
        assert!(path.ends_with("figtest.json"));
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"figure\": \"figtest\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
