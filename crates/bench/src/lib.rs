//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each figure/table has a dedicated binary (`fig1` … `fig5`, `table2`,
//! `pull_phase`, `flooding`, `sim_vs_model`, `ablations`) that prints the
//! same series/rows the paper reports; `all_experiments` runs the lot and
//! emits JSON artefacts. The [`experiments`] module exposes the raw data
//! so integration tests can assert the reproduced *shapes* (who wins, by
//! what factor, where crossovers fall) without parsing text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod artefact;
pub mod cluster_bench;
pub mod engine_bench;
pub mod experiments;
pub mod extensions;
pub mod head_to_head;
pub mod json;
pub mod render;
pub mod simfig;
