//! Simulated head-to-head comparison: every contender mounted into one
//! shared [`Scenario`] — the executable, environment-faithful version of
//! Table 2 — replicated over independent seed substreams.
//!
//! The analytical `experiments::table2` compares closed-form models; this
//! module runs the *actual protocol code* of the paper peer and each
//! baseline through the single generic driver, so every contender sees
//! the identical topology draw, churn trajectory and initial
//! availability, and the same loss/partition parameters (loss
//! realisations ride each protocol's own stream). Replication goes
//! through [`rumor_sim::Experiment`]: each replication is one shared
//! scenario (seeded from its substream) that all contenders mount, and
//! per-contender metrics aggregate into [`SampleStats`] with Student-t
//! 95% confidence intervals.

use rumor_baselines::{
    AntiEntropy, GnutellaFlooding, Gossip1, MongerConfig, MongerStop, RumorMongering,
};
use rumor_core::{ForwardPolicy, ProtocolConfig, PullStrategy};
use rumor_metrics::SampleStats;
use rumor_sim::{Experiment, PaperProtocol, Protocol, Scenario, SimError, UpdateEvent};
use rumor_types::DataKey;
use serde::{Deserialize, Serialize};

/// One contender's outcome in one shared scenario (a single
/// replication's row; [`ContenderSummary`] aggregates them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContenderRow {
    /// Protocol name (from [`Protocol::name`]).
    pub protocol: String,
    /// Messages the protocol itself counts toward the paper's overhead
    /// metric (push messages for the paper peer; 0 where the engine
    /// total is the meaningful number).
    pub protocol_messages: u64,
    /// Total messages sent (all kinds, including acks/feedback).
    pub total_messages: u64,
    /// Encoded wire bytes of `total_messages` (`rumor-wire` frames) —
    /// the bandwidth cost message counts alone hide.
    pub total_bytes: u64,
    /// Mean encoded bytes per sent message.
    pub mean_message_bytes: f64,
    /// Total messages per initially-online peer.
    pub messages_per_initial_online: f64,
    /// Final aware fraction of the online population.
    pub coverage: f64,
    /// Rounds until the tracker stopped (quiescence or convergence).
    pub rounds: u32,
    /// Messages that reached nobody — lost to an offline target or a
    /// link fault (the engine's `wasted()` counter).
    pub total_wasted: u64,
    /// `total_wasted / total_messages` (0 when nothing was sent).
    pub wasted_fraction: f64,
}

/// One contender's replication statistics across every shared scenario:
/// each metric carries mean, stddev, Student-t 95% CI and n.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContenderSummary {
    /// Protocol name (from [`Protocol::name`]).
    pub protocol: String,
    /// Replications aggregated.
    pub n: u32,
    /// Protocol-counted overhead messages, over replications.
    pub protocol_messages: SampleStats,
    /// Total messages sent, over replications.
    pub total_messages: SampleStats,
    /// Encoded wire bytes sent, over replications.
    pub total_bytes: SampleStats,
    /// Mean encoded bytes per sent message, over replications.
    pub mean_message_bytes: SampleStats,
    /// Total messages per initially-online peer, over replications.
    pub messages_per_initial_online: SampleStats,
    /// Final aware fraction of the online population, over replications.
    pub coverage: SampleStats,
    /// Rounds until the tracker stopped, over replications.
    pub rounds: SampleStats,
    /// Wasted (nobody-reached) messages, over replications.
    pub total_wasted: SampleStats,
    /// Wasted fraction of all sent messages, over replications.
    pub wasted_fraction: SampleStats,
}

impl ContenderSummary {
    /// Folds one contender's per-replication rows (all sharing a
    /// protocol name) into replication statistics.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or mixes protocols.
    pub fn fold(rows: &[&ContenderRow]) -> Self {
        let protocol = rows
            .first()
            .expect("at least one replication")
            .protocol
            .clone();
        assert!(
            rows.iter().all(|r| r.protocol == protocol),
            "cannot fold rows from different protocols"
        );
        ContenderSummary {
            protocol,
            n: rows.len() as u32,
            protocol_messages: SampleStats::of(
                &rows
                    .iter()
                    .map(|r| r.protocol_messages as f64)
                    .collect::<Vec<_>>(),
            ),
            total_messages: SampleStats::of(
                &rows
                    .iter()
                    .map(|r| r.total_messages as f64)
                    .collect::<Vec<_>>(),
            ),
            total_bytes: SampleStats::of(
                &rows
                    .iter()
                    .map(|r| r.total_bytes as f64)
                    .collect::<Vec<_>>(),
            ),
            mean_message_bytes: SampleStats::of(
                &rows
                    .iter()
                    .map(|r| r.mean_message_bytes)
                    .collect::<Vec<_>>(),
            ),
            messages_per_initial_online: SampleStats::of(
                &rows
                    .iter()
                    .map(|r| r.messages_per_initial_online)
                    .collect::<Vec<_>>(),
            ),
            coverage: SampleStats::of(&rows.iter().map(|r| r.coverage).collect::<Vec<_>>()),
            rounds: SampleStats::of(&rows.iter().map(|r| f64::from(r.rounds)).collect::<Vec<_>>()),
            total_wasted: SampleStats::of(
                &rows
                    .iter()
                    .map(|r| r.total_wasted as f64)
                    .collect::<Vec<_>>(),
            ),
            wasted_fraction: SampleStats::of(
                &rows.iter().map(|r| r.wasted_fraction).collect::<Vec<_>>(),
            ),
        }
    }
}

/// The baseline parameterisation mounted alongside the paper protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContenderSet {
    /// Flooding fanout (Gnutella and GOSSIP1).
    pub fanout: usize,
    /// Flooding TTL (Gnutella and GOSSIP1).
    pub ttl: u32,
    /// GOSSIP1 forwarding probability beyond hop `k`.
    pub gossip_p: f64,
    /// GOSSIP1 deterministic-flood hops.
    pub gossip_k: u32,
    /// Rumor-mongering stop rule.
    pub monger: MongerConfig,
    /// Anti-entropy mode.
    pub anti_entropy_push_pull: bool,
}

impl Default for ContenderSet {
    fn default() -> Self {
        Self {
            fanout: 5,
            ttl: 10,
            gossip_p: 0.8,
            gossip_k: 2,
            monger: MongerConfig {
                feedback: true,
                stop: MongerStop::Coin { k: 4 },
            },
            anti_entropy_push_pull: false,
        }
    }
}

fn mount<P: Protocol>(scenario: &Scenario, protocol: &P, horizon: u32) -> ContenderRow {
    let mut driver = scenario.drive(protocol);
    let event = UpdateEvent {
        round: 0,
        key: DataKey::from_name("head-to-head"),
        delete: false,
        sequence: 0,
    };
    let update = driver
        .initiate(protocol, None, &event)
        .expect("scenario guarantees an online initiator");
    let report = driver.track_update(protocol, update, horizon);
    ContenderRow {
        protocol: protocol.name(),
        protocol_messages: report.protocol_messages,
        total_messages: report.total_messages,
        total_bytes: report.total_bytes,
        mean_message_bytes: report.mean_message_bytes(),
        messages_per_initial_online: report.messages_per_initial_online(),
        coverage: report.aware_online_fraction,
        rounds: report.rounds,
        total_wasted: report.total_wasted,
        wasted_fraction: report.wasted_fraction(),
    }
}

/// Runs the paper protocol (with `config`) and every baseline in
/// `contenders` through the *same* `scenario`, tracking one update for at
/// most `horizon` rounds each.
pub fn head_to_head(
    scenario: &Scenario,
    config: ProtocolConfig,
    contenders: ContenderSet,
    horizon: u32,
) -> Vec<ContenderRow> {
    let ContenderSet {
        fanout,
        ttl,
        gossip_p,
        gossip_k,
        monger,
        anti_entropy_push_pull,
    } = contenders;
    vec![
        mount(scenario, &PaperProtocol::new(config), horizon),
        mount(scenario, &GnutellaFlooding { fanout, ttl }, horizon),
        mount(
            scenario,
            &Gossip1 {
                fanout,
                ttl,
                p: gossip_p,
                k: gossip_k,
            },
            horizon,
        ),
        mount(
            scenario,
            &AntiEntropy {
                push_pull: anti_entropy_push_pull,
            },
            horizon,
        ),
        mount(scenario, &RumorMongering { config: monger }, horizon),
    ]
}

/// Replicates [`head_to_head`] over independent scenario seeds: each
/// replication builds one shared scenario from its substream (population
/// `population`, everyone online), mounts every contender into it, and
/// the per-contender metrics fold into [`ContenderSummary`] statistics.
pub fn replicated_head_to_head(
    population: usize,
    config: ProtocolConfig,
    contenders: ContenderSet,
    horizon: u32,
    replications: u32,
    master_seed: u64,
) -> Result<Vec<ContenderSummary>, SimError> {
    // Validate the scenario parameters once, outside the worker pool.
    Scenario::builder(population, master_seed).build()?;
    let experiment = Experiment::new(master_seed, replications);
    let per_replication: Vec<Vec<ContenderRow>> = experiment.run(|rep| {
        let scenario = Scenario::builder(population, rep.seed)
            .build()
            .expect("scenario parameters validated above");
        head_to_head(&scenario, config.clone(), contenders, horizon)
    });
    let contender_count = per_replication.first().map_or(0, Vec::len);
    Ok((0..contender_count)
        .map(|i| {
            let rows: Vec<&ContenderRow> = per_replication.iter().map(|rep| &rep[i]).collect();
            ContenderSummary::fold(&rows)
        })
        .collect())
}

/// The default comparison: `population` peers, everyone online, no
/// churn — the Table 2(a) regime — with a paper configuration matching
/// the baselines' fanout and a decaying `PF(t) = 0.9^t`, replicated
/// `replications` times over independent seed substreams.
///
/// # Errors
///
/// Returns [`SimError`] when the scenario or protocol configuration is
/// invalid (e.g. an empty population).
pub fn standard_comparison(
    population: usize,
    replications: u32,
    seed: u64,
) -> Result<Vec<ContenderSummary>, SimError> {
    let contenders = ContenderSet::default();
    let config = ProtocolConfig::builder(population)
        .fanout_absolute(contenders.fanout)
        .forward(ForwardPolicy::ExponentialDecay { base: 0.9 })
        .pull_strategy(PullStrategy::OnDemand)
        .build()?;
    replicated_head_to_head(population, config, contenders, 60, replications, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_contender_covers_a_benign_scenario() {
        let rows = standard_comparison(300, 3, 7).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.n, 3);
            assert!(
                row.coverage.mean() > 0.9,
                "{} only reached {}",
                row.protocol,
                row.coverage.mean()
            );
            assert!(row.total_messages.mean() > 0.0);
            // Every contender has a wire codec: bandwidth is reported,
            // and a frame can never be smaller than its 6-byte header.
            assert!(
                row.total_bytes.mean() > row.total_messages.mean() * 6.0,
                "{} reported no wire bytes",
                row.protocol
            );
            assert!(row.mean_message_bytes.mean() > 6.0);
            assert!(row.coverage.ci95().half_width().is_finite());
        }
    }

    #[test]
    fn paper_protocol_beats_flooding_on_push_overhead() {
        let rows = standard_comparison(300, 3, 7).unwrap();
        let ours = &rows[0];
        let gnutella = &rows[1];
        // §5.6: duplicate-avoidance flooding sends every receiver a full
        // fanout of copies; the partial list plus decaying PF suppress
        // most of that.
        assert!(
            ours.protocol_messages.mean() < gnutella.total_messages.mean(),
            "ours {} !< gnutella {}",
            ours.protocol_messages.mean(),
            gnutella.total_messages.mean()
        );
    }

    #[test]
    fn rows_are_deterministic_per_seed() {
        assert_eq!(
            standard_comparison(150, 2, 3).unwrap(),
            standard_comparison(150, 2, 3).unwrap()
        );
    }

    #[test]
    fn fold_rejects_mixed_protocols() {
        let row = |name: &str| ContenderRow {
            protocol: name.into(),
            protocol_messages: 1,
            total_messages: 2,
            total_bytes: 60,
            mean_message_bytes: 30.0,
            messages_per_initial_online: 0.5,
            coverage: 1.0,
            rounds: 3,
            total_wasted: 0,
            wasted_fraction: 0.0,
        };
        let (a, b) = (row("a"), row("b"));
        let result = std::panic::catch_unwind(|| ContenderSummary::fold(&[&a, &b]));
        assert!(result.is_err());
    }
}
