//! Simulated head-to-head comparison: every contender mounted into one
//! shared [`Scenario`] — the executable, environment-faithful version of
//! Table 2.
//!
//! The analytical `experiments::table2` compares closed-form models; this
//! module runs the *actual protocol code* of the paper peer and each
//! baseline through the single generic driver, so every contender sees
//! the identical topology draw, churn trajectory and initial
//! availability, and the same loss/partition parameters (loss
//! realisations ride each protocol's own stream). Before the redesign
//! the baselines ran on a
//! private loop with hardcoded perfect links and full topology — an
//! easier environment than the paper protocol's.

use rumor_baselines::{
    AntiEntropy, GnutellaFlooding, Gossip1, MongerConfig, MongerStop, RumorMongering,
};
use rumor_core::{ForwardPolicy, ProtocolConfig, PullStrategy};
use rumor_sim::{PaperProtocol, Protocol, Scenario, SimError, UpdateEvent};
use rumor_types::DataKey;
use serde::{Deserialize, Serialize};

/// One contender's outcome in the shared scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContenderRow {
    /// Protocol name (from [`Protocol::name`]).
    pub protocol: String,
    /// Messages the protocol itself counts toward the paper's overhead
    /// metric (push messages for the paper peer; 0 where the engine
    /// total is the meaningful number).
    pub protocol_messages: u64,
    /// Total messages sent (all kinds, including acks/feedback).
    pub total_messages: u64,
    /// Total messages per initially-online peer.
    pub messages_per_initial_online: f64,
    /// Final aware fraction of the online population.
    pub coverage: f64,
    /// Rounds until the tracker stopped (quiescence or convergence).
    pub rounds: u32,
}

/// The baseline parameterisation mounted alongside the paper protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContenderSet {
    /// Flooding fanout (Gnutella and GOSSIP1).
    pub fanout: usize,
    /// Flooding TTL (Gnutella and GOSSIP1).
    pub ttl: u32,
    /// GOSSIP1 forwarding probability beyond hop `k`.
    pub gossip_p: f64,
    /// GOSSIP1 deterministic-flood hops.
    pub gossip_k: u32,
    /// Rumor-mongering stop rule.
    pub monger: MongerConfig,
    /// Anti-entropy mode.
    pub anti_entropy_push_pull: bool,
}

impl Default for ContenderSet {
    fn default() -> Self {
        Self {
            fanout: 5,
            ttl: 10,
            gossip_p: 0.8,
            gossip_k: 2,
            monger: MongerConfig {
                feedback: true,
                stop: MongerStop::Coin { k: 4 },
            },
            anti_entropy_push_pull: false,
        }
    }
}

fn mount<P: Protocol>(scenario: &Scenario, protocol: &P, horizon: u32) -> ContenderRow {
    let mut driver = scenario.drive(protocol);
    let event = UpdateEvent {
        round: 0,
        key: DataKey::from_name("head-to-head"),
        delete: false,
        sequence: 0,
    };
    let update = driver
        .initiate(protocol, None, &event)
        .expect("scenario guarantees an online initiator");
    let report = driver.track_update(protocol, update, horizon);
    ContenderRow {
        protocol: protocol.name(),
        protocol_messages: report.protocol_messages,
        total_messages: report.total_messages,
        messages_per_initial_online: report.messages_per_initial_online(),
        coverage: report.aware_online_fraction,
        rounds: report.rounds,
    }
}

/// Runs the paper protocol (with `config`) and every baseline in
/// `contenders` through the *same* `scenario`, tracking one update for at
/// most `horizon` rounds each.
pub fn head_to_head(
    scenario: &Scenario,
    config: ProtocolConfig,
    contenders: ContenderSet,
    horizon: u32,
) -> Vec<ContenderRow> {
    let ContenderSet {
        fanout,
        ttl,
        gossip_p,
        gossip_k,
        monger,
        anti_entropy_push_pull,
    } = contenders;
    vec![
        mount(scenario, &PaperProtocol::new(config), horizon),
        mount(scenario, &GnutellaFlooding { fanout, ttl }, horizon),
        mount(
            scenario,
            &Gossip1 {
                fanout,
                ttl,
                p: gossip_p,
                k: gossip_k,
            },
            horizon,
        ),
        mount(
            scenario,
            &AntiEntropy {
                push_pull: anti_entropy_push_pull,
            },
            horizon,
        ),
        mount(scenario, &RumorMongering { config: monger }, horizon),
    ]
}

/// The default comparison: `population` peers, everyone online, no
/// churn — the Table 2(a) regime — with a paper configuration matching
/// the baselines' fanout and a decaying `PF(t) = 0.9^t`.
///
/// # Errors
///
/// Returns [`SimError`] when the scenario or protocol configuration is
/// invalid (e.g. an empty population).
pub fn standard_comparison(population: usize, seed: u64) -> Result<Vec<ContenderRow>, SimError> {
    let contenders = ContenderSet::default();
    let scenario = Scenario::builder(population, seed).build()?;
    let config = ProtocolConfig::builder(population)
        .fanout_absolute(contenders.fanout)
        .forward(ForwardPolicy::ExponentialDecay { base: 0.9 })
        .pull_strategy(PullStrategy::OnDemand)
        .build()?;
    Ok(head_to_head(&scenario, config, contenders, 60))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_contender_covers_a_benign_scenario() {
        let rows = standard_comparison(300, 7).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.coverage > 0.9,
                "{} only reached {}",
                row.protocol,
                row.coverage
            );
            assert!(row.total_messages > 0);
        }
    }

    #[test]
    fn paper_protocol_beats_flooding_on_push_overhead() {
        let rows = standard_comparison(300, 7).unwrap();
        let ours = &rows[0];
        let gnutella = &rows[1];
        // §5.6: duplicate-avoidance flooding sends every receiver a full
        // fanout of copies; the partial list plus decaying PF suppress
        // most of that.
        assert!(
            ours.protocol_messages < gnutella.total_messages,
            "ours {} !< gnutella {}",
            ours.protocol_messages,
            gnutella.total_messages
        );
    }

    #[test]
    fn rows_are_deterministic_per_seed() {
        assert_eq!(
            standard_comparison(150, 3).unwrap(),
            standard_comparison(150, 3).unwrap()
        );
    }
}
