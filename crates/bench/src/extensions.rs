//! §8 future-work investigations: bimodal delivery and non-uniform
//! availability.
//!
//! The paper closes with two open questions: "whether there is bimodal
//! behavior even in the assumed environment of very low peer presence"
//! and "the effect of non-uniform online probability of peers … a
//! relatively reliable network backbone would exist and thus would make
//! possible further performance improvements". Both are answerable with
//! the simulator; both are Monte Carlo questions, so the replications
//! run through [`rumor_sim::Experiment`] and report dispersion, not bare
//! means.

use rumor_churn::{Churn, HeterogeneousChurn, MarkovChurn};
use rumor_core::{ProtocolConfig, PullStrategy};
use rumor_metrics::SampleStats;
use rumor_sim::{Experiment, ReplicatedReport, Scenario};
use rumor_types::DataKey;
use serde::{Deserialize, Serialize};

/// Outcome of the bimodality experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BimodalReport {
    /// Final online-awareness of each replication, in replication order.
    pub awareness: Vec<f64>,
    /// Replications ending below 20% awareness ("almost none").
    pub low: usize,
    /// Replications ending above 80% awareness ("almost all").
    pub high: usize,
    /// Replications in between.
    pub middle: usize,
    /// Replication statistics over the awareness samples (mean,
    /// stddev, Student-t 95% CI, percentiles).
    pub stats: SampleStats,
}

impl BimodalReport {
    /// The bimodality claim: most runs end in one of the extreme modes,
    /// and both modes occur.
    pub fn is_bimodal(&self) -> bool {
        let n = self.awareness.len();
        n > 0 && self.low + self.high >= n * 3 / 4 && self.low > 0 && self.high > 0
    }
}

/// Runs `trials` slightly-supercritical pushes (effective online fanout
/// ≈ 2.2, so the epidemic's attack rate sits above 80% while an unlucky
/// initial seeding — ≈ 9% chance that all 15 round-0 messages land on
/// offline peers — still extinguishes the rumor) and buckets terminal
/// awareness: Birman et al.'s "almost all or almost none" reliability
/// model, tested in the paper's low-availability environment.
pub fn bimodal(trials: u32, seed: u64) -> BimodalReport {
    let population = 1_000;
    let awareness: Vec<f64> = Experiment::new(seed, trials).run(|rep| {
        let config = ProtocolConfig::builder(population)
            .fanout_fraction(0.015) // ~15 msgs/push, 15% online → eff. ≈ 2.2
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .expect("valid config");
        let scenario = Scenario::builder(population, rep.seed)
            .online_fraction(0.15)
            .build()
            .expect("valid scenario");
        let mut sim = scenario.simulation(config);
        sim.propagate(DataKey::from_name("bimodal"), "x", 120)
            .aware_online_fraction
    });
    let low = awareness.iter().filter(|&&a| a < 0.2).count();
    let high = awareness.iter().filter(|&&a| a > 0.8).count();
    let middle = awareness.len() - low - high;
    BimodalReport {
        stats: SampleStats::of(&awareness),
        awareness,
        low,
        high,
        middle,
    }
}

/// One arm of the heterogeneity comparison, with replication statistics
/// per metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneityRow {
    /// Scenario label.
    pub scenario: String,
    /// Final awareness of the online population, over replications.
    pub awareness: SampleStats,
    /// Push messages per initially-online peer, over replications.
    pub cost: SampleStats,
    /// Rounds, over replications.
    pub rounds: SampleStats,
}

/// Uniform availability vs a reliable backbone at (approximately) equal
/// mean availability (§8's hypothesis).
pub fn heterogeneity(trials: u32, seed: u64) -> Vec<HeterogeneityRow> {
    let population = 2_000;
    fn run<C: Churn + Clone + Send + Sync + 'static>(
        label: &str,
        churn: C,
        population: usize,
        trials: u32,
        seed_base: u64,
    ) -> HeterogeneityRow {
        let reports = Experiment::new(seed_base, trials).run(|rep| {
            let config = ProtocolConfig::builder(population)
                .fanout_fraction(0.015)
                .pull_strategy(PullStrategy::OnDemand)
                .build()
                .expect("valid config");
            let scenario = Scenario::builder(population, rep.seed)
                .online_fraction(0.28)
                .churn(churn.clone())
                .build()
                .expect("valid scenario");
            let mut sim = scenario.simulation(config);
            sim.propagate(DataKey::from_name("hetero"), "x", 80)
        });
        let agg = ReplicatedReport::from_push(&reports);
        HeterogeneityRow {
            scenario: label.to_owned(),
            awareness: agg.aware_online_fraction,
            cost: agg.messages_per_initial_online,
            rounds: agg.rounds,
        }
    }

    vec![
        run(
            "uniform availability (≈28%)",
            MarkovChurn::new(0.97, 0.0117).expect("valid"),
            population,
            trials,
            seed,
        ),
        run(
            "10% backbone (≈98%) + transient (≈20%)",
            HeterogeneousChurn::backbone(
                2_000,
                0.1,
                MarkovChurn::new(0.999, 0.05).expect("valid"), // ≈ 0.98
                MarkovChurn::new(0.97, 0.0075).expect("valid"), // ≈ 0.2
            )
            .expect("valid classes"),
            population,
            trials,
            seed + 1,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_critical_pushes_are_bimodal() {
        let report = bimodal(40, 7);
        assert!(
            report.is_bimodal(),
            "expected 'almost all or almost none': low={} middle={} high={}",
            report.low,
            report.middle,
            report.high
        );
        assert_eq!(report.stats.n(), 40);
        assert!(report.stats.ci95().half_width().is_finite());
    }

    #[test]
    fn backbone_improves_delivery_at_equal_availability() {
        let rows = heterogeneity(3, 11);
        let (uniform, backbone) = (&rows[0], &rows[1]);
        assert!(
            backbone.awareness.mean() >= uniform.awareness.mean() - 0.02,
            "a reliable backbone must not hurt coverage: {rows:?}"
        );
        // The §8 hypothesis: the backbone acts as a stable relay spine.
        assert!(
            backbone.awareness.mean() > 0.9,
            "backbone scenario covers the population: {rows:?}"
        );
    }
}
