//! Tracked live-cluster throughput measurement (frames/sec, bytes/sec).
//!
//! The `rumor-cluster` runtime is the repo's real-time path: live
//! replicas exchanging encoded `rumor-wire` frames. This module defines
//! its tracked benchmark — the same steady-state environment family as
//! `engine_bench` (partial knowledge, churn, loss, a paper-peer
//! configuration whose staleness pulls keep traffic flowing forever)
//! executed live in both real-time execution modes: `threaded` (one OS
//! thread per replica, practical to N ≈ 1–2k) and `sharded` (a fixed
//! worker pool hosting the cells, the 10k+ scale path). Emitted as
//! `BENCH_cluster.json` so the throughput trajectory is comparable
//! across commits in both frames *and* bytes per second.

use crate::json::Json;
use rumor_baselines::AntiEntropy;
use rumor_churn::MarkovChurn;
use rumor_cluster::{ClusterBuilder, ClusterReport, ShardedCluster, ThreadedCluster};
use rumor_core::{ProtocolConfig, PullStrategy};
use rumor_net::Node;
use rumor_sim::{PaperProtocol, Protocol, Scenario, TopologySpec, UpdateEvent};
use rumor_types::{DataKey, UpdateId};
use rumor_wire::{Decode, Encode, WireVersion};
use std::time::Instant;

/// Seed every cluster-bench scenario derives from.
pub const CLUSTER_BENCH_SEED: u64 = 99;

/// Untimed rounds before the measured window. Long enough that the
/// initial flood has decayed and (under wire v2) most peer pairs have
/// exchanged their first delta pull — the measured window is the
/// steady-state staleness-pull regime, not the transient.
pub const WARMUP_ROUNDS: u32 = 40;

/// Distinct updates seeded at round 0 (one per key). The paper's
/// steady-state regime circulates many updates, so the store every v1
/// pull digests is O(`BENCH_UPDATE_BURST`) — a single-update store
/// would hide exactly the O(store)-vs-O(delta) gap the wire-v2 rows
/// exist to measure.
pub const BENCH_UPDATE_BURST: usize = 16;

/// Round cap for the deterministic convergence probe attached to every
/// row (virtual-time replay of the same scenario seed).
pub const CONVERGENCE_PROBE_CAP: u32 = 400;

/// Which real-time executor a row was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One OS thread per replica.
    Threaded,
    /// A fixed worker pool (available parallelism) hosting all cells.
    Sharded,
}

impl ExecMode {
    /// The label recorded in the row's `mode` field.
    pub fn label(self) -> &'static str {
        match self {
            Self::Threaded => "threaded",
            Self::Sharded => "sharded",
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBenchRow {
    /// Contender label (`"paper"` or `"anti-entropy"`).
    pub contender: String,
    /// Executor label (`"threaded"` or `"sharded"`).
    pub mode: String,
    /// Population size (= replicas mounted).
    pub population: usize,
    /// Rounds in the timed window.
    pub rounds: u32,
    /// Wall-clock seconds for the timed window.
    pub elapsed_secs: f64,
    /// Encoded frames sent per second during the window.
    pub frames_per_sec: f64,
    /// Encoded bytes sent per second during the window.
    pub bytes_per_sec: f64,
    /// Frames sent during the window.
    pub frames: u64,
    /// Bytes sent during the window.
    pub bytes: u64,
    /// Wire codec version the cluster ran (1 or 2).
    pub wire_version: u8,
    /// Logical protocol messages inside `frames` (equal to `frames`
    /// under wire v1; larger under v2 batch frames).
    pub messages: u64,
    /// Mean encoded bytes per frame during the window.
    pub mean_frame_bytes: f64,
    /// Mean encoded bytes per *logical message* during the window — the
    /// bandwidth-diet metric that batching and delta pulls push down.
    pub mean_message_bytes: f64,
    /// First round at which every online node was aware of the tracked
    /// update, from a deterministic virtual-time replay of the same
    /// scenario seed and protocol (threaded/sharded interleavings are
    /// nondeterministic, so convergence is probed out of band). `None`
    /// if the probe cap elapsed first.
    pub converged_round: Option<u32>,
    /// Frames the run failed to decode (whole-run total; asserted zero
    /// for bench traffic, published so regressions are visible in the
    /// artefact, not just in a panic message).
    pub decode_errors: u64,
    /// Frames carrying an unknown wire version (whole-run total).
    pub version_mismatches: u64,
    /// Frames corrupted by Byzantine members before send (whole-run
    /// total; zero under the bench's fault-free plan).
    pub frames_tampered: u64,
}

/// The steady-state environment: partial knowledge (§2), Markov churn
/// and link loss — the engine bench's family, mounted live.
pub fn bench_scenario(population: usize, seed: u64) -> Scenario {
    let k = 32.min(population.saturating_sub(1)).max(1);
    Scenario::builder(population, seed)
        .online_fraction(0.7)
        .topology(TopologySpec::RandomSubset { k })
        .churn(MarkovChurn::new(0.97, 0.2).expect("valid churn"))
        .loss(0.03)
        .build()
        .expect("valid bench scenario")
}

/// The paper-peer configuration under test: staleness pulls keep the
/// cluster under sustained load forever (steady state, not a decaying
/// flood).
pub fn bench_paper_config(population: usize) -> ProtocolConfig {
    ProtocolConfig::builder(population)
        .fanout_absolute(4)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 3)
        .staleness_rounds(6)
        .build()
        .expect("valid bench config")
}

/// The same paper-peer configuration with digest-delta pulls enabled —
/// the wire-v2 contender (pull requests quote a sync mark and answers
/// carry only the missing suffix instead of the full digest).
pub fn bench_paper_config_v2(population: usize) -> ProtocolConfig {
    ProtocolConfig::builder(population)
        .fanout_absolute(4)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 3)
        .staleness_rounds(6)
        .delta_pulls(true)
        .build()
        .expect("valid bench config")
}

fn bench_event(index: usize) -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name(&format!("cluster-bench-{index}")),
        delete: false,
        sequence: 0,
    }
}

/// The cluster surface the timed loop drives — both real-time modes
/// expose it verbatim, so one measurement body serves both.
trait LiveRun {
    fn initiate_update(&mut self, event: &UpdateEvent) -> Option<UpdateId>;
    fn run_rounds(&mut self, n: u32);
    fn frames_sent(&self) -> u64;
    fn bytes_sent(&self) -> u64;
    fn messages_sent(&self) -> u64;
    fn finish_report(self, update: UpdateId) -> ClusterReport;
}

impl<P> LiveRun for ThreadedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    fn initiate_update(&mut self, event: &UpdateEvent) -> Option<UpdateId> {
        self.initiate(event)
    }
    fn run_rounds(&mut self, n: u32) {
        ThreadedCluster::run_rounds(self, n);
    }
    fn frames_sent(&self) -> u64 {
        ThreadedCluster::frames_sent(self)
    }
    fn bytes_sent(&self) -> u64 {
        ThreadedCluster::bytes_sent(self)
    }
    fn messages_sent(&self) -> u64 {
        ThreadedCluster::messages_sent(self)
    }
    fn finish_report(self, update: UpdateId) -> ClusterReport {
        self.finish(update)
    }
}

impl<P> LiveRun for ShardedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    fn initiate_update(&mut self, event: &UpdateEvent) -> Option<UpdateId> {
        self.initiate(event)
    }
    fn run_rounds(&mut self, n: u32) {
        ShardedCluster::run_rounds(self, n);
    }
    fn frames_sent(&self) -> u64 {
        ShardedCluster::frames_sent(self)
    }
    fn bytes_sent(&self) -> u64 {
        ShardedCluster::bytes_sent(self)
    }
    fn messages_sent(&self) -> u64 {
        ShardedCluster::messages_sent(self)
    }
    fn finish_report(self, update: UpdateId) -> ClusterReport {
        self.finish(update)
    }
}

fn measure_on<C: LiveRun>(
    label: &str,
    mode: ExecMode,
    mut cluster: C,
    population: usize,
    rounds: u32,
    wire: WireVersion,
    converged_round: Option<u32>,
) -> ClusterBenchRow {
    let update = cluster
        .initiate_update(&bench_event(0))
        .expect("bench initiator online");
    for i in 1..BENCH_UPDATE_BURST {
        cluster
            .initiate_update(&bench_event(i))
            .expect("bench initiator online");
    }
    cluster.run_rounds(WARMUP_ROUNDS);
    let frames_before = cluster.frames_sent();
    let bytes_before = cluster.bytes_sent();
    let messages_before = cluster.messages_sent();
    #[allow(clippy::disallowed_methods)]
    // rumor-lint: allow(determinism) -- wall-clock is the measurand here, never a protocol input
    let start = Instant::now();
    cluster.run_rounds(rounds);
    let elapsed = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let frames = cluster.frames_sent() - frames_before;
    let bytes = cluster.bytes_sent() - bytes_before;
    let messages = cluster.messages_sent() - messages_before;
    let report = cluster.finish_report(update);
    assert_eq!(report.decode_errors, 0, "bench traffic must decode cleanly");
    assert_eq!(
        report.version_mismatches, 0,
        "bench cluster is version-homogeneous"
    );
    ClusterBenchRow {
        contender: label.to_owned(),
        mode: mode.label().to_owned(),
        population,
        rounds,
        elapsed_secs: elapsed,
        frames_per_sec: frames as f64 / elapsed,
        bytes_per_sec: bytes as f64 / elapsed,
        frames,
        bytes,
        wire_version: wire.byte(),
        messages,
        mean_frame_bytes: if frames == 0 {
            0.0
        } else {
            bytes as f64 / frames as f64
        },
        mean_message_bytes: if messages == 0 {
            0.0
        } else {
            bytes as f64 / messages as f64
        },
        converged_round,
        decode_errors: report.decode_errors,
        version_mismatches: report.version_mismatches,
        frames_tampered: report.frames_tampered,
    }
}

/// Replays the row's scenario seed and protocol in the deterministic
/// virtual-time executor to pin the convergence round — the live
/// executors' interleavings are nondeterministic, so convergence is
/// probed out of band where it is bit-reproducible.
fn probe_converged_round<P>(scenario: &Scenario, protocol: P, wire: WireVersion) -> Option<u32>
where
    P: Protocol,
    <P::Node as Node>::Msg: Encode + Decode,
{
    let mut probe = ClusterBuilder::new(scenario)
        .wire(wire)
        .virtual_time(protocol);
    let update = probe.initiate(&bench_event(0))?;
    for i in 1..BENCH_UPDATE_BURST {
        probe.initiate(&bench_event(i))?;
    }
    probe.run_until_all_online_aware(update, CONVERGENCE_PROBE_CAP)
}

fn measure<P>(
    label: &str,
    mode: ExecMode,
    protocol: P,
    population: usize,
    rounds: u32,
    wire: WireVersion,
) -> ClusterBenchRow
where
    P: Protocol + Clone + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    let scenario = bench_scenario(population, CLUSTER_BENCH_SEED);
    let converged = probe_converged_round(&scenario, protocol.clone(), wire);
    let builder = ClusterBuilder::new(&scenario).wire(wire);
    match mode {
        ExecMode::Threaded => measure_on(
            label,
            mode,
            builder.threaded(protocol),
            population,
            rounds,
            wire,
            converged,
        ),
        ExecMode::Sharded => measure_on(
            label,
            mode,
            builder.sharded(protocol),
            population,
            rounds,
            wire,
            converged,
        ),
    }
}

/// Measures the paper peer on the chosen executor (wire v1).
pub fn measure_paper(population: usize, rounds: u32, mode: ExecMode) -> ClusterBenchRow {
    measure(
        "paper",
        mode,
        PaperProtocol::new(bench_paper_config(population)),
        population,
        rounds,
        WireVersion::V1,
    )
}

/// Measures the paper peer under wire v2: per-peer batch frames plus
/// digest-delta pulls. The bandwidth-diet contender.
pub fn measure_paper_wire_v2(population: usize, rounds: u32, mode: ExecMode) -> ClusterBenchRow {
    measure(
        "paper",
        mode,
        PaperProtocol::new(bench_paper_config_v2(population)),
        population,
        rounds,
        WireVersion::V2,
    )
}

/// Measures Demers push-pull anti-entropy on the chosen executor
/// (per-round digest exchange: sustained small-frame traffic).
pub fn measure_anti_entropy(population: usize, rounds: u32, mode: ExecMode) -> ClusterBenchRow {
    measure(
        "anti-entropy",
        mode,
        AntiEntropy { push_pull: true },
        population,
        rounds,
        WireVersion::V1,
    )
}

/// Timed rounds per population: per-round coordination cost grows with
/// N, so the window shrinks as the population grows.
pub fn default_rounds_for(population: usize) -> u32 {
    match population {
        0..=128 => 400,
        129..=512 => 150,
        513..=2048 => 50,
        _ => 30,
    }
}

/// Runs the full tracked matrix: both contenders at each population,
/// thread-per-node at the `threaded` populations and the worker-pool
/// executor at the `sharded` ones (which is how populations beyond a
/// couple thousand are reachable at all).
pub fn run_matrix(threaded: &[usize], sharded: &[usize]) -> Vec<ClusterBenchRow> {
    let mut rows = Vec::new();
    for (mode, populations) in [(ExecMode::Threaded, threaded), (ExecMode::Sharded, sharded)] {
        for &n in populations {
            let rounds = default_rounds_for(n);
            rows.push(measure_paper(n, rounds, mode));
            rows.push(measure_paper_wire_v2(n, rounds, mode));
            rows.push(measure_anti_entropy(n, rounds, mode));
        }
    }
    rows
}

/// Serialises rows into the `BENCH_cluster.json` document (schema
/// `rumor-bench/cluster/v2` — v2 added `wire_version`, `messages`, the
/// per-frame/per-message byte means and the deterministic
/// `converged_round` probe; the wire-health columns `decode_errors`,
/// `version_mismatches` and `frames_tampered` are additive within v2).
pub fn to_json(rows: &[ClusterBenchRow]) -> Json {
    Json::obj([
        ("schema", Json::Str("rumor-bench/cluster/v2".into())),
        ("seed", Json::Int(CLUSTER_BENCH_SEED as i64)),
        ("warmup_rounds", Json::Int(i64::from(WARMUP_ROUNDS))),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("contender", Json::Str(r.contender.clone())),
                            ("mode", Json::Str(r.mode.clone())),
                            ("population", Json::Int(r.population as i64)),
                            ("rounds", Json::Int(i64::from(r.rounds))),
                            ("elapsed_secs", Json::Num(r.elapsed_secs)),
                            ("frames_per_sec", Json::Num(r.frames_per_sec)),
                            ("bytes_per_sec", Json::Num(r.bytes_per_sec)),
                            ("frames", Json::Int(r.frames as i64)),
                            ("bytes", Json::Int(r.bytes as i64)),
                            ("wire_version", Json::Int(i64::from(r.wire_version))),
                            ("messages", Json::Int(r.messages as i64)),
                            ("mean_frame_bytes", Json::Num(r.mean_frame_bytes)),
                            ("mean_message_bytes", Json::Num(r.mean_message_bytes)),
                            (
                                "converged_round",
                                match r.converged_round {
                                    Some(round) => Json::Int(i64::from(round)),
                                    None => Json::Null,
                                },
                            ),
                            ("decode_errors", Json::Int(r.decode_errors as i64)),
                            ("version_mismatches", Json::Int(r.version_mismatches as i64)),
                            ("frames_tampered", Json::Int(r.frames_tampered as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_produces_live_traffic() {
        let row = measure_paper(24, 10, ExecMode::Threaded);
        assert_eq!(row.contender, "paper");
        assert_eq!(row.mode, "threaded");
        assert_eq!(row.population, 24);
        assert_eq!(row.wire_version, 1);
        assert_eq!(row.messages, row.frames, "wire v1: one message per frame");
        assert!(row.frames > 0, "steady-state scenario must send frames");
        assert!(row.bytes > row.frames * 6, "bytes include frame headers");
        assert!(row.frames_per_sec > 0.0);
        assert!(row.bytes_per_sec > row.frames_per_sec);
        assert!(row.mean_frame_bytes > 6.0);
        assert_eq!(row.mean_frame_bytes, row.mean_message_bytes);
        assert!(
            row.converged_round.is_some(),
            "24-node bench scenario converges well inside the probe cap"
        );
        let ae = measure_anti_entropy(24, 10, ExecMode::Threaded);
        assert!(ae.frames > 0);
    }

    #[test]
    fn wire_v2_row_spends_fewer_bytes_per_message_at_the_same_convergence() {
        let v1 = measure_paper(24, 10, ExecMode::Threaded);
        let v2 = measure_paper_wire_v2(24, 10, ExecMode::Threaded);
        assert_eq!(v2.wire_version, 2);
        assert!(
            v2.messages >= v2.frames,
            "batch frames carry at least one message each"
        );
        assert!(
            v2.mean_message_bytes < v1.mean_message_bytes,
            "the bandwidth diet must show: v2 {} vs v1 {}",
            v2.mean_message_bytes,
            v1.mean_message_bytes
        );
        // Both probes are deterministic replays of the same seed; the
        // diet must not slow the rumor down.
        let v1_round = v1.converged_round.expect("v1 probe converges");
        let v2_round = v2.converged_round.expect("v2 probe converges");
        assert!(
            v2_round <= v1_round,
            "wire v2 must not delay convergence: v2 {v2_round} vs v1 {v1_round}"
        );
    }

    #[test]
    fn sharded_measurement_matches_the_threaded_traffic_profile() {
        // The same scenario seed drives both executors, so a sharded
        // measurement must carry live traffic of the same shape (same
        // environment, different interleavings — counts are close but
        // not equal).
        let row = measure_paper(24, 10, ExecMode::Sharded);
        assert_eq!(row.mode, "sharded");
        assert!(row.frames > 0, "sharded run must send frames");
        assert!(row.bytes > row.frames * 6);
        let ae = measure_anti_entropy(24, 10, ExecMode::Sharded);
        assert!(ae.frames > 0);
    }

    #[test]
    fn json_schema_is_stable() {
        let rows = vec![ClusterBenchRow {
            contender: "paper".into(),
            mode: "sharded".into(),
            population: 64,
            rounds: 10,
            elapsed_secs: 0.5,
            frames_per_sec: 20.0,
            bytes_per_sec: 600.0,
            frames: 10,
            bytes: 300,
            wire_version: 2,
            messages: 25,
            mean_frame_bytes: 30.0,
            mean_message_bytes: 12.0,
            converged_round: Some(7),
            decode_errors: 0,
            version_mismatches: 0,
            frames_tampered: 0,
        }];
        let text = to_json(&rows).pretty();
        for key in [
            "\"schema\"",
            "rumor-bench/cluster/v2",
            "\"seed\"",
            "\"warmup_rounds\"",
            "\"rows\"",
            "\"contender\"",
            "\"mode\"",
            "\"population\"",
            "\"rounds\"",
            "\"elapsed_secs\"",
            "\"frames_per_sec\"",
            "\"bytes_per_sec\"",
            "\"frames\"",
            "\"bytes\"",
            "\"wire_version\"",
            "\"messages\"",
            "\"mean_frame_bytes\"",
            "\"mean_message_bytes\"",
            "\"converged_round\"",
            "\"decode_errors\"",
            "\"version_mismatches\"",
            "\"frames_tampered\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
