//! Section 4.3: pull-phase success probability.

use rumor_bench::experiments::pull_phase;
use rumor_metrics::{Align, Table};

fn main() {
    let (rows, attempts_999) = pull_phase();
    let mut t = Table::new(vec![
        "f_aware".into(),
        "attempts".into(),
        "P(success)".into(),
    ]);
    t.align(0, Align::Right)
        .align(1, Align::Right)
        .align(2, Align::Right);
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.f_aware),
            r.attempts.to_string(),
            format!("{:.6}", r.probability),
        ]);
    }
    println!(
        "== Sec. 4.3: pull success at 10% availability ==\n{}",
        t.render()
    );
    println!(
        "Attempts for 99.9% success at 10% availability (paper Sec. 2: ~65): {:?}",
        attempts_999
    );
}
