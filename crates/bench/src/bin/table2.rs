//! Table 2: scheme comparison (Gnutella / partial list / Haas / ours).

use rumor_analysis::SchemeResult;
use rumor_bench::experiments::{table2, Table2Setting};
use rumor_metrics::{Align, Table};

fn render(title: &str, rows: &[SchemeResult]) {
    let mut t = Table::new(vec![
        "Scheme".into(),
        "msgs/online peer".into(),
        "push rounds".into(),
        "awareness".into(),
    ]);
    t.align(1, Align::Right)
        .align(2, Align::Right)
        .align(3, Align::Right);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{:.3}", r.messages_per_online),
            r.rounds.to_string(),
            format!("{:.4}", r.final_awareness),
        ]);
    }
    println!("== {title} ==\n{}", t.render());
}

fn main() {
    render(
        "Table 2 (setting A): R_on/R = 10^4/10^4, sigma=1, fanout R*f_r = 4 | paper: 4 / 3.92 / 3.136 / 2.215",
        &table2(Table2Setting::A),
    );
    render(
        "Table 2 (setting B): R_on/R = 10^3/10^4, sigma=1, R*f_r = 40 | paper: 40 / 35.22 / 28.49 / 16.35",
        &table2(Table2Setting::B),
    );
}
