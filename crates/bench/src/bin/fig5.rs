//! Figure 5: scalability from 10^4 to 10^8 replicas — analytical curves
//! plus the replicated simulation overlay at simulator scale (95% CIs).
//!
//! `cargo run -p rumor-bench --bin fig5 [-- out_dir]`

use rumor_bench::artefact::{self, DEFAULT_FIGURE_SEED};
use rumor_bench::render::{render_error_bars, render_figure};
use rumor_bench::simfig::OVERLAY_REPLICATIONS;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);
    let artefact = artefact::fig5(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED);
    println!(
        "{}",
        render_figure(
            "Fig. 5: scalability (R_on/R=0.1, sigma=1, PF(t)=0.8*0.7^t+0.2, R*f_r=100)",
            &artefact.analytic
        )
    );
    println!("{}", artefact.render("Fig. 5 summary"));
    println!(
        "{}",
        render_error_bars(
            "Fig. 5 simulated msgs/peer (95% CI)",
            &artefact.simulated,
            |s| &s.total_per_peer
        )
    );
    let path = artefact.write_json(&out_dir).expect("write artefact");
    println!("wrote {}", path.display());
}
