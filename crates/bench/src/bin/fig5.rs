//! Figure 5: scalability from 10^4 to 10^8 replicas.

use rumor_bench::experiments::fig5;
use rumor_bench::render::{render_figure, render_summary};

fn main() {
    let s = fig5();
    println!(
        "{}",
        render_figure(
            "Fig. 5: scalability (R_on/R=0.1, sigma=1, PF(t)=0.8*0.7^t+0.2, R*f_r=100)",
            &s
        )
    );
    println!("{}", render_summary("Fig. 5 summary", &s));
}
