//! Figure 3: impact of the stay-online probability `sigma` — analytical
//! curves plus the replicated simulation overlay (95% CIs).
//!
//! `cargo run -p rumor-bench --bin fig3 [-- out_dir]`

use rumor_bench::artefact::{self, DEFAULT_FIGURE_SEED};
use rumor_bench::render::{render_error_bars, render_figure};
use rumor_bench::simfig::OVERLAY_REPLICATIONS;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);
    let artefact = artefact::fig3(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED);
    println!(
        "{}",
        render_figure(
            "Fig. 3: varying sigma (PF=1, R_on[0]=1000, F_r=0.01)",
            &artefact.analytic
        )
    );
    println!("{}", artefact.render("Fig. 3 summary"));
    println!(
        "{}",
        render_error_bars(
            "Fig. 3 simulated msgs/peer (95% CI)",
            &artefact.simulated,
            |s| &s.total_per_peer
        )
    );
    let path = artefact.write_json(&out_dir).expect("write artefact");
    println!("wrote {}", path.display());
}
