//! Figure 3: impact of the stay-online probability `sigma`.

use rumor_bench::experiments::fig3;
use rumor_bench::render::{render_figure, render_summary};

fn main() {
    let s = fig3();
    println!(
        "{}",
        render_figure("Fig. 3: varying sigma (PF=1, R_on[0]=1000, F_r=0.01)", &s)
    );
    println!("{}", render_summary("Fig. 3 summary", &s));
}
