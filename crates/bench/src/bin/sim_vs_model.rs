//! Validation: the discrete simulator (replicated, with 95% CIs)
//! against the analytical recursion.

use rumor_bench::simfig::standard_suite;
use rumor_metrics::{Align, Table};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let rows = standard_suite(seed);
    let mut t = Table::new(vec![
        "setting".into(),
        "model msgs/peer".into(),
        "sim msgs/peer".into(),
        "err".into(),
        "model aware".into(),
        "sim aware".into(),
        "model rounds".into(),
        "sim rounds".into(),
        "n".into(),
    ]);
    for i in 1..9 {
        t.align(i, Align::Right);
    }
    for r in &rows {
        t.row(vec![
            r.setting.clone(),
            format!("{:.2}", r.model_cost),
            format!(
                "{:.2} ± {:.2}",
                r.sim_cost.mean(),
                r.sim_cost.ci95().half_width()
            ),
            format!("{:.1}%", r.cost_error() * 100.0),
            format!("{:.4}", r.model_awareness),
            format!(
                "{:.4} ± {:.4}",
                r.sim_awareness.mean(),
                r.sim_awareness.ci95().half_width()
            ),
            r.model_rounds.to_string(),
            format!(
                "{:.1} ± {:.1}",
                r.sim_rounds.mean(),
                r.sim_rounds.ci95().half_width()
            ),
            r.trials.to_string(),
        ]);
    }
    println!(
        "== Simulator vs analytical model (seed {seed}, mean ± 95% CI) ==\n{}",
        t.render()
    );
}
