//! Figure 4: impact of the forwarding probability schedule `PF(t)`.

use rumor_bench::experiments::fig4;
use rumor_bench::render::{render_figure, render_summary};

fn main() {
    let s = fig4();
    println!(
        "{}",
        render_figure(
            "Fig. 4: varying PF(t) (sigma=0.9, R_on[0]=1000, F_r=0.01)",
            &s
        )
    );
    println!("{}", render_summary("Fig. 4 summary", &s));
}
