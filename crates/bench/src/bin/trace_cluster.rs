//! Traced virtual-cluster run: mounts the paper peer on the
//! deterministic virtual-time executor with a `MemTracer`, drives a
//! small churned scenario to convergence, and writes the structured
//! trace artefact `TRACE_cluster.json` (schema `rumor-obs/trace/v1`)
//! next to a human-readable timeline.
//!
//! `cargo run --release -p rumor-bench --bin trace_cluster [-- out_dir]`
//!
//! The run is a pure function of the seed — CI's `obs-smoke` job greps
//! the schema out of a fresh artefact and archives it, so the traced
//! path stays working and the format stays stable.

use rumor_churn::MarkovChurn;
use rumor_cluster::{ClusterBuilder, FaultSpec};
use rumor_core::{ProtocolConfig, PullStrategy};
use rumor_obs::render_timeline;
use rumor_sim::{PaperProtocol, Scenario, UpdateEvent};
use rumor_types::DataKey;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);

    let population = 48;
    let scenario = Scenario::builder(population, 2003)
        .online_fraction(0.75)
        .churn(MarkovChurn::new(0.95, 0.3).expect("valid churn"))
        .loss(0.05)
        .build()
        .expect("valid scenario");
    let protocol = PaperProtocol::new(
        ProtocolConfig::builder(population)
            .fanout_absolute(4)
            .pull_strategy(PullStrategy::Eager)
            .pull_retry(2, 3)
            .staleness_rounds(6)
            .build()
            .expect("valid config"),
    );
    let mut cluster = ClusterBuilder::new(&scenario)
        .faults(FaultSpec {
            crash_rate: 0.04,
            restart_after: 3,
            ..FaultSpec::default()
        })
        .expect("sound fault spec")
        .traced()
        .virtual_time(protocol);

    let update = cluster
        .initiate(&UpdateEvent {
            round: 0,
            key: DataKey::from_name("traced-motd"),
            delete: false,
            sequence: 0,
        })
        .expect("someone online");
    let converged = cluster.run_until_all_online_aware(update, 120);
    let trace = cluster
        .take_trace("virtual-cluster")
        .expect("cluster was mounted traced");

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let path = out_dir.join("TRACE_cluster.json");
    std::fs::write(&path, trace.to_json()).expect("write trace artefact");

    println!("{}", render_timeline(&trace));
    match converged {
        Some(round) => println!("converged at round {round}"),
        None => println!("did not converge within the horizon"),
    }
    println!(
        "wrote {} ({} events over {} rounds)",
        path.display(),
        trace.events.len(),
        trace.rounds()
    );
}
