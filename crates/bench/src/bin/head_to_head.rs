//! Simulated head-to-head: every contender in one shared `Scenario`.

use rumor_bench::head_to_head::standard_comparison;
use rumor_metrics::{Align, Table};

fn main() {
    let rows = standard_comparison(1_000, 77).expect("valid comparison setup");
    let mut t = Table::new(vec![
        "protocol".into(),
        "proto msgs".into(),
        "total msgs".into(),
        "msgs/peer".into(),
        "coverage".into(),
        "rounds".into(),
    ]);
    for i in 1..6 {
        t.align(i, Align::Right);
    }
    for r in &rows {
        t.row(vec![
            r.protocol.clone(),
            r.protocol_messages.to_string(),
            r.total_messages.to_string(),
            format!("{:.2}", r.messages_per_initial_online),
            format!("{:.3}", r.coverage),
            r.rounds.to_string(),
        ]);
    }
    println!("== Simulated head-to-head (R = 1000, all online, one shared Scenario) ==");
    println!("{}", t.render());
    println!("note: total msgs include feedback/ack/digest traffic where the protocol uses it.");
}
