//! Simulated head-to-head: every contender in one shared `Scenario`,
//! replicated over independent seed substreams (95% CIs).

use rumor_bench::head_to_head::standard_comparison;
use rumor_bench::render::mean_ci;
use rumor_metrics::{Align, Table};

const REPLICATIONS: u32 = 5;

fn main() {
    let rows = standard_comparison(1_000, REPLICATIONS, 77).expect("valid comparison setup");
    let mut t = Table::new(vec![
        "protocol".into(),
        "proto msgs".into(),
        "total msgs".into(),
        "wire bytes".into(),
        "bytes/msg".into(),
        "msgs/peer".into(),
        "coverage".into(),
        "rounds".into(),
        "n".into(),
    ]);
    for i in 1..9 {
        t.align(i, Align::Right);
    }
    for r in &rows {
        t.row(vec![
            r.protocol.clone(),
            mean_ci(&r.protocol_messages),
            mean_ci(&r.total_messages),
            mean_ci(&r.total_bytes),
            mean_ci(&r.mean_message_bytes),
            mean_ci(&r.messages_per_initial_online),
            mean_ci(&r.coverage),
            mean_ci(&r.rounds),
            r.n.to_string(),
        ]);
    }
    println!(
        "== Simulated head-to-head (R = 1000, all online, {REPLICATIONS} replications, mean ± 95% CI) =="
    );
    println!("{}", t.render());
    println!("note: total msgs include feedback/ack/digest traffic where the protocol uses it;");
    println!("      wire bytes are rumor-wire frame sizes (header + payload) of every send.");
}
