//! Runs every experiment and writes JSON artefacts next to the text
//! output (default directory: `experiments-out/`).

use rumor_bench::ablation;
use rumor_bench::experiments::{self, Table2Setting};
use rumor_bench::head_to_head;
use rumor_bench::render::{render_summary, to_json};
use rumor_bench::simfig;
use std::fs;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);
    fs::create_dir_all(&out_dir).expect("create output directory");
    let write = |name: &str, json: String| {
        let path = out_dir.join(name);
        fs::write(&path, json).expect("write artefact");
        println!("wrote {}", path.display());
    };

    let fig1a = experiments::fig1a();
    let fig1b = experiments::fig1b();
    let fig2 = experiments::fig2();
    let fig3 = experiments::fig3();
    let fig4 = experiments::fig4();
    let fig5 = experiments::fig5();
    println!("{}", render_summary("Fig. 1(a)", &fig1a));
    println!("{}", render_summary("Fig. 1(b)", &fig1b));
    println!("{}", render_summary("Fig. 2", &fig2));
    println!("{}", render_summary("Fig. 3", &fig3));
    println!("{}", render_summary("Fig. 4", &fig4));
    println!("{}", render_summary("Fig. 5", &fig5));
    write("fig1a.json", to_json(&fig1a));
    write("fig1b.json", to_json(&fig1b));
    write("fig2.json", to_json(&fig2));
    write("fig3.json", to_json(&fig3));
    write("fig4.json", to_json(&fig4));
    write("fig5.json", to_json(&fig5));

    let t2a = experiments::table2(Table2Setting::A);
    let t2b = experiments::table2(Table2Setting::B);
    for (name, rows) in [("A", &t2a), ("B", &t2b)] {
        println!("Table 2 setting {name}:");
        for r in rows.iter() {
            println!(
                "  {:<28} {:>8.3} msgs/peer  {:>2} rounds",
                r.scheme, r.messages_per_online, r.rounds
            );
        }
    }
    write("table2a.json", to_json(&t2a));
    write("table2b.json", to_json(&t2b));

    let (pull, attempts) = experiments::pull_phase();
    println!(
        "pull phase rows: {} (99.9% at 10%: {attempts:?} attempts)",
        pull.len()
    );
    write("pull_phase.json", to_json(&pull));

    let flood = experiments::flooding();
    write("flooding.json", to_json(&flood));

    let validation = simfig::standard_suite(42);
    for v in &validation {
        println!(
            "validate {}: model {:.2} vs sim {:.2} msgs/peer ({:.1}% err)",
            v.setting,
            v.model_cost,
            v.sim_cost,
            v.cost_error() * 100.0
        );
    }
    write("sim_vs_model.json", to_json(&validation));

    let versus = head_to_head::standard_comparison(1_000, 77).expect("valid comparison");
    for r in &versus {
        println!(
            "head-to-head {:<48} {:>8} msgs  {:>6.3} coverage  {:>3} rounds",
            r.protocol, r.total_messages, r.coverage, r.rounds
        );
    }
    write("head_to_head.json", to_json(&versus));

    let ab = [
        ("ablation_partial_list.json", ablation::partial_list(42)),
        ("ablation_acks.json", ablation::acks(42)),
        ("ablation_forwarding.json", ablation::forwarding(42)),
        ("ablation_pull.json", ablation::pull_strategies(42)),
    ];
    for (name, rows) in ab {
        write(name, to_json(&rows));
    }
    println!("all experiments complete");
}
