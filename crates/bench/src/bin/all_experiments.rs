//! Runs every experiment and writes JSON artefacts next to the text
//! output (default directory: `experiments-out/`). Every Monte Carlo
//! payload carries replication statistics (`mean/ci95/stddev/n`) from
//! the shared replication harness.

use rumor_bench::artefact::{self, DEFAULT_FIGURE_SEED};
use rumor_bench::experiments::{self, Table2Setting};
use rumor_bench::extensions;
use rumor_bench::head_to_head;
use rumor_bench::render::{render_summary, to_json};
use rumor_bench::simfig::{self, OVERLAY_REPLICATIONS};
use rumor_bench::{ablation, render};
use std::fs;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);
    fs::create_dir_all(&out_dir).expect("create output directory");
    let write = |name: &str, json: String| {
        let path = out_dir.join(name);
        fs::write(&path, json).expect("write artefact");
        println!("wrote {}", path.display());
    };

    let figures = [
        (
            "Fig. 1(a)",
            artefact::fig1a(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED),
        ),
        (
            "Fig. 1(b)",
            artefact::fig1b(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED),
        ),
        (
            "Fig. 2",
            artefact::fig2(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED),
        ),
        (
            "Fig. 3",
            artefact::fig3(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED),
        ),
        (
            "Fig. 4",
            artefact::fig4(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED),
        ),
        (
            "Fig. 5",
            artefact::fig5(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED),
        ),
    ];
    for (title, figure) in &figures {
        println!("{}", render_summary(title, &figure.analytic));
        println!(
            "{}",
            render::render_replicated(&format!("{title} simulated"), &figure.simulated)
        );
        let path = figure.write_json(&out_dir).expect("write artefact");
        println!("wrote {}", path.display());
    }

    let t2a = experiments::table2(Table2Setting::A);
    let t2b = experiments::table2(Table2Setting::B);
    for (name, rows) in [("A", &t2a), ("B", &t2b)] {
        println!("Table 2 setting {name}:");
        for r in rows.iter() {
            println!(
                "  {:<28} {:>8.3} msgs/peer  {:>2} rounds",
                r.scheme, r.messages_per_online, r.rounds
            );
        }
    }
    write("table2a.json", to_json(&t2a));
    write("table2b.json", to_json(&t2b));

    let (pull, attempts) = experiments::pull_phase();
    println!(
        "pull phase rows: {} (99.9% at 10%: {attempts:?} attempts)",
        pull.len()
    );
    write("pull_phase.json", to_json(&pull));

    let flood = experiments::flooding();
    write("flooding.json", to_json(&flood));

    let validation = simfig::standard_suite(42);
    for v in &validation {
        println!(
            "validate {}: model {:.2} vs sim {:.2} ± {:.2} msgs/peer ({:.1}% err, n={})",
            v.setting,
            v.model_cost,
            v.sim_cost.mean(),
            v.sim_cost.ci95().half_width(),
            v.cost_error() * 100.0,
            v.sim_cost.n()
        );
    }
    write("sim_vs_model.json", to_json(&validation));

    let versus = head_to_head::standard_comparison(1_000, OVERLAY_REPLICATIONS, 77)
        .expect("valid comparison");
    for r in &versus {
        println!(
            "head-to-head {:<48} {:>10.1} msgs  {:>6.3} coverage  {:>5.1} rounds  (n={})",
            r.protocol,
            r.total_messages.mean(),
            r.coverage.mean(),
            r.rounds.mean(),
            r.n
        );
    }
    write("head_to_head.json", to_json(&versus));

    let bimodal = extensions::bimodal(60, 42);
    println!(
        "bimodal: low={} middle={} high={} (awareness {})",
        bimodal.low, bimodal.middle, bimodal.high, bimodal.stats
    );
    write("extensions_bimodal.json", to_json(&bimodal));
    let hetero = extensions::heterogeneity(5, 42);
    write("extensions_heterogeneity.json", to_json(&hetero));

    let ab = [
        ("ablation_partial_list.json", ablation::partial_list(42)),
        ("ablation_acks.json", ablation::acks(42)),
        ("ablation_forwarding.json", ablation::forwarding(42)),
        ("ablation_pull.json", ablation::pull_strategies(42)),
    ];
    for (name, rows) in ab {
        write(name, to_json(&rows));
    }
    println!("all experiments complete");
}
