//! Section 6 ablations: partial list, acks, PF tuning, pull strategies.

use rumor_bench::ablation::{acks, forwarding, partial_list, pull_strategies, AblationRow};
use rumor_metrics::{Align, Table};

fn render(title: &str, rows: &[AblationRow]) {
    let mut t = Table::new(vec![
        "variant".into(),
        "push msgs/peer".into(),
        "dups/peer".into(),
        "total msgs/peer".into(),
        "awareness".into(),
        "rounds".into(),
    ]);
    for i in 1..6 {
        t.align(i, Align::Right);
    }
    for r in rows {
        t.row(vec![
            r.variant.clone(),
            format!("{:.2}", r.push_cost),
            format!("{:.2}", r.duplicates),
            format!("{:.2}", r.total_cost),
            format!("{:.4}", r.awareness),
            r.rounds.to_string(),
        ]);
    }
    println!("== {title} ==\n{}", t.render());
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    render(
        "Ablation: partial flooding list (Sec. 4.2)",
        &partial_list(seed),
    );
    render("Ablation: acknowledgements (Sec. 6)", &acks(seed));
    render(
        "Ablation: forwarding policy incl. self-tuning (Sec. 6)",
        &forwarding(seed),
    );
    render("Ablation: pull strategies (Sec. 6)", &pull_strategies(seed));
}
