//! §8 future-work experiments: bimodal delivery distribution and
//! non-uniform (backbone) availability, with replication statistics.

use rumor_bench::extensions::{bimodal, heterogeneity};
use rumor_metrics::{Align, Histogram, Table};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let report = bimodal(60, seed);
    println!("== Bimodal behaviour at near-critical fanout (60 replications) ==");
    println!(
        "almost none (<20%): {}   middle: {}   almost all (>80%): {}   => bimodal: {}",
        report.low,
        report.middle,
        report.high,
        report.is_bimodal()
    );
    println!("awareness: {}", report.stats);
    let mut hist = Histogram::new(0.0, 1.0, 10);
    for &a in &report.awareness {
        hist.record(a);
    }
    let mut t = Table::new(vec!["awareness bucket".into(), "replications".into()]);
    t.align(1, Align::Right);
    for (edge, count) in hist.iter() {
        t.row(vec![format!("{edge:.1}+"), count.to_string()]);
    }
    println!("{}", t.render());

    println!("== Non-uniform availability (backbone), mean ± 95% CI ==");
    let mut t = Table::new(vec![
        "scenario".into(),
        "awareness".into(),
        "msgs/peer".into(),
        "rounds".into(),
        "n".into(),
    ]);
    for i in 1..5 {
        t.align(i, Align::Right);
    }
    for row in heterogeneity(5, seed) {
        t.row(vec![
            row.scenario.clone(),
            format!(
                "{:.4} ± {:.4}",
                row.awareness.mean(),
                row.awareness.ci95().half_width()
            ),
            format!(
                "{:.2} ± {:.2}",
                row.cost.mean(),
                row.cost.ci95().half_width()
            ),
            format!(
                "{:.1} ± {:.1}",
                row.rounds.mean(),
                row.rounds.ci95().half_width()
            ),
            row.awareness.n().to_string(),
        ]);
    }
    println!("{}", t.render());
}
