//! Figure 1: impact of the initial online population size — analytical
//! curves plus the replicated simulation overlay (95% CIs).
//!
//! `cargo run -p rumor-bench --bin fig1 [-- a|b [out_dir]]`

use rumor_bench::artefact::{self, DEFAULT_FIGURE_SEED};
use rumor_bench::render::{render_error_bars, render_figure};
use rumor_bench::simfig::OVERLAY_REPLICATIONS;
use std::path::PathBuf;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let out_dir = std::env::args()
        .nth(2)
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);
    if which == "a" || which == "both" {
        let artefact = artefact::fig1a(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED);
        println!(
            "{}",
            render_figure(
                "Fig. 1(a): R_on[0] = 1% — the rumor dies",
                &artefact.analytic
            )
        );
        println!("{}", artefact.render("Fig. 1(a) summary"));
        let path = artefact.write_json(&out_dir).expect("write artefact");
        println!("wrote {}", path.display());
    }
    if which == "b" || which == "both" {
        let artefact = artefact::fig1b(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED);
        println!(
            "{}",
            render_figure(
                "Fig. 1(b): varying R_on[0]/R (sigma=0.95, PF=1, f_r=0.01)",
                &artefact.analytic
            )
        );
        println!("{}", artefact.render("Fig. 1(b) summary"));
        println!(
            "{}",
            render_error_bars(
                "Fig. 1(b) simulated awareness (95% CI)",
                &artefact.simulated,
                |s| &s.final_awareness
            )
        );
        let path = artefact.write_json(&out_dir).expect("write artefact");
        println!("wrote {}", path.display());
    }
}
