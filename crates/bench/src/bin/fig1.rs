//! Figure 1: impact of the initial online population size.
//!
//! `cargo run -p rumor-bench --bin fig1 [-- a|b]`

use rumor_bench::experiments::{fig1a, fig1b};
use rumor_bench::render::{render_figure, render_summary};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    if which == "a" || which == "both" {
        let s = fig1a();
        println!(
            "{}",
            render_figure("Fig. 1(a): R_on[0] = 1% — the rumor dies", &s)
        );
        println!("{}", render_summary("Fig. 1(a) summary", &s));
    }
    if which == "b" || which == "both" {
        let s = fig1b();
        println!(
            "{}",
            render_figure(
                "Fig. 1(b): varying R_on[0]/R (sigma=0.95, PF=1, f_r=0.01)",
                &s
            )
        );
        println!("{}", render_summary("Fig. 1(b) summary", &s));
    }
}
