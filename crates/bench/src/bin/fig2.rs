//! Figure 2: impact of varying the fanout fraction `f_r`.

use rumor_bench::experiments::fig2;
use rumor_bench::render::{render_figure, render_summary};

fn main() {
    let s = fig2();
    println!(
        "{}",
        render_figure("Fig. 2: varying F_r (sigma=0.9, PF=1, R_on[0]=1000)", &s)
    );
    println!("{}", render_summary("Fig. 2 summary", &s));
}
