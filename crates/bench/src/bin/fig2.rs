//! Figure 2: impact of varying the fanout fraction `f_r` — analytical
//! curves plus the replicated simulation overlay (95% CIs).
//!
//! `cargo run -p rumor-bench --bin fig2 [-- out_dir]`

use rumor_bench::artefact::{self, DEFAULT_FIGURE_SEED};
use rumor_bench::render::{render_error_bars, render_figure};
use rumor_bench::simfig::OVERLAY_REPLICATIONS;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);
    let artefact = artefact::fig2(OVERLAY_REPLICATIONS, DEFAULT_FIGURE_SEED);
    println!(
        "{}",
        render_figure(
            "Fig. 2: varying F_r (sigma=0.9, PF=1, R_on[0]=1000)",
            &artefact.analytic
        )
    );
    println!("{}", artefact.render("Fig. 2 summary"));
    println!(
        "{}",
        render_error_bars(
            "Fig. 2 simulated msgs/peer (95% CI)",
            &artefact.simulated,
            |s| &s.total_per_peer
        )
    );
    let path = artefact.write_json(&out_dir).expect("write artefact");
    println!("wrote {}", path.display());
}
