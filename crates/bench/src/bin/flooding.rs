//! Section 5.6: flooding analysis under Poisson availability.

use rumor_bench::experiments::flooding;
use rumor_metrics::{Align, Table};

fn main() {
    let rows = flooding();
    let mut t = Table::new(vec![
        "fanout R*f_r".into(),
        "pure flooding msgs".into(),
        "dup-avoid msgs/online peer".into(),
        "E[attempts] for 10 online".into(),
    ]);
    for i in 0..4 {
        t.align(i, Align::Right);
    }
    for r in &rows {
        t.row(vec![
            format!("{:.0}", r.fanout),
            format!("{:.0}", r.pure_flooding),
            format!("{:.1}", r.gnutella_per_peer),
            format!("{:.1}", r.attempts_10_targets),
        ]);
    }
    println!(
        "== Sec. 5.6: flooding at R=10^4, 10% availability ==\n{}",
        t.render()
    );
}
