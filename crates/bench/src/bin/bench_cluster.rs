//! Tracked live-cluster throughput benchmark: measures frames/sec and
//! bytes/sec of the threaded `rumor-cluster` runtime for the paper peer
//! and the anti-entropy baseline at several populations and writes
//! `BENCH_cluster.json`.
//!
//! `cargo run --release -p rumor-bench --bin bench_cluster [-- out_dir]`
//! `cargo run --release -p rumor-bench --bin bench_cluster -- --smoke [out_dir]`
//!
//! `--smoke` runs a tiny population for a handful of rounds — CI uses it
//! (under a wall-clock bound) to keep the live-cluster path working and
//! the artefact schema stable.

use rumor_bench::cluster_bench::{self, ClusterBenchRow};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);

    let rows: Vec<ClusterBenchRow> = if smoke {
        vec![
            cluster_bench::measure_paper(32, 20),
            cluster_bench::measure_anti_entropy(32, 20),
        ]
    } else {
        cluster_bench::run_matrix(&[64, 256, 1_024])
    };

    println!(
        "{:<14} {:>10} {:>8} {:>14} {:>14} {:>12}",
        "contender", "population", "rounds", "frames/sec", "bytes/sec", "bytes/frame"
    );
    for row in &rows {
        println!(
            "{:<14} {:>10} {:>8} {:>14.1} {:>14.1} {:>12.1}",
            row.contender,
            row.population,
            row.rounds,
            row.frames_per_sec,
            row.bytes_per_sec,
            row.bytes as f64 / (row.frames.max(1)) as f64,
        );
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_cluster.json");
    std::fs::write(&path, cluster_bench::to_json(&rows).pretty() + "\n").expect("write artefact");
    println!("wrote {}", path.display());
}
