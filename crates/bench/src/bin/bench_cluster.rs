//! Tracked live-cluster throughput benchmark: measures frames/sec and
//! bytes/sec of the `rumor-cluster` runtime for the paper peer and the
//! anti-entropy baseline at several populations — thread-per-node up to
//! N = 1024, the sharded worker-pool executor up to N = 10000 — and
//! writes `BENCH_cluster.json`.
//!
//! `cargo run --release -p rumor-bench --bin bench_cluster [-- out_dir]`
//! `cargo run --release -p rumor-bench --bin bench_cluster -- --smoke [out_dir]`
//!
//! `--smoke` runs tiny windows (including one sharded N = 4096 row) —
//! CI uses it (under a wall-clock bound) to keep both live-cluster
//! executors working and the artefact schema stable.

use rumor_bench::cluster_bench::{self, ClusterBenchRow, ExecMode};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);

    let rows: Vec<ClusterBenchRow> = if smoke {
        vec![
            cluster_bench::measure_paper(32, 20, ExecMode::Threaded),
            cluster_bench::measure_paper_wire_v2(32, 20, ExecMode::Threaded),
            cluster_bench::measure_anti_entropy(32, 20, ExecMode::Threaded),
            cluster_bench::measure_paper(32, 20, ExecMode::Sharded),
            cluster_bench::measure_paper(4_096, 10, ExecMode::Sharded),
        ]
    } else {
        cluster_bench::run_matrix(&[64, 256, 1_024], &[256, 1_024, 4_096, 10_000])
    };

    println!(
        "{:<14} {:<5} {:<9} {:>10} {:>8} {:>14} {:>14} {:>12} {:>11}",
        "contender",
        "wire",
        "mode",
        "population",
        "rounds",
        "frames/sec",
        "bytes/sec",
        "bytes/msg",
        "conv round"
    );
    for row in &rows {
        println!(
            "{:<14} {:<5} {:<9} {:>10} {:>8} {:>14.1} {:>14.1} {:>12.1} {:>11}",
            row.contender,
            format!("v{}", row.wire_version),
            row.mode,
            row.population,
            row.rounds,
            row.frames_per_sec,
            row.bytes_per_sec,
            row.mean_message_bytes,
            row.converged_round
                .map_or_else(|| "-".to_owned(), |r| r.to_string()),
        );
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_cluster.json");
    std::fs::write(&path, cluster_bench::to_json(&rows).pretty() + "\n").expect("write artefact");
    println!("wrote {}", path.display());
}
