//! Tracked engine-throughput benchmark: measures steady-state rounds/sec
//! for the paper peer and the anti-entropy baseline at several
//! populations and writes `BENCH_engine.json`.
//!
//! `cargo run --release -p rumor-bench --bin bench_engine [-- out_dir]`
//! `cargo run --release -p rumor-bench --bin bench_engine -- --smoke [out_dir]`
//!
//! `--smoke` runs a tiny population for a handful of rounds — CI uses it
//! to keep the bench path compiling and the artefact schema stable.

use rumor_bench::engine_bench::{self, EngineBenchRow};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or_else(|| PathBuf::from("experiments-out"), PathBuf::from);

    let rows: Vec<EngineBenchRow> = if smoke {
        vec![
            engine_bench::measure_paper(64, 20),
            engine_bench::measure_anti_entropy(64, 20),
        ]
    } else {
        engine_bench::run_matrix(&[128, 1_000, 8_000])
    };

    println!(
        "{:<14} {:>10} {:>8} {:>12} {:>14}",
        "contender", "population", "rounds", "rounds/sec", "messages"
    );
    for row in &rows {
        println!(
            "{:<14} {:>10} {:>8} {:>12.1} {:>14}",
            row.contender, row.population, row.rounds, row.rounds_per_sec, row.messages
        );
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_engine.json");
    std::fs::write(&path, engine_bench::to_json(&rows).pretty() + "\n").expect("write artefact");
    println!("wrote {}", path.display());
}
