//! Text rendering for experiment outputs.

use crate::experiments::FigureSeries;
use rumor_metrics::{Align, Table};

/// Renders one figure's series set the way the paper's plots read: one
/// block per curve, points as `(F_aware, msgs/R_on[0])` rows.
pub fn render_figure(title: &str, series: &[FigureSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    for s in series {
        out.push_str(&format!(
            "\n-- {} (rounds: {}, total: {:.3} msgs/peer, awareness: {:.4}{})\n",
            s.label,
            s.rounds,
            s.total_per_peer,
            s.final_awareness,
            if s.died { ", DIED" } else { "" }
        ));
        let mut t = Table::new(vec!["F_aware".into(), "msgs/R_on[0]".into()]);
        t.align(0, Align::Right).align(1, Align::Right);
        for &(x, y) in &s.points {
            t.row(vec![format!("{x:.4}"), format!("{y:.3}")]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Renders a compact one-line-per-curve summary.
pub fn render_summary(title: &str, series: &[FigureSeries]) -> String {
    let mut t = Table::new(vec![
        "curve".into(),
        "msgs/peer".into(),
        "rounds".into(),
        "awareness".into(),
        "died".into(),
    ]);
    for i in 1..=3 {
        t.align(i, Align::Right);
    }
    for s in series {
        t.row(vec![
            s.label.clone(),
            format!("{:.3}", s.total_per_peer),
            s.rounds.to_string(),
            format!("{:.4}", s.final_awareness),
            if s.died { "yes" } else { "no" }.into(),
        ]);
    }
    format!("== {title} ==\n{}", t.render())
}

/// Serialises any experiment payload to pretty JSON.
///
/// Serialization goes through the crate-local [`crate::json`] emitter
/// (the offline `serde` shim provides no framework); the output matches
/// what `serde_json::to_string_pretty` would produce for these types.
pub fn to_json<T: crate::json::ToJson>(value: &T) -> String {
    value.to_json().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FigureSeries> {
        vec![FigureSeries {
            label: "curve-a".into(),
            points: vec![(0.1, 1.0), (0.9, 3.0)],
            rounds: 2,
            died: false,
            total_per_peer: 3.0,
            final_awareness: 0.9,
        }]
    }

    #[test]
    fn figure_rendering_contains_points_and_label() {
        let text = render_figure("Fig. X", &sample());
        assert!(text.contains("Fig. X"));
        assert!(text.contains("curve-a"));
        assert!(text.contains("0.9000"));
        assert!(text.contains("3.000"));
    }

    #[test]
    fn summary_is_one_row_per_curve() {
        let text = render_summary("Fig. X", &sample());
        assert_eq!(text.lines().count(), 4, "title + header + separator + row");
    }

    #[test]
    fn json_contains_all_fields_and_balances() {
        let json = to_json(&sample());
        for key in [
            "label",
            "points",
            "rounds",
            "died",
            "total_per_peer",
            "final_awareness",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}:\n{json}"
            );
        }
        assert!(json.contains("curve-a"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    }
}
