//! Text rendering for experiment outputs, including replication error
//! bars.

use crate::experiments::FigureSeries;
use crate::simfig::ReplicatedSeries;
use rumor_metrics::{Align, SampleStats, Table};

/// Renders one figure's series set the way the paper's plots read: one
/// block per curve, points as `(F_aware, msgs/R_on[0])` rows.
pub fn render_figure(title: &str, series: &[FigureSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    for s in series {
        out.push_str(&format!(
            "\n-- {} (rounds: {}, total: {:.3} msgs/peer, awareness: {:.4}{})\n",
            s.label,
            s.rounds,
            s.total_per_peer,
            s.final_awareness,
            if s.died { ", DIED" } else { "" }
        ));
        let mut t = Table::new(vec!["F_aware".into(), "msgs/R_on[0]".into()]);
        t.align(0, Align::Right).align(1, Align::Right);
        for &(x, y) in &s.points {
            t.row(vec![format!("{x:.4}"), format!("{y:.3}")]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Renders a compact one-line-per-curve summary.
pub fn render_summary(title: &str, series: &[FigureSeries]) -> String {
    let mut t = Table::new(vec![
        "curve".into(),
        "msgs/peer".into(),
        "rounds".into(),
        "awareness".into(),
        "died".into(),
    ]);
    for i in 1..=3 {
        t.align(i, Align::Right);
    }
    for s in series {
        t.row(vec![
            s.label.clone(),
            format!("{:.3}", s.total_per_peer),
            s.rounds.to_string(),
            format!("{:.4}", s.final_awareness),
            if s.died { "yes" } else { "no" }.into(),
        ]);
    }
    format!("== {title} ==\n{}", t.render())
}

/// Formats a replicated metric as `mean ± ci95-half-width` (`± ?` when
/// `n < 2` leaves the dispersion unknowable) — the one cell format every
/// table and bin uses for Monte Carlo numbers.
pub fn mean_ci(stats: &SampleStats) -> String {
    let half = stats.ci95().half_width();
    if half.is_finite() {
        format!("{:.3} ± {:.3}", stats.mean(), half)
    } else {
        format!("{:.3} ± ?", stats.mean())
    }
}

/// Renders one replicated curve per row: every metric as
/// `mean ± ci95-half-width` over `n` replications.
pub fn render_replicated(title: &str, series: &[ReplicatedSeries]) -> String {
    let mut t = Table::new(vec![
        "curve".into(),
        "msgs/peer".into(),
        "rounds".into(),
        "awareness".into(),
        "died".into(),
        "n".into(),
    ]);
    for i in 1..6 {
        t.align(i, Align::Right);
    }
    for s in series {
        t.row(vec![
            s.label.clone(),
            mean_ci(&s.total_per_peer),
            mean_ci(&s.rounds),
            mean_ci(&s.final_awareness),
            format!("{:.0}%", s.died_fraction * 100.0),
            s.n.to_string(),
        ]);
    }
    format!("== {title} ==\n{}", t.render())
}

/// Draws textual error bars for one metric across replicated curves: a
/// shared axis from the smallest to the largest observed value, each
/// curve's Student-t 95% interval as `[───]` with `•` at the mean.
pub fn render_error_bars(
    title: &str,
    series: &[ReplicatedSeries],
    metric: impl Fn(&ReplicatedSeries) -> &SampleStats,
) -> String {
    const WIDTH: usize = 48;
    let stats: Vec<&SampleStats> = series.iter().map(&metric).collect();
    let axis_lo = stats.iter().map(|s| s.min()).fold(f64::INFINITY, f64::min);
    let axis_hi = stats
        .iter()
        .map(|s| s.max())
        .fold(f64::NEG_INFINITY, f64::max);
    let mut out = format!("== {title} ==\n");
    if series.is_empty() || !axis_lo.is_finite() || !axis_hi.is_finite() {
        return out;
    }
    let span = (axis_hi - axis_lo).max(f64::EPSILON);
    let pos = |x: f64| -> usize {
        (((x - axis_lo) / span) * (WIDTH - 1) as f64)
            .round()
            .clamp(0.0, (WIDTH - 1) as f64) as usize
    };
    let label_width = series.iter().map(|s| s.label.len()).max().unwrap_or(0);
    for s in series {
        let stats = metric(s);
        let ci = stats.ci95();
        let (lo, hi) = if ci.half_width().is_finite() {
            (
                pos(ci.lower.max(stats.min())),
                pos(ci.upper.min(stats.max())),
            )
        } else {
            (pos(stats.min()), pos(stats.max()))
        };
        let mut bar = vec![' '; WIDTH];
        for cell in bar.iter_mut().take(hi + 1).skip(lo) {
            *cell = '─';
        }
        bar[lo] = '[';
        bar[hi] = ']';
        bar[pos(stats.mean())] = '•';
        out.push_str(&format!(
            "{:<label_width$} {} {}\n",
            s.label,
            bar.into_iter().collect::<String>(),
            mean_ci(stats),
        ));
    }
    out.push_str(&format!(
        "{:<label_width$} axis: {axis_lo:.3} … {axis_hi:.3}\n",
        ""
    ));
    out
}

/// Serialises any experiment payload to pretty JSON.
///
/// Serialization goes through the crate-local [`crate::json`] emitter
/// (the offline `serde` shim provides no framework); the output matches
/// what `serde_json::to_string_pretty` would produce for these types.
pub fn to_json<T: crate::json::ToJson>(value: &T) -> String {
    value.to_json().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FigureSeries> {
        vec![FigureSeries {
            label: "curve-a".into(),
            points: vec![(0.1, 1.0), (0.9, 3.0)],
            rounds: 2,
            died: false,
            total_per_peer: 3.0,
            final_awareness: 0.9,
        }]
    }

    #[test]
    fn figure_rendering_contains_points_and_label() {
        let text = render_figure("Fig. X", &sample());
        assert!(text.contains("Fig. X"));
        assert!(text.contains("curve-a"));
        assert!(text.contains("0.9000"));
        assert!(text.contains("3.000"));
    }

    #[test]
    fn summary_is_one_row_per_curve() {
        let text = render_summary("Fig. X", &sample());
        assert_eq!(text.lines().count(), 4, "title + header + separator + row");
    }

    fn replicated_sample() -> Vec<ReplicatedSeries> {
        vec![
            ReplicatedSeries {
                label: "curve-a".into(),
                n: 4,
                total_per_peer: SampleStats::of(&[1.0, 2.0, 3.0, 4.0]),
                rounds: SampleStats::of(&[5.0, 6.0, 7.0, 8.0]),
                final_awareness: SampleStats::of(&[0.9, 0.92, 0.94, 0.96]),
                died_fraction: 0.25,
                wasted_fraction: SampleStats::of(&[0.1, 0.2, 0.1, 0.2]),
                per_round_sent_mean: vec![4.0, 2.0, 1.0],
            },
            ReplicatedSeries {
                label: "curve-b".into(),
                n: 4,
                total_per_peer: SampleStats::of(&[10.0, 11.0, 12.0, 13.0]),
                rounds: SampleStats::of(&[5.0, 5.0, 5.0, 5.0]),
                final_awareness: SampleStats::of(&[1.0, 1.0, 1.0, 1.0]),
                died_fraction: 0.0,
                wasted_fraction: SampleStats::of(&[0.0, 0.0, 0.0, 0.0]),
                per_round_sent_mean: vec![8.0, 3.0],
            },
        ]
    }

    #[test]
    fn replicated_summary_shows_ci_and_n() {
        let text = render_replicated("Rep", &replicated_sample());
        assert!(text.contains("curve-a"));
        assert!(text.contains("±"), "must render the CI half-width: {text}");
        assert!(text.contains("25%"), "died fraction as a percentage");
        assert!(text.lines().count() == 5, "title + header + rule + 2 rows");
    }

    #[test]
    fn error_bars_share_one_axis() {
        let text = render_error_bars("Bars", &replicated_sample(), |s| &s.total_per_peer);
        assert!(text.contains("curve-a") && text.contains("curve-b"));
        assert!(text.contains('•'), "mean marker");
        assert!(text.contains('[') && text.contains(']'), "CI brackets");
        assert!(text.contains("axis: 1.000 … 13.000"), "{text}");
        // curve-b sits right of curve-a on the shared axis.
        let a_pos = text
            .lines()
            .find(|l| l.starts_with("curve-a"))
            .and_then(|l| l.find('•'))
            .unwrap();
        let b_pos = text
            .lines()
            .find(|l| l.starts_with("curve-b"))
            .and_then(|l| l.find('•'))
            .unwrap();
        assert!(a_pos < b_pos, "axis ordering: {text}");
    }

    #[test]
    fn error_bars_handle_empty_input() {
        let text = render_error_bars("Empty", &[], |s| &s.total_per_peer);
        assert_eq!(text, "== Empty ==\n");
    }

    #[test]
    fn json_contains_all_fields_and_balances() {
        let json = to_json(&sample());
        for key in [
            "label",
            "points",
            "rounds",
            "died",
            "total_per_peer",
            "final_awareness",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}:\n{json}"
            );
        }
        assert!(json.contains("curve-a"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    }
}
