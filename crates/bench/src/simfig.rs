//! Simulator-vs-model validation (the paper's §8 future-work item) and
//! the replicated simulation overlays behind the figure artefacts.
//!
//! Every Monte Carlo number here is produced by the one replication
//! harness ([`rumor_sim::Experiment`]): independent per-replication seed
//! substreams, parallel fan-out, and [`SampleStats`] aggregation with
//! Student-t 95% confidence intervals — no private trial loops.

use crate::experiments::FigureSeries;
use rumor_analysis::{PfSchedule, PushModel, PushParams};
use rumor_churn::MarkovChurn;
use rumor_core::{ForwardPolicy, ProtocolConfig, PullStrategy};
use rumor_metrics::SampleStats;
use rumor_sim::{Experiment, ReplicatedReport, Scenario, TopologySpec};
use rumor_types::{derive_seed, DataKey};
use serde::{Deserialize, Serialize};

/// A model/simulation pairing for one parameter set. The simulated side
/// carries full replication statistics (mean, stddev, 95% CI, n).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Parameter description.
    pub setting: String,
    /// Analytical messages per initially-online peer.
    pub model_cost: f64,
    /// Simulated messages per initially-online peer, over replications.
    pub sim_cost: SampleStats,
    /// Analytical final awareness.
    pub model_awareness: f64,
    /// Simulated final awareness, over replications.
    pub sim_awareness: SampleStats,
    /// Analytical rounds.
    pub model_rounds: u32,
    /// Simulated rounds, over replications.
    pub sim_rounds: SampleStats,
    /// Replications run.
    pub trials: u32,
}

impl ValidationRow {
    /// Relative cost error of the model against the simulated mean.
    pub fn cost_error(&self) -> f64 {
        if self.sim_cost.mean() == 0.0 {
            return 0.0;
        }
        (self.model_cost - self.sim_cost.mean()).abs() / self.sim_cost.mean()
    }
}

/// One pure-push parameter set — the axes the paper's figures vary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PushSetting {
    /// Total population `R`.
    pub total: usize,
    /// Initially online population `R_on(0)`.
    pub online: usize,
    /// Stay-online probability `σ`.
    pub sigma: f64,
    /// Fanout fraction `f_r`.
    pub f_r: f64,
    /// `PF(t) = base^t` when `Some`, `PF = 1` when `None`.
    pub pf_base: Option<f64>,
}

impl PushSetting {
    fn config(&self) -> ProtocolConfig {
        let pf = match self.pf_base {
            None => ForwardPolicy::Always,
            Some(b) => ForwardPolicy::ExponentialDecay { base: b },
        };
        ProtocolConfig::builder(self.total)
            .fanout_fraction(self.f_r)
            .forward(pf)
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .expect("valid protocol parameters")
    }

    fn scenario(&self, seed: u64) -> Scenario {
        Scenario::builder(self.total, seed)
            .online_count(self.online)
            .topology(TopologySpec::Full)
            .churn(MarkovChurn::new(self.sigma, 0.0).expect("valid sigma"))
            .build()
            .expect("valid scenario")
    }
}

/// Replicated pure-push runs of one parameter set through the simulator:
/// the Monte Carlo workhorse behind [`validate`] and the figure
/// overlays. `trials` replications fan out over the worker pool; the
/// returned aggregate is bit-identical for any thread count.
pub fn replicated_push(setting: PushSetting, trials: u32, master_seed: u64) -> ReplicatedReport {
    let experiment = Experiment::new(master_seed, trials);
    let reports = experiment.run(|rep| {
        let mut sim = setting.scenario(rep.seed).simulation(setting.config());
        sim.propagate(DataKey::from_name("validation"), "v", 100)
    });
    ReplicatedReport::from_push(&reports)
}

/// Runs one parameter set through both the recursion and the simulator.
///
/// The simulator executes the real protocol with the partial list and the
/// given `PF(t)` over `trials` independent replications; the model
/// evaluates the §4.2 recursion with identical parameters. Pull machinery
/// is disabled (pure push phase, as in the analysis).
pub fn validate(
    total: usize,
    online: usize,
    sigma: f64,
    f_r: f64,
    pf_base: Option<f64>,
    trials: u32,
    seed: u64,
) -> ValidationRow {
    let pf_model = match pf_base {
        None => PfSchedule::One,
        Some(b) => PfSchedule::Exponential { base: b },
    };
    let model =
        PushModel::new(PushParams::new(total as f64, online as f64, sigma, f_r).with_pf(pf_model))
            .run();
    let sim = replicated_push(
        PushSetting {
            total,
            online,
            sigma,
            f_r,
            pf_base,
        },
        trials,
        seed,
    );
    ValidationRow {
        setting: format!(
            "R={total} R_on(0)={online} sigma={sigma} f_r={f_r} PF={}",
            pf_base.map_or("1".to_owned(), |b| format!("{b}^t"))
        ),
        model_cost: model.messages_per_initial_online(),
        sim_cost: sim.messages_per_initial_online,
        model_awareness: model.final_awareness,
        sim_awareness: sim.aware_online_fraction,
        model_rounds: model.rounds,
        sim_rounds: sim.rounds,
        trials,
    }
}

/// The standard validation suite: Fig. 2/3/4-style settings at
/// simulator-friendly scale.
pub fn standard_suite(seed: u64) -> Vec<ValidationRow> {
    vec![
        // Fig. 2-style: varying fanout.
        validate(2_000, 600, 1.0, 0.01, None, 3, seed),
        validate(2_000, 600, 1.0, 0.02, None, 3, seed + 1),
        // Fig. 3-style: churn during the push.
        validate(2_000, 600, 0.9, 0.02, None, 3, seed + 2),
        // Fig. 4-style: decaying PF.
        validate(2_000, 600, 1.0, 0.02, Some(0.9), 3, seed + 3),
    ]
}

/// Converts a simulated run into a [`FigureSeries`] for overlay plots.
pub fn sim_series(
    label: impl Into<String>,
    total: usize,
    online: usize,
    sigma: f64,
    f_r: f64,
    seed: u64,
) -> FigureSeries {
    let config = ProtocolConfig::builder(total)
        .fanout_fraction(f_r)
        .pull_strategy(PullStrategy::OnDemand)
        .build()
        .expect("valid protocol parameters");
    let scenario = Scenario::builder(total, seed)
        .online_count(online)
        .churn(MarkovChurn::new(sigma, 0.0).expect("valid sigma"))
        .build()
        .expect("valid scenario");
    let mut sim = scenario.simulation(config);
    let report = sim.propagate(DataKey::from_name("series"), "v", 100);
    FigureSeries {
        label: label.into(),
        points: report.awareness_cost_series(),
        rounds: report.rounds,
        died: report.aware_online_fraction < 0.9,
        total_per_peer: report.messages_per_initial_online(),
        final_awareness: report.aware_online_fraction,
    }
}

/// One replicated simulated curve: per-replication metrics aggregated
/// into [`SampleStats`] — the `mean/ci95/stddev/n` block the figure
/// artefacts publish and `render` draws as error bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedSeries {
    /// Legend label.
    pub label: String,
    /// Replications aggregated.
    pub n: u32,
    /// Total messages per initially-online peer, over replications.
    pub total_per_peer: SampleStats,
    /// Push rounds until termination, over replications.
    pub rounds: SampleStats,
    /// Final online awareness, over replications.
    pub final_awareness: SampleStats,
    /// Fraction of replications ending below 90% online awareness (the
    /// figures' "died" criterion, now a probability instead of a flag).
    pub died_fraction: f64,
    /// Fraction of sent messages that reached nobody (offline target or
    /// link fault), over replications — the engine's `wasted()` counter,
    /// previously collected but unpublished.
    pub wasted_fraction: SampleStats,
    /// Mean messages sent in round `t` across the replications that
    /// reached round `t` — the published form of
    /// `EngineStats::per_round_sent`.
    pub per_round_sent_mean: Vec<f64>,
}

/// Mean messages sent per round across replications: entry `t` averages
/// the round-`t` send counts (diffs of the cumulative per-round trace)
/// over the replications whose run lasted at least `t + 1` rounds.
fn mean_per_round_sent(reports: &[rumor_sim::PushReport]) -> Vec<f64> {
    let horizon = reports.iter().map(|r| r.per_round.len()).max().unwrap_or(0);
    (0..horizon)
        .map(|t| {
            let (sum, n) = reports
                .iter()
                .filter(|r| t < r.per_round.len())
                .map(|r| {
                    let prev = if t == 0 {
                        0
                    } else {
                        r.per_round[t - 1].cum_messages
                    };
                    (r.per_round[t].cum_messages - prev) as f64
                })
                .fold((0.0, 0u32), |(s, n), sent| (s + sent, n + 1));
            if n == 0 {
                0.0
            } else {
                sum / f64::from(n)
            }
        })
        .collect()
}

/// Runs `replications` independent pushes of one parameter set and folds
/// them into a [`ReplicatedSeries`].
pub fn replicated_sim_series(
    label: impl Into<String>,
    setting: PushSetting,
    replications: u32,
    master_seed: u64,
) -> ReplicatedSeries {
    let experiment = Experiment::new(master_seed, replications);
    let reports = experiment.run(|rep| {
        let mut sim = setting.scenario(rep.seed).simulation(setting.config());
        sim.propagate(DataKey::from_name("overlay"), "v", 100)
    });
    let died = reports
        .iter()
        .filter(|r| r.aware_online_fraction < 0.9)
        .count();
    let agg = ReplicatedReport::from_push(&reports);
    ReplicatedSeries {
        label: label.into(),
        n: agg.n,
        total_per_peer: agg.messages_per_initial_online,
        rounds: agg.rounds,
        final_awareness: agg.aware_online_fraction,
        died_fraction: if reports.is_empty() {
            0.0
        } else {
            died as f64 / reports.len() as f64
        },
        wasted_fraction: SampleStats::of(
            &reports
                .iter()
                .map(rumor_sim::PushReport::wasted_fraction)
                .collect::<Vec<_>>(),
        ),
        per_round_sent_mean: mean_per_round_sent(&reports),
    }
}

/// Default replication count for the figure overlays.
pub const OVERLAY_REPLICATIONS: u32 = 5;

/// Simulator population for the scaled-down figure overlays (the paper's
/// R = 10⁴…10⁸ parameter sets, executed at simulator-friendly scale).
const OVERLAY_POPULATION: usize = 2_000;

fn overlay_seed(master_seed: u64, label: &str) -> u64 {
    derive_seed(master_seed, label)
}

fn fig1_series(online: usize, replications: u32, master_seed: u64) -> ReplicatedSeries {
    let label = format!("sim R_on[0]/R = {online}/{OVERLAY_POPULATION}");
    let seed = overlay_seed(master_seed, &label);
    replicated_sim_series(
        label,
        PushSetting {
            total: OVERLAY_POPULATION,
            online,
            sigma: 0.95,
            f_r: 0.01,
            pf_base: None,
        },
        replications,
        seed,
    )
}

/// Fig. 1 overlay: varying the initial online population (1%…100% of
/// R = 2000; σ = 0.95, PF = 1, f_r = 0.01).
pub fn fig1_overlay(replications: u32, master_seed: u64) -> Vec<ReplicatedSeries> {
    [20, 100, 200, 600, 2_000]
        .into_iter()
        .map(|online| fig1_series(online, replications, master_seed))
        .collect()
}

/// The Fig. 1(a) dying-rumor setting alone (1% online) — same
/// label/seed derivation as [`fig1_overlay`]'s first series, so the
/// numbers agree without recomputing the other four curves.
pub fn fig1_overlay_low_availability(replications: u32, master_seed: u64) -> ReplicatedSeries {
    fig1_series(20, replications, master_seed)
}

/// Fig. 2 overlay: varying f_r (σ = 0.9, PF = 1, 10% online).
pub fn fig2_overlay(replications: u32, master_seed: u64) -> Vec<ReplicatedSeries> {
    [0.005, 0.01, 0.02, 0.05]
        .into_iter()
        .map(|f_r| {
            let label = format!("sim F_r = {f_r}");
            let seed = overlay_seed(master_seed, &label);
            replicated_sim_series(
                label,
                PushSetting {
                    total: OVERLAY_POPULATION,
                    online: 200,
                    sigma: 0.9,
                    f_r,
                    pf_base: None,
                },
                replications,
                seed,
            )
        })
        .collect()
}

/// Fig. 3 overlay: varying σ (PF = 1, 10% online, f_r = 0.01).
pub fn fig3_overlay(replications: u32, master_seed: u64) -> Vec<ReplicatedSeries> {
    [1.0, 0.95, 0.8, 0.7, 0.5]
        .into_iter()
        .map(|sigma| {
            let label = format!("sim Sigma = {sigma}");
            let seed = overlay_seed(master_seed, &label);
            replicated_sim_series(
                label,
                PushSetting {
                    total: OVERLAY_POPULATION,
                    online: 200,
                    sigma,
                    f_r: 0.01,
                    pf_base: None,
                },
                replications,
                seed,
            )
        })
        .collect()
}

/// Fig. 4 overlay: varying the forwarding schedule PF(t) (σ = 0.9,
/// 10% online, f_r = 0.01).
pub fn fig4_overlay(replications: u32, master_seed: u64) -> Vec<ReplicatedSeries> {
    [None, Some(0.9), Some(0.7), Some(0.5)]
        .into_iter()
        .map(|pf_base| {
            let label = match pf_base {
                None => "sim PF = 1".to_owned(),
                Some(b) => format!("sim PF(t) = {b}^t"),
            };
            let seed = overlay_seed(master_seed, &label);
            replicated_sim_series(
                label,
                PushSetting {
                    total: OVERLAY_POPULATION,
                    online: 200,
                    sigma: 0.9,
                    f_r: 0.01,
                    pf_base,
                },
                replications,
                seed,
            )
        })
        .collect()
}

/// Fig. 5 overlay: scalability — populations 500…4000 at 10% online,
/// fanout fixed at R·f_r = 20, PF(t) = 0.9ᵗ.
pub fn fig5_overlay(replications: u32, master_seed: u64) -> Vec<ReplicatedSeries> {
    [500usize, 1_000, 2_000, 4_000]
        .into_iter()
        .map(|total| {
            let label = format!("sim Total population: {total}");
            let seed = overlay_seed(master_seed, &label);
            replicated_sim_series(
                label,
                PushSetting {
                    total,
                    online: total / 10,
                    sigma: 1.0,
                    f_r: 20.0 / total as f64,
                    pf_base: Some(0.9),
                },
                replications,
                seed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_sim_agree_on_full_availability() {
        let row = validate(1_000, 1_000, 1.0, 0.01, None, 3, 42);
        assert!(
            row.cost_error() < 0.15,
            "model {} vs sim {}",
            row.model_cost,
            row.sim_cost.mean()
        );
        assert!(
            (row.model_awareness - row.sim_awareness.mean()).abs() < 0.05,
            "{row:?}"
        );
        assert_eq!(row.sim_cost.n(), 3);
    }

    #[test]
    fn model_and_sim_agree_under_churn() {
        let row = validate(1_000, 300, 0.9, 0.03, None, 3, 43);
        assert!(row.cost_error() < 0.25, "{row:?}");
        assert!(
            (row.model_awareness - row.sim_awareness.mean()).abs() < 0.1,
            "{row:?}"
        );
    }

    #[test]
    fn sim_series_has_monotone_axes() {
        let s = sim_series("sim", 500, 500, 1.0, 0.02, 7);
        assert!(s.points.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(s.points.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn replicated_series_carries_dispersion() {
        let s = replicated_sim_series(
            "rep",
            PushSetting {
                total: 300,
                online: 150,
                sigma: 0.95,
                f_r: 0.02,
                pf_base: None,
            },
            4,
            11,
        );
        assert_eq!(s.n, 4);
        assert_eq!(s.total_per_peer.n(), 4);
        assert!(s.final_awareness.mean() > 0.0 && s.final_awareness.mean() <= 1.0);
        assert!(s.final_awareness.ci95().half_width().is_finite());
        assert!((0.0..=1.0).contains(&s.died_fraction));
        assert!((0.0..=1.0).contains(&s.wasted_fraction.mean()));
        assert_eq!(
            s.per_round_sent_mean.len(),
            s.rounds.max() as usize,
            "one mean per executed round"
        );
        assert!(s.per_round_sent_mean.iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn replicated_series_is_deterministic_per_seed() {
        let small = PushSetting {
            total: 200,
            online: 100,
            sigma: 1.0,
            f_r: 0.02,
            pf_base: None,
        };
        let a = replicated_sim_series("d", small, 3, 5);
        let b = replicated_sim_series("d", small, 3, 5);
        assert_eq!(a, b);
    }
}
