//! Simulator-vs-model validation (the paper's §8 future-work item).

use crate::experiments::FigureSeries;
use rumor_analysis::{PfSchedule, PushModel, PushParams};
use rumor_churn::MarkovChurn;
use rumor_core::{ForwardPolicy, ProtocolConfig, PullStrategy};
use rumor_sim::{Scenario, TopologySpec};
use rumor_types::DataKey;
use serde::{Deserialize, Serialize};

/// A model/simulation pairing for one parameter set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Parameter description.
    pub setting: String,
    /// Analytical messages per initially-online peer.
    pub model_cost: f64,
    /// Simulated mean messages per initially-online peer.
    pub sim_cost: f64,
    /// Analytical final awareness.
    pub model_awareness: f64,
    /// Simulated mean final awareness.
    pub sim_awareness: f64,
    /// Analytical rounds.
    pub model_rounds: u32,
    /// Simulated mean rounds.
    pub sim_rounds: f64,
    /// Simulation trials averaged.
    pub trials: u32,
}

impl ValidationRow {
    /// Relative cost error of the model against the simulation.
    pub fn cost_error(&self) -> f64 {
        if self.sim_cost == 0.0 {
            return 0.0;
        }
        (self.model_cost - self.sim_cost).abs() / self.sim_cost
    }
}

/// Runs one parameter set through both the recursion and the simulator.
///
/// The simulator executes the real protocol with the partial list and the
/// given `PF(t)`; the model evaluates the §4.2 recursion with identical
/// parameters. Pull machinery is disabled (pure push phase, as in the
/// analysis).
pub fn validate(
    total: usize,
    online: usize,
    sigma: f64,
    f_r: f64,
    pf_base: Option<f64>,
    trials: u32,
    seed: u64,
) -> ValidationRow {
    let pf_model = match pf_base {
        None => PfSchedule::One,
        Some(b) => PfSchedule::Exponential { base: b },
    };
    let model =
        PushModel::new(PushParams::new(total as f64, online as f64, sigma, f_r).with_pf(pf_model))
            .run();

    let pf_sim = match pf_base {
        None => ForwardPolicy::Always,
        Some(b) => ForwardPolicy::ExponentialDecay { base: b },
    };
    let mut costs = Vec::new();
    let mut awareness = Vec::new();
    let mut rounds = Vec::new();
    for trial in 0..trials {
        let config = ProtocolConfig::builder(total)
            .fanout_fraction(f_r)
            .forward(pf_sim)
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .expect("valid protocol parameters");
        let scenario = Scenario::builder(total, seed.wrapping_add(u64::from(trial)))
            .online_count(online)
            .topology(TopologySpec::Full)
            .churn(MarkovChurn::new(sigma, 0.0).expect("valid sigma"))
            .build()
            .expect("valid scenario");
        let mut sim = scenario.simulation(config);
        let report = sim.propagate(DataKey::from_name("validation"), "v", 100);
        costs.push(report.messages_per_initial_online());
        awareness.push(report.aware_online_fraction);
        rounds.push(f64::from(report.rounds));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    ValidationRow {
        setting: format!(
            "R={total} R_on(0)={online} sigma={sigma} f_r={f_r} PF={}",
            pf_base.map_or("1".to_owned(), |b| format!("{b}^t"))
        ),
        model_cost: model.messages_per_initial_online(),
        sim_cost: mean(&costs),
        model_awareness: model.final_awareness,
        sim_awareness: mean(&awareness),
        model_rounds: model.rounds,
        sim_rounds: mean(&rounds),
        trials,
    }
}

/// The standard validation suite: Fig. 2/3/4-style settings at
/// simulator-friendly scale.
pub fn standard_suite(seed: u64) -> Vec<ValidationRow> {
    vec![
        // Fig. 2-style: varying fanout.
        validate(2_000, 600, 1.0, 0.01, None, 3, seed),
        validate(2_000, 600, 1.0, 0.02, None, 3, seed + 1),
        // Fig. 3-style: churn during the push.
        validate(2_000, 600, 0.9, 0.02, None, 3, seed + 2),
        // Fig. 4-style: decaying PF.
        validate(2_000, 600, 1.0, 0.02, Some(0.9), 3, seed + 3),
    ]
}

/// Converts a simulated run into a [`FigureSeries`] for overlay plots.
pub fn sim_series(
    label: impl Into<String>,
    total: usize,
    online: usize,
    sigma: f64,
    f_r: f64,
    seed: u64,
) -> FigureSeries {
    let config = ProtocolConfig::builder(total)
        .fanout_fraction(f_r)
        .pull_strategy(PullStrategy::OnDemand)
        .build()
        .expect("valid protocol parameters");
    let scenario = Scenario::builder(total, seed)
        .online_count(online)
        .churn(MarkovChurn::new(sigma, 0.0).expect("valid sigma"))
        .build()
        .expect("valid scenario");
    let mut sim = scenario.simulation(config);
    let report = sim.propagate(DataKey::from_name("series"), "v", 100);
    FigureSeries {
        label: label.into(),
        points: report.awareness_cost_series(),
        rounds: report.rounds,
        died: report.aware_online_fraction < 0.9,
        total_per_peer: report.messages_per_initial_online(),
        final_awareness: report.aware_online_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_sim_agree_on_full_availability() {
        let row = validate(1_000, 1_000, 1.0, 0.01, None, 3, 42);
        assert!(
            row.cost_error() < 0.15,
            "model {} vs sim {}",
            row.model_cost,
            row.sim_cost
        );
        assert!(
            (row.model_awareness - row.sim_awareness).abs() < 0.05,
            "{row:?}"
        );
    }

    #[test]
    fn model_and_sim_agree_under_churn() {
        let row = validate(1_000, 300, 0.9, 0.03, None, 3, 43);
        assert!(row.cost_error() < 0.25, "{row:?}");
        assert!(
            (row.model_awareness - row.sim_awareness).abs() < 0.1,
            "{row:?}"
        );
    }

    #[test]
    fn sim_series_has_monotone_axes() {
        let s = sim_series("sim", 500, 500, 1.0, 0.02, 7);
        assert!(s.points.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(s.points.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
