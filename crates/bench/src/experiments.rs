//! Analytical-model experiments: Figures 1–5, Table 2, pull phase, §5.6.

use rumor_analysis::{
    attempts_for_confidence, compare_schemes, expected_attempts_poisson,
    gnutella_messages_per_online_peer, pull_success_probability, pure_flooding_messages,
    PfSchedule, PushModel, PushParams, Scheme, SchemeResult,
};
use serde::{Deserialize, Serialize};

/// One plotted curve: a label plus `(f_aware, messages/R_on(0))` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Legend label.
    pub label: String,
    /// `(x = aware fraction, y = cumulative messages per initially-online
    /// peer)` — the paper's axes.
    pub points: Vec<(f64, f64)>,
    /// Push rounds until termination (the paper's latency read-out).
    pub rounds: u32,
    /// Whether the rumor died below the died-threshold (Fig. 1(a) regime).
    pub died: bool,
    /// Total messages per initially-online peer.
    pub total_per_peer: f64,
    /// Final awareness.
    pub final_awareness: f64,
}

fn series(label: impl Into<String>, params: PushParams) -> FigureSeries {
    let outcome = PushModel::new(params).run();
    FigureSeries {
        label: label.into(),
        points: outcome.awareness_cost_series(),
        rounds: outcome.rounds,
        died: outcome.died,
        total_per_peer: outcome.messages_per_initial_online(),
        final_awareness: outcome.final_awareness,
    }
}

/// Fig. 1(a): R = 10⁴, R_on(0) = 100 (1%), σ = 0.95, PF = 1, f_r = 0.01 —
/// the regime where the rumor cannot take off.
pub fn fig1a() -> Vec<FigureSeries> {
    vec![series(
        "R_on[0]/R = 100/10000",
        PushParams::new(10_000.0, 100.0, 0.95, 0.01),
    )]
}

/// Fig. 1(b): varying the initial online population
/// R_on(0) ∈ {100, 500, 1000, 3000, 10000} of R = 10⁴.
pub fn fig1b() -> Vec<FigureSeries> {
    [100.0, 500.0, 1_000.0, 3_000.0, 10_000.0]
        .into_iter()
        .map(|on| {
            series(
                format!("R_on[0]/R = {on}/10000"),
                PushParams::new(10_000.0, on, 0.95, 0.01),
            )
        })
        .collect()
}

/// Fig. 2: varying f_r ∈ {0.005, 0.01, 0.02, 0.05}; R = 10⁴,
/// R_on(0) = 1000, σ = 0.9, PF = 1.
pub fn fig2() -> Vec<FigureSeries> {
    [0.005, 0.01, 0.02, 0.05]
        .into_iter()
        .map(|f_r| {
            series(
                format!("F_r = {f_r}"),
                PushParams::new(10_000.0, 1_000.0, 0.9, f_r),
            )
        })
        .collect()
}

/// Fig. 3: varying σ ∈ {1, 0.95, 0.8, 0.7, 0.5}; R = 10⁴,
/// R_on(0) = 1000, PF = 1, f_r = 0.01.
pub fn fig3() -> Vec<FigureSeries> {
    [1.0, 0.95, 0.8, 0.7, 0.5]
        .into_iter()
        .map(|sigma| {
            series(
                format!("Sigma = {sigma}"),
                PushParams::new(10_000.0, 1_000.0, sigma, 0.01),
            )
        })
        .collect()
}

/// Fig. 4: varying PF(t) ∈ {1, 0.8, 1 − 0.1t, 0.9ᵗ, 0.7ᵗ, 0.5ᵗ};
/// R = 10⁴, R_on(0) = 1000, σ = 0.9, f_r = 0.01.
pub fn fig4() -> Vec<FigureSeries> {
    let schedules = [
        ("PF = 1", PfSchedule::One),
        ("PF = 0.8", PfSchedule::Constant(0.8)),
        ("PF(t) = 1 - 0.1t", PfSchedule::Linear { rate: 0.1 }),
        ("PF(t) = 0.9^t", PfSchedule::Exponential { base: 0.9 }),
        ("PF(t) = 0.7^t", PfSchedule::Exponential { base: 0.7 }),
        ("PF(t) = 0.5^t", PfSchedule::Exponential { base: 0.5 }),
    ];
    schedules
        .into_iter()
        .map(|(label, pf)| {
            series(
                label,
                PushParams::new(10_000.0, 1_000.0, 0.9, 0.01).with_pf(pf),
            )
        })
        .collect()
}

/// Fig. 5: scalability — total population 10⁴…10⁸ with R_on/R = 0.1,
/// σ = 1, PF(t) = 0.8·0.7ᵗ + 0.2 and f_r chosen so each pusher sends 100
/// messages (10 expected online targets).
pub fn fig5() -> Vec<FigureSeries> {
    [1e4, 1e5, 1e6, 1e7, 1e8]
        .into_iter()
        .map(|r| {
            let f_r = 100.0 / r;
            series(
                format!("Total population: {r:.0}"),
                PushParams::new(r, r * 0.1, 1.0, f_r).with_pf(PfSchedule::OffsetExponential {
                    scale: 0.8,
                    base: 0.7,
                    offset: 0.2,
                }),
            )
        })
        .collect()
}

/// Table 2 settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Table2Setting {
    /// R_on/R = 10⁴/10⁴, σ = 1, fanout R·f_r = 4, ours PF(t) = 0.95ᵗ.
    A,
    /// R_on/R = 10³/10⁴, σ = 1, R·f_r = 40 (effective online fanout 4),
    /// ours PF(t) = 0.9ᵗ.
    B,
}

/// Runs one Table 2 setting across all four schemes.
pub fn table2(setting: Table2Setting) -> Vec<SchemeResult> {
    let (online, f_r, base) = match setting {
        Table2Setting::A => (10_000.0, 0.0004, 0.95),
        Table2Setting::B => (1_000.0, 0.004, 0.9),
    };
    let schemes = [
        Scheme::Gnutella,
        Scheme::PartialList,
        Scheme::Haas { p: 0.8, k: 2 },
        Scheme::Ours {
            pf: PfSchedule::Exponential { base },
        },
    ];
    compare_schemes(&schemes, 10_000.0, online, 1.0, f_r)
}

/// One row of the §4.3 pull-phase table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PullRow {
    /// Aware fraction of the online population.
    pub f_aware: f64,
    /// Pull attempts.
    pub attempts: u32,
    /// Success probability.
    pub probability: f64,
}

/// §4.3: pull success probability vs attempts at 10% availability for
/// several awareness levels, plus the paper's 99.9% confidence point.
pub fn pull_phase() -> (Vec<PullRow>, Option<u32>) {
    let mut rows = Vec::new();
    for f_aware in [0.25, 0.5, 0.9, 1.0] {
        for attempts in [1, 2, 5, 10, 20, 50, 65, 100] {
            rows.push(PullRow {
                f_aware,
                attempts,
                probability: pull_success_probability(1_000.0, 10_000.0, f_aware, attempts),
            });
        }
    }
    // §2's sizing argument: 99.9% success at 10% availability.
    let attempts_999 = attempts_for_confidence(0.1, 0.999);
    (rows, attempts_999)
}

/// One row of the §5.6 flooding analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodingRow {
    /// Per-push fanout `R · f_r`.
    pub fanout: f64,
    /// Pure-flooding total messages (geometric sum).
    pub pure_flooding: f64,
    /// Duplicate-avoidance messages per online peer.
    pub gnutella_per_peer: f64,
    /// Expected probe attempts to reach 10 online replicas at 10%
    /// availability (Poisson model).
    pub attempts_10_targets: f64,
}

/// §5.6 flooding analysis at R = 10⁴, 10% availability.
pub fn flooding() -> Vec<FloodingRow> {
    [2.0, 4.0, 8.0, 16.0]
        .into_iter()
        .map(|fanout| {
            let f_r = fanout / 10_000.0;
            FloodingRow {
                fanout,
                pure_flooding: pure_flooding_messages(10_000.0, f_r, 1_000.0),
                gnutella_per_peer: gnutella_messages_per_online_peer(10_000.0, f_r),
                attempts_10_targets: expected_attempts_poisson(10.0, 10_000.0, 0.1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_rumor_dies() {
        let s = &fig1a()[0];
        assert!(s.died);
        assert!(s.final_awareness < 0.9);
        assert!(!s.points.is_empty());
    }

    #[test]
    fn fig1b_large_populations_succeed_at_similar_cost() {
        let all = fig1b();
        assert_eq!(all.len(), 5);
        // ≥ 5% online: the rumor spreads.
        for s in &all[1..] {
            assert!(!s.died, "{} died", s.label);
            assert!(
                s.final_awareness > 0.9,
                "{}: {}",
                s.label,
                s.final_awareness
            );
        }
        // Paper: "message overhead is relatively independent of the online
        // population", around 80 messages/peer for PF=1, f_r=0.01.
        let costs: Vec<f64> = all[1..].iter().map(|s| s.total_per_peer).collect();
        for &c in &costs {
            assert!((40.0..=110.0).contains(&c), "cost out of band: {costs:?}");
        }
    }

    #[test]
    fn fig2_fanout_inflates_cost_not_coverage() {
        let all = fig2();
        let costs: Vec<f64> = all.iter().map(|s| s.total_per_peer).collect();
        assert!(
            costs.windows(2).all(|w| w[0] < w[1]),
            "cost grows with f_r: {costs:?}"
        );
        // Paper: f_r = 0.05 costs ~8–10× f_r = 0.005 without helping
        // propagation.
        assert!(costs[3] / costs[0] > 5.0, "{costs:?}");
        let aware: Vec<f64> = all.iter().map(|s| s.final_awareness).collect();
        assert!(aware.iter().all(|&a| a > 0.9), "{aware:?}");
    }

    #[test]
    fn fig3_lower_sigma_costs_less() {
        let all = fig3(); // σ = 1, 0.95, 0.8, 0.7, 0.5
        let costs: Vec<f64> = all.iter().map(|s| s.total_per_peer).collect();
        assert!(
            costs.windows(2).all(|w| w[0] > w[1]),
            "messages decrease as peers fail to forward: {costs:?}"
        );
        // σ ≥ 0.8 still informs (nearly) everyone — the paper's
        // robustness claim.
        for s in &all[..3] {
            assert!(
                s.final_awareness > 0.95,
                "{}: {}",
                s.label,
                s.final_awareness
            );
        }
        // At σ = 0.5 the population drains faster than the rumor spreads:
        // the exact-expectation recursion flags it as died (the paper's
        // ceiling-capped evaluation snaps such runs to F_aware = 1; see
        // EXPERIMENTS.md).
        assert!(all.last().unwrap().died);
    }

    #[test]
    fn fig4_decaying_pf_dominates() {
        let all = fig4();
        let pf1 = &all[0];
        let exp9 = &all[3];
        assert!(
            exp9.total_per_peer < pf1.total_per_peer * 0.75,
            "PF(t)=0.9^t saves at least a quarter of the messages: {} vs {}",
            exp9.total_per_peer,
            pf1.total_per_peer
        );
        // Aggressive decay (0.5^t) risks under-propagation — the paper's
        // warning about tuning PF(t).
        let exp5 = &all[5];
        assert!(exp5.final_awareness < exp9.final_awareness);
    }

    #[test]
    fn fig5_cost_bounded_and_decreasing() {
        let all = fig5();
        let costs: Vec<f64> = all.iter().map(|s| s.total_per_peer).collect();
        // Paper: "for a very large range of total population, the message
        // overhead can be … limited to around 20 messages per initial
        // online peer", decreasing with population.
        assert!(costs.windows(2).all(|w| w[0] >= w[1]), "{costs:?}");
        assert!(
            costs.iter().all(|&c| (15.0..45.0).contains(&c)),
            "{costs:?}"
        );
        // Coverage stays high across four orders of magnitude; the slow
        // drift below the 0.9 died-threshold at 10^7+ is the exact
        // recursion's saturation tail (EXPERIMENTS.md).
        assert!(all.iter().all(|s| s.final_awareness > 0.8));
    }

    #[test]
    fn table2_orderings() {
        for setting in [Table2Setting::A, Table2Setting::B] {
            let rows = table2(setting);
            let m: Vec<f64> = rows.iter().map(|r| r.messages_per_online).collect();
            assert!(
                m[0] > m[1] && m[1] > m[2] && m[2] > m[3],
                "{setting:?}: {m:?}"
            );
        }
    }

    #[test]
    fn pull_phase_rows_monotone() {
        let (rows, attempts) = pull_phase();
        assert_eq!(attempts, Some(66));
        // Probability grows with attempts at fixed awareness.
        for f in [0.25, 0.5, 0.9, 1.0] {
            let ps: Vec<f64> = rows
                .iter()
                .filter(|r| r.f_aware == f)
                .map(|r| r.probability)
                .collect();
            assert!(ps.windows(2).all(|w| w[0] <= w[1]), "{f}: {ps:?}");
        }
    }

    #[test]
    fn flooding_rows_scale_with_fanout() {
        let rows = flooding();
        assert!(rows
            .windows(2)
            .all(|w| w[0].gnutella_per_peer < w[1].gnutella_per_peer));
        assert!(rows.iter().all(|r| r.pure_flooding.is_finite()));
        assert!(rows
            .iter()
            .all(|r| (r.attempts_10_targets - 100.0).abs() < 10.0));
    }
}
