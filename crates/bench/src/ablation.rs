//! Simulation ablations for the §6 design choices.

use rumor_churn::MarkovChurn;
use rumor_core::{
    AckPolicy, DiscardStrategy, ForwardPolicy, ProtocolConfig, PullStrategy, TruncationPolicy,
};
use rumor_sim::{Scenario, TopologySpec};
use rumor_types::DataKey;
use serde::{Deserialize, Serialize};

/// One ablation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant under test.
    pub variant: String,
    /// Push messages per initially-online peer.
    pub push_cost: f64,
    /// Duplicate push deliveries per initially-online peer.
    pub duplicates: f64,
    /// Total messages (all kinds) per initially-online peer.
    pub total_cost: f64,
    /// Final awareness of the online population.
    pub awareness: f64,
    /// Rounds to quiescence.
    pub rounds: u32,
}

fn run(
    variant: &str,
    config: ProtocolConfig,
    total: usize,
    online: usize,
    sigma: f64,
    p_on: f64,
    seed: u64,
) -> AblationRow {
    let scenario = Scenario::builder(total, seed)
        .online_count(online)
        .topology(TopologySpec::Full)
        .churn(MarkovChurn::new(sigma, p_on).expect("valid churn"))
        .build()
        .expect("valid scenario");
    let mut sim = scenario.simulation(config);
    let report = sim.propagate(DataKey::from_name("ablation"), "v", 80);
    let denom = online as f64;
    AblationRow {
        variant: variant.to_owned(),
        push_cost: report.push_messages as f64 / denom,
        duplicates: report.duplicates as f64 / denom,
        total_cost: report.total_messages as f64 / denom,
        awareness: report.aware_online_fraction,
        rounds: report.rounds,
    }
}

const R: usize = 2_000;
const ON: usize = 600;

/// Partial-list ablation (§4.2): full list vs truncated vs none.
pub fn partial_list(seed: u64) -> Vec<AblationRow> {
    let base = |trunc: TruncationPolicy| {
        ProtocolConfig::builder(R)
            .fanout_fraction(0.02)
            .truncation(trunc)
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .expect("valid config")
    };
    vec![
        run(
            "full partial list",
            base(TruncationPolicy::None),
            R,
            ON,
            1.0,
            0.0,
            seed,
        ),
        run(
            "list capped at 5% of R",
            base(TruncationPolicy::MaxFraction {
                fraction: 0.05,
                discard: DiscardStrategy::Random,
            }),
            R,
            ON,
            1.0,
            0.0,
            seed,
        ),
        run(
            "no list (cap 0)",
            base(TruncationPolicy::MaxEntries {
                cap: 0,
                discard: DiscardStrategy::Tail,
            }),
            R,
            ON,
            1.0,
            0.0,
            seed,
        ),
    ]
}

/// Acknowledgement ablation (§6): acks bias future target selection
/// towards peers known to be online.
pub fn acks(seed: u64) -> Vec<AblationRow> {
    let base = |ack: AckPolicy| {
        ProtocolConfig::builder(R)
            .fanout_fraction(0.02)
            .ack(ack)
            .ack_cooloff_rounds(10)
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .expect("valid config")
    };
    vec![
        run("no acks", base(AckPolicy::None), R, ON, 0.95, 0.0, seed),
        run(
            "ack first sender",
            base(AckPolicy::FirstSender),
            R,
            ON,
            0.95,
            0.0,
            seed,
        ),
        run(
            "ack first 2",
            base(AckPolicy::FirstK(2)),
            R,
            ON,
            0.95,
            0.0,
            seed,
        ),
    ]
}

/// Forwarding-policy ablation (Fig. 4 executed by the simulator, plus
/// §6's self-tuning variant the closed-form model cannot express).
pub fn forwarding(seed: u64) -> Vec<AblationRow> {
    let base = |pf: ForwardPolicy| {
        ProtocolConfig::builder(R)
            .fanout_fraction(0.02)
            .forward(pf)
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .expect("valid config")
    };
    vec![
        run("PF = 1", base(ForwardPolicy::Always), R, ON, 0.9, 0.0, seed),
        run(
            "PF(t) = 0.9^t",
            base(ForwardPolicy::ExponentialDecay { base: 0.9 }),
            R,
            ON,
            0.9,
            0.0,
            seed,
        ),
        run(
            "self-tuning (§6)",
            base(ForwardPolicy::self_tuning_default()),
            R,
            ON,
            0.9,
            0.0,
            seed,
        ),
    ]
}

/// Pull-strategy ablation (§6's lazy pull): peers come online during the
/// run; eager pulls immediately, lazy waits for a push first.
pub fn pull_strategies(seed: u64) -> Vec<AblationRow> {
    let base = |strategy: PullStrategy| {
        ProtocolConfig::builder(R)
            .fanout_fraction(0.02)
            .pull_strategy(strategy)
            .pull_fanout(3)
            .build()
            .expect("valid config")
    };
    // p_on > 0: offline peers keep returning and must catch up.
    vec![
        run(
            "eager pull",
            base(PullStrategy::Eager),
            R,
            ON,
            0.98,
            0.02,
            seed,
        ),
        run(
            "lazy pull (patience 3)",
            base(PullStrategy::Lazy { patience: 3 }),
            R,
            ON,
            0.98,
            0.02,
            seed,
        ),
        run(
            "on-demand pull",
            base(PullStrategy::OnDemand),
            R,
            ON,
            0.98,
            0.02,
            seed,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_list_reduces_duplicates() {
        let rows = partial_list(1);
        let (full, _capped, none) = (&rows[0], &rows[1], &rows[2]);
        assert!(
            full.duplicates < none.duplicates,
            "list suppresses duplicates: {} vs {}",
            full.duplicates,
            none.duplicates
        );
        assert!(full.push_cost <= none.push_cost + 1e-9);
        // Coverage comparable either way.
        assert!((full.awareness - none.awareness).abs() < 0.1);
    }

    #[test]
    fn decaying_pf_cuts_cost_in_simulation_too() {
        let rows = forwarding(2);
        assert!(rows[1].push_cost < rows[0].push_cost);
        assert!(
            rows[2].push_cost < rows[0].push_cost,
            "self-tuning saves: {rows:?}"
        );
        assert!(
            rows[2].awareness > 0.85,
            "self-tuning keeps coverage: {rows:?}"
        );
    }

    #[test]
    fn eager_pull_pays_more_messages_than_lazy() {
        let rows = pull_strategies(3);
        let eager = &rows[0];
        let lazy = &rows[1];
        assert!(
            eager.total_cost >= lazy.total_cost,
            "lazy avoids redundant pulls: eager {} vs lazy {}",
            eager.total_cost,
            lazy.total_cost
        );
    }
}
