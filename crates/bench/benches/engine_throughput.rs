//! Criterion bench: steady-state round throughput of the driver/engine
//! stack (`SyncEngine::step` + churn + protocol work) under the tracked
//! `engine_bench` scenarios — paper peer and anti-entropy baseline at
//! N = 128 / 1k / 8k with churn, loss and partial knowledge.
//!
//! One iteration = one timed window of rounds on a pre-warmed driver, so
//! the reported time divided by the window length is seconds/round.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rumor_baselines::AntiEntropy;
use rumor_bench::engine_bench::{
    bench_paper_config, bench_scenario, ENGINE_BENCH_SEED, WARMUP_ROUNDS,
};
use rumor_sim::{PaperProtocol, Protocol, Scenario, UpdateEvent};
use rumor_types::DataKey;

fn event() -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name("engine-bench"),
        delete: false,
        sequence: 0,
    }
}

fn warmed_driver<P: Protocol>(scenario: &Scenario, protocol: &P) -> rumor_sim::Driver<P::Node> {
    let mut driver = scenario.drive(protocol);
    driver
        .initiate(protocol, None, &event())
        .expect("initiator online");
    driver.run_rounds(WARMUP_ROUNDS);
    driver
}

fn window_for(population: usize) -> u32 {
    match population {
        0..=256 => 200,
        257..=2_048 => 50,
        _ => 10,
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for population in [128usize, 1_000, 8_000] {
        let window = window_for(population);
        let scenario = bench_scenario(population, ENGINE_BENCH_SEED);

        let paper = PaperProtocol::new(bench_paper_config(population));
        group.bench_function(&format!("paper/n{population}/rounds{window}"), |b| {
            b.iter_batched(
                || warmed_driver(&scenario, &paper),
                |mut driver| {
                    driver.run_rounds(window);
                    driver
                },
                BatchSize::PerIteration,
            )
        });

        let anti_entropy = AntiEntropy { push_pull: true };
        group.bench_function(&format!("anti-entropy/n{population}/rounds{window}"), |b| {
            b.iter_batched(
                || warmed_driver(&scenario, &anti_entropy),
                |mut driver| {
                    driver.run_rounds(window);
                    driver
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(engine, bench_engine_throughput);
criterion_main!(engine);
