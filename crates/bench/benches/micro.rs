//! Criterion micro-benchmarks of the core data structures and engines.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_core::{
    Lineage, Message, PartialList, ProtocolConfig, PushMessage, ReplicaPeer, ReplicaStore, Update,
    Value,
};
use rumor_net::{EffectSink, Node};
use rumor_types::{DataKey, PeerId, Round};

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(1)
}

fn bench_lineage(c: &mut Criterion) {
    let mut r = rng();
    let mut deep = Lineage::root(&mut r);
    for _ in 0..31 {
        deep = deep.child(&mut r);
    }
    let shallow = Lineage::from_ids(deep.ids()[..16].to_vec());
    c.bench_function("lineage/relation_depth32", |b| {
        b.iter(|| std::hint::black_box(deep.relation(&shallow)))
    });
    c.bench_function("lineage/child", |b| {
        let mut local = rng();
        b.iter(|| std::hint::black_box(deep.child(&mut local)))
    });
}

fn bench_partial_list(c: &mut Criterion) {
    let big = PartialList::from_peers((0..1_000).map(PeerId::new));
    let small = PartialList::from_peers((500..600).map(PeerId::new));
    c.bench_function("partial_list/union_1000_100", |b| {
        b.iter_batched(
            || big.clone(),
            |mut l| {
                l.union_with(&small);
                l
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("partial_list/contains_1000", |b| {
        b.iter(|| std::hint::black_box(big.contains(PeerId::new(999))))
    });
}

fn bench_store(c: &mut Criterion) {
    let mut r = rng();
    let updates: Vec<Update> = (0..100)
        .map(|i| {
            Update::write(
                DataKey::new(i % 10),
                Lineage::root(&mut r),
                Value::from("payload"),
                PeerId::new(0),
            )
        })
        .collect();
    c.bench_function("store/apply_100_concurrent", |b| {
        b.iter_batched(
            ReplicaStore::new,
            |mut s| {
                for u in &updates {
                    std::hint::black_box(s.apply(u));
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    let mut filled = ReplicaStore::new();
    for u in &updates {
        filled.apply(u);
    }
    c.bench_function("store/digest_10_keys", |b| {
        b.iter(|| std::hint::black_box(filled.digest()))
    });
}

fn bench_message_codec(c: &mut Criterion) {
    let mut r = rng();
    let msg = Message::Push(PushMessage {
        update: Update::write(
            DataKey::new(1),
            Lineage::root(&mut r).child(&mut r),
            Value::from("some update payload bytes"),
            PeerId::new(1),
        ),
        push_round: 3,
        flood_list: PartialList::from_peers((0..100).map(PeerId::new)),
    });
    let encoded = msg.encode();
    c.bench_function("message/encode_push_list100", |b| {
        b.iter(|| std::hint::black_box(msg.encode()))
    });
    c.bench_function("message/decode_push_list100", |b| {
        b.iter(|| std::hint::black_box(Message::decode(&encoded).expect("valid")))
    });
}

fn bench_peer_handle(c: &mut Criterion) {
    let config = ProtocolConfig::builder(1_000)
        .fanout_fraction(0.01)
        .build()
        .expect("valid");
    let mut r = rng();
    let update = Update::write(
        DataKey::new(1),
        Lineage::root(&mut r),
        Value::from("v"),
        PeerId::new(1),
    );
    let msg = Message::Push(PushMessage {
        update,
        push_round: 1,
        flood_list: PartialList::from_peers((0..20).map(PeerId::new)),
    });
    c.bench_function("peer/handle_first_push_r1000", |b| {
        b.iter_batched(
            || {
                let mut p = ReplicaPeer::new(PeerId::new(0), config.clone());
                p.learn_replicas((1..1_000).map(PeerId::new));
                (p, rng(), EffectSink::new())
            },
            |(mut p, mut local, mut out)| {
                p.on_message(
                    PeerId::new(1),
                    msg.clone(),
                    Round::new(1),
                    &mut local,
                    &mut out,
                );
                std::hint::black_box(out)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    micro,
    bench_lineage,
    bench_partial_list,
    bench_store,
    bench_message_codec,
    bench_peer_handle
);
criterion_main!(micro);
