//! Criterion benchmarks over the experiment harness itself: one benchmark
//! per paper table/figure, so `cargo bench` regenerates every result and
//! tracks the cost of doing so.

use criterion::{criterion_group, criterion_main, Criterion};
use rumor_bench::experiments::{
    fig1a, fig1b, fig2, fig3, fig4, fig5, flooding, pull_phase, table2, Table2Setting,
};
use rumor_bench::simfig::validate;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("experiments/fig1a", |b| {
        b.iter(|| std::hint::black_box(fig1a()))
    });
    c.bench_function("experiments/fig1b", |b| {
        b.iter(|| std::hint::black_box(fig1b()))
    });
    c.bench_function("experiments/fig2", |b| {
        b.iter(|| std::hint::black_box(fig2()))
    });
    c.bench_function("experiments/fig3", |b| {
        b.iter(|| std::hint::black_box(fig3()))
    });
    c.bench_function("experiments/fig4", |b| {
        b.iter(|| std::hint::black_box(fig4()))
    });
    c.bench_function("experiments/fig5", |b| {
        b.iter(|| std::hint::black_box(fig5()))
    });
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("experiments/table2_setting_a", |b| {
        b.iter(|| std::hint::black_box(table2(Table2Setting::A)))
    });
    c.bench_function("experiments/table2_setting_b", |b| {
        b.iter(|| std::hint::black_box(table2(Table2Setting::B)))
    });
    c.bench_function("experiments/pull_phase", |b| {
        b.iter(|| std::hint::black_box(pull_phase()))
    });
    c.bench_function("experiments/flooding", |b| {
        b.iter(|| std::hint::black_box(flooding()))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("push_phase_r1000_on300", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(validate(1_000, 300, 0.95, 0.03, None, 1, seed))
        })
    });
    group.finish();
}

criterion_group!(experiments, bench_figures, bench_tables, bench_simulation);
criterion_main!(experiments);
