//! Monotone counters and labelled counter sets.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A monotone event counter.
///
/// # Examples
///
/// ```
/// use rumor_metrics::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Returns the current count.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A set of counters addressed by static label, used by the simulator to
/// tally message kinds (push, pull request, pull response, ack, duplicate…).
///
/// # Examples
///
/// ```
/// use rumor_metrics::CounterSet;
/// let mut set = CounterSet::new();
/// set.add("push", 2);
/// set.incr("push");
/// assert_eq!(set.get("push"), 3);
/// assert_eq!(set.get("never-touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSet {
    counters: BTreeMap<String, Counter>,
}

impl CounterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter with the given label, creating it if absent.
    pub fn add(&mut self, label: &str, n: u64) {
        self.counters.entry(label.to_owned()).or_default().add(n);
    }

    /// Adds one to the counter with the given label.
    pub fn incr(&mut self, label: &str) {
        self.add(label, 1);
    }

    /// Returns the value of the labelled counter, or 0 if never touched.
    pub fn get(&self, label: &str) -> u64 {
        self.counters.get(label).map_or(0, |c| c.get())
    }

    /// Returns the sum of every counter in the set.
    pub fn total(&self) -> u64 {
        self.counters.values().map(|c| c.get()).sum()
    }

    /// Iterates over `(label, value)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Merges another set into this one, summing shared labels.
    pub fn merge(&mut self, other: &CounterSet) {
        for (label, value) in other.iter() {
            self.add(label, value);
        }
    }

    /// Returns true if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return write!(f, "(no counters)");
        }
        let mut first = true;
        for (label, value) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{label}={value}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn counter_default_is_zero() {
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn set_tracks_labels_independently() {
        let mut s = CounterSet::new();
        s.incr("a");
        s.add("b", 5);
        assert_eq!(s.get("a"), 1);
        assert_eq!(s.get("b"), 5);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn set_merge_sums() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        let mut b = CounterSet::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn set_iter_is_sorted() {
        let mut s = CounterSet::new();
        s.incr("zebra");
        s.incr("ant");
        let labels: Vec<_> = s.iter().map(|(l, _)| l.to_owned()).collect();
        assert_eq!(labels, vec!["ant", "zebra"]);
    }

    #[test]
    fn set_display_nonempty() {
        let mut s = CounterSet::new();
        assert_eq!(format!("{s}"), "(no counters)");
        s.incr("m");
        assert!(format!("{s}").contains("m=1"));
    }
}
