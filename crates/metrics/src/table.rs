//! Plain-text table rendering for experiment reports.
//!
//! The harness reproduces the paper's tables (e.g. Table 2) as aligned
//! monospace text; this module is the shared renderer. CSV output is also
//! provided so results can be re-plotted externally.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Column alignment for [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An aligned monospace table builder.
///
/// # Examples
///
/// ```
/// use rumor_metrics::{Align, Table};
/// let mut t = Table::new(vec!["scheme".into(), "msgs".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["Gnutella".into(), "4.00".into()]);
/// let text = t.render();
/// assert!(text.contains("Gnutella"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn align(&mut self, idx: usize, align: Align) -> &mut Self {
        self.aligns[idx] = align;
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text with a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        render_row(&mut out, &self.headers, &widths, &self.aligns);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_row(&mut out, &sep, &widths, &self.aligns);
        for row in &self.rows {
            render_row(&mut out, row, &widths, &self.aligns);
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_row(out: &mut String, cells: &[String], widths: &[usize], aligns: &[Align]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        let pad = widths[i].saturating_sub(cell.chars().count());
        match aligns[i] {
            Align::Left => {
                out.push_str(cell);
                if i + 1 < cells.len() {
                    out.push_str(&" ".repeat(pad));
                }
            }
            Align::Right => {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
    }
    out.push('\n');
}

fn csv_line(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.align(1, Align::Right);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numeric column: "1" ends at same offset as "22.5".
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["name,value", "alpha,1", "b,22.5"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["one".into(), "two".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_and_len() {
        let t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(format!("{t}"), t.render());
    }
}
