//! Per-round time series — the backbone of every figure in the paper.

use serde::{Deserialize, Serialize};

/// One `(round, value)` observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Push round the value was observed in.
    pub round: u32,
    /// Observed value.
    pub value: f64,
}

/// A named sequence of per-round observations.
///
/// The figures of the paper plot cumulative messages per initially-online
/// peer (y) against the aware fraction (x), point per round; `RoundSeries`
/// is the common carrier for both axes.
///
/// # Examples
///
/// ```
/// use rumor_metrics::RoundSeries;
/// let mut s = RoundSeries::new("f_aware");
/// s.record(0, 0.01);
/// s.record(1, 0.05);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last().unwrap().value, 0.05);
/// let c = s.cumulative();
/// assert!((c.last().unwrap().value - 0.06).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSeries {
    name: String,
    points: Vec<SeriesPoint>,
}

impl RoundSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation for `round`.
    pub fn record(&mut self, round: u32, value: f64) {
        self.points.push(SeriesPoint { round, value });
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded points in insertion order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// The most recent point.
    pub fn last(&self) -> Option<SeriesPoint> {
        self.points.last().copied()
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|p| p.value).sum()
    }

    /// Returns a new series of running totals (same rounds).
    #[must_use]
    pub fn cumulative(&self) -> RoundSeries {
        let mut out = RoundSeries::new(format!("{} (cumulative)", self.name));
        let mut acc = 0.0;
        for p in &self.points {
            acc += p.value;
            out.record(p.round, acc);
        }
        out
    }

    /// Returns a new series with every value divided by `denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero or not finite: normalising a figure by a
    /// degenerate population is always a harness bug.
    #[must_use]
    pub fn normalized(&self, denom: f64) -> RoundSeries {
        assert!(
            denom.is_finite() && denom != 0.0,
            "normalisation denominator must be finite and non-zero"
        );
        let mut out = RoundSeries::new(format!("{} / {denom}", self.name));
        for p in &self.points {
            out.record(p.round, p.value / denom);
        }
        out
    }

    /// Zips two equally-long series into `(x, y)` pairs — e.g. awareness on
    /// x and cumulative messages on y, the paper's standard plot.
    ///
    /// # Panics
    ///
    /// Panics if the series have different lengths.
    pub fn zip<'a>(x: &'a RoundSeries, y: &'a RoundSeries) -> Vec<(f64, f64)> {
        assert_eq!(x.len(), y.len(), "series length mismatch");
        x.points
            .iter()
            .zip(&y.points)
            .map(|(a, b)| (a.value, b.value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut s = RoundSeries::new("m");
        s.record(0, 1.0);
        s.record(1, 2.0);
        assert_eq!(s.points()[1].round, 1);
        assert_eq!(s.total(), 3.0);
        assert!(!s.is_empty());
    }

    #[test]
    fn cumulative_sums() {
        let mut s = RoundSeries::new("m");
        for r in 0..4 {
            s.record(r, 1.0);
        }
        let c = s.cumulative();
        let vals: Vec<_> = c.points().iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn normalized_divides() {
        let mut s = RoundSeries::new("m");
        s.record(0, 10.0);
        let n = s.normalized(5.0);
        assert_eq!(n.points()[0].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn normalized_rejects_zero() {
        let s = RoundSeries::new("m");
        let _ = s.normalized(0.0);
    }

    #[test]
    fn zip_pairs_values() {
        let mut x = RoundSeries::new("x");
        let mut y = RoundSeries::new("y");
        x.record(0, 0.1);
        y.record(0, 5.0);
        assert_eq!(RoundSeries::zip(&x, &y), vec![(0.1, 5.0)]);
    }

    #[test]
    fn empty_series_behaviour() {
        let s = RoundSeries::new("e");
        assert!(s.is_empty());
        assert!(s.last().is_none());
        assert_eq!(s.total(), 0.0);
        assert!(s.cumulative().is_empty());
    }
}
