//! Measurement substrate for the `rumor` experiments.
//!
//! The paper's performance criterion is "primarily the number of messages
//! that are generated as part of a single update, compared to the extent to
//! which the update propagates among the online population" (§5). This
//! crate provides the counters, per-round series, summaries, convergence
//! detectors and plain-text table formatting that the simulator and the
//! experiment harness use to report exactly those quantities.
//!
//! # Examples
//!
//! ```
//! use rumor_metrics::{RoundSeries, SampleStats};
//!
//! let mut msgs = RoundSeries::new("messages");
//! msgs.record(0, 10.0);
//! msgs.record(1, 40.0);
//! assert_eq!(msgs.total(), 50.0);
//!
//! let s = SampleStats::of(&[1.0, 2.0, 3.0]);
//! assert_eq!(s.mean(), 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convergence;
mod counter;
mod histogram;
mod series;
mod stats;
mod table;

pub use convergence::ConvergenceDetector;
pub use counter::{Counter, CounterSet};
pub use histogram::Histogram;
pub use series::{RoundSeries, SeriesPoint};
pub use stats::{t_critical_95, ConfidenceInterval, SampleStats};
pub use table::{Align, Table};
