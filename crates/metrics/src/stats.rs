//! Replication statistics: sample moments, percentiles and Student-t
//! confidence intervals.
//!
//! Monte Carlo estimates are only as good as their dispersion report:
//! epidemic reproductions (Demers et al.'s anti-entropy experiments,
//! Malkhi et al.'s Byzantine diffusion bounds) publish distributions,
//! not point estimates. [`SampleStats`] is the aggregation target the
//! replication harness (`rumor_sim::replicate`) folds per-replication
//! metrics into, and [`ConfidenceInterval`] is the 95% Student-t
//! interval the figures draw as error bars.
//!
//! # Examples
//!
//! ```
//! use rumor_metrics::SampleStats;
//!
//! let s = SampleStats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
//! assert_eq!(s.mean(), 5.0);
//! assert_eq!(s.min(), 2.0);
//! let ci = s.ci95();
//! assert!(ci.lower < 5.0 && 5.0 < ci.upper);
//! ```

use serde::{Deserialize, Serialize};

/// Two-sided Student-t 97.5% quantiles (95% confidence, two tails) for
/// 1 ≤ df ≤ 30. Beyond the table a conservative step function applies.
const T_TABLE: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% Student-t critical value for `df` degrees of
/// freedom. Exact for `df ≤ 30`; beyond that a step function that
/// rounds *up* (wider intervals), converging to the normal 1.96.
///
/// # Panics
///
/// Panics when `df == 0` — a single sample has no dispersion estimate;
/// callers gate on `n ≥ 2` (see [`SampleStats::ci95`]).
pub fn t_critical_95(df: usize) -> f64 {
    assert!(df > 0, "Student-t requires at least one degree of freedom");
    match df {
        1..=30 => T_TABLE[df - 1],
        31..=40 => 2.042,
        41..=60 => 2.021,
        61..=120 => 2.000,
        _ => 1.960,
    }
}

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level (e.g. `0.95`).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half the interval width — what an error bar extends either side
    /// of the mean. Infinite for the degenerate `n < 2` interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether `x` lies inside the interval (bounds included).
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

/// Descriptive statistics over one replicated metric: sample mean,
/// unbiased (n−1) variance, extrema and exact percentiles, plus the
/// Student-t confidence interval machinery.
///
/// The sorted sample set is retained, so percentiles are exact and two
/// `SampleStats` built from the same replication outputs compare equal
/// bit for bit — the property the determinism suite pins across worker
/// thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl SampleStats {
    /// Computes statistics over `samples` (order irrelevant).
    ///
    /// Empty input yields an all-zero result with `n == 0`; a single
    /// sample has zero variance by convention but an undefined (infinite)
    /// confidence interval.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn of(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let n = sorted.len();
        if n == 0 {
            return Self {
                sorted,
                mean: 0.0,
                variance: 0.0,
            };
        }
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Self {
            sorted,
            mean,
            variance,
        }
    }

    /// Number of samples.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator; 0 when `n < 2`).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean (`s / √n`; 0 when `n < 2`).
    pub fn std_error(&self) -> f64 {
        if self.sorted.len() < 2 {
            0.0
        } else {
            self.std_dev() / (self.sorted.len() as f64).sqrt()
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Median (the 50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Exact percentile by linear interpolation between order statistics
    /// (the "R-7" rule NumPy defaults to). `p` is clamped to `[0, 100]`;
    /// `percentile(0) == min`, `percentile(100) == max`.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// The two-sided Student-t 95% confidence interval for the mean.
    ///
    /// With fewer than two samples the dispersion is unknowable, so the
    /// interval is `(-∞, +∞)` — honest rather than falsely tight; JSON
    /// emission renders its half-width as `null`.
    pub fn ci95(&self) -> ConfidenceInterval {
        let n = self.sorted.len();
        if n < 2 {
            return ConfidenceInterval {
                lower: f64::NEG_INFINITY,
                upper: f64::INFINITY,
                level: 0.95,
            };
        }
        let half = t_critical_95(n - 1) * self.std_error();
        ConfidenceInterval {
            lower: self.mean - half,
            upper: self.mean + half,
            level: 0.95,
        }
    }
}

impl std::fmt::Display for SampleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let half = self.ci95().half_width();
        if half.is_finite() {
            write!(f, "{:.4} ± {:.4} (n={})", self.mean, half, self.n())
        } else {
            write!(f, "{:.4} (n={})", self.mean, self.n())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = SampleStats::of(&[]);
        assert_eq!(s.n(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn t_table_edge_cases() {
        // df = 1 (n = 2): the notoriously wide 12.706.
        assert_eq!(t_critical_95(1), 12.706);
        // df = 2 (n = 3).
        assert_eq!(t_critical_95(2), 4.303);
        // Monotone non-increasing toward the normal limit.
        let mut prev = f64::INFINITY;
        for df in 1..500 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t must not increase: df={df}");
            assert!(t >= 1.960, "t never drops below the normal quantile");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "degree of freedom")]
    fn t_critical_rejects_zero_df() {
        t_critical_95(0);
    }

    #[test]
    fn single_sample_has_infinite_ci() {
        let s = SampleStats::of(&[3.5]);
        assert_eq!(s.n(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        let ci = s.ci95();
        assert_eq!(ci.lower, f64::NEG_INFINITY);
        assert_eq!(ci.upper, f64::INFINITY);
        assert!(ci.half_width().is_infinite());
        assert!(format!("{s}").contains("3.5000 (n=1)"));
    }

    #[test]
    fn two_samples_use_df1() {
        // Closed form: mean 1, s² = 2, s = √2, se = 1, half = 12.706.
        let s = SampleStats::of(&[0.0, 2.0]);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.variance(), 2.0);
        assert!((s.std_error() - 1.0).abs() < 1e-12);
        let ci = s.ci95();
        assert!((ci.half_width() - 12.706).abs() < 1e-9);
        assert!(ci.contains(1.0));
    }

    #[test]
    fn percentiles_interpolate() {
        let s = SampleStats::of(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
        // Rank 0.25·3 = 0.75 → 10 + 0.75·10.
        assert_eq!(s.percentile(25.0), 17.5);
    }

    #[test]
    fn display_includes_ci() {
        let s = SampleStats::of(&[1.0, 1.0, 1.0]);
        assert!(format!("{s}").contains("± 0.0000 (n=3)"));
    }

    proptest! {
        #[test]
        fn constant_samples_closed_form(value in -100.0f64..100.0, n in 1usize..40) {
            let samples = vec![value; n];
            let s = SampleStats::of(&samples);
            prop_assert!((s.mean() - value).abs() < 1e-12);
            prop_assert!(s.variance().abs() < 1e-12);
            prop_assert_eq!(s.min(), value);
            prop_assert_eq!(s.max(), value);
            prop_assert!((s.median() - value).abs() < 1e-12);
            if n >= 2 {
                // Zero dispersion → the CI collapses onto the mean
                // (which may sit an ulp away from `value`).
                let ci = s.ci95();
                prop_assert!(ci.half_width() < 1e-9);
                prop_assert!(ci.contains(s.mean()));
            }
        }

        #[test]
        fn two_point_samples_closed_form(a in -50.0f64..50.0, gap in 0.1f64..10.0, pairs in 1usize..20) {
            // Equal counts of a and a+gap: mean a + gap/2,
            // variance gap²/4 · 2m/(2m−1) with the n−1 denominator.
            let b = a + gap;
            let mut samples = Vec::new();
            for _ in 0..pairs {
                samples.push(a);
                samples.push(b);
            }
            let s = SampleStats::of(&samples);
            let m = pairs as f64;
            prop_assert!((s.mean() - (a + gap / 2.0)).abs() < 1e-9);
            let expected_var = (gap * gap / 4.0) * (2.0 * m / (2.0 * m - 1.0));
            prop_assert!((s.variance() - expected_var).abs() < 1e-9,
                "variance {} vs closed form {}", s.variance(), expected_var);
            prop_assert_eq!(s.min(), a);
            prop_assert_eq!(s.max(), b);
        }

        #[test]
        fn ci_narrows_as_n_grows(a in -50.0f64..50.0, gap in 0.1f64..10.0, doublings in 2usize..7) {
            // Fixed two-point distribution, growing sample size: the
            // half-width t(n−1)·s/√n is strictly decreasing in n for the
            // alternating sample (s is essentially constant, √n grows,
            // t shrinks).
            let b = a + gap;
            let mut widths = Vec::new();
            for d in 1..=doublings {
                let pairs = 1 << d;
                let mut samples = Vec::new();
                for _ in 0..pairs {
                    samples.push(a);
                    samples.push(b);
                }
                widths.push(SampleStats::of(&samples).ci95().half_width());
            }
            prop_assert!(widths.windows(2).all(|w| w[1] < w[0]),
                "CI must narrow with n: {widths:?}");
        }

        #[test]
        fn percentile_bounds_and_monotonicity(seed_vals in proptest::collection::vec(-100.0f64..100.0, 1..30)) {
            let s = SampleStats::of(&seed_vals);
            let mut prev = f64::NEG_INFINITY;
            for p in 0..=20 {
                let q = s.percentile(p as f64 * 5.0);
                prop_assert!(q >= s.min() - 1e-12 && q <= s.max() + 1e-12,
                    "percentile escapes [min, max]");
                prop_assert!(q >= prev - 1e-12, "percentiles must be monotone in p");
                prev = q;
            }
            prop_assert_eq!(s.percentile(0.0), s.min());
            prop_assert_eq!(s.percentile(100.0), s.max());
            // The mean always lies inside the CI.
            prop_assert!(s.ci95().contains(s.mean()));
        }

        #[test]
        fn order_is_irrelevant(vals in proptest::collection::vec(-100.0f64..100.0, 2..25)) {
            let forward = SampleStats::of(&vals);
            let mut rev = vals.clone();
            rev.reverse();
            prop_assert_eq!(forward, SampleStats::of(&rev));
        }
    }
}
