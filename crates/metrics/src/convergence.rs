//! Detecting that a propagation has effectively terminated.
//!
//! The analysis stops a push phase when the newly-aware increment drops
//! below a threshold or awareness saturates (paper §4.2: `f_aware` "rapidly
//! grows to 1" and must be capped). The simulator uses the same criterion so
//! model and simulation report comparable round counts.

use serde::{Deserialize, Serialize};

/// Declares convergence once a monitored value stops improving.
///
/// The detector watches a monotone quantity (for example the aware
/// fraction) and reports convergence when `patience` consecutive
/// observations improve by less than `epsilon`, or when the value reaches
/// `target`.
///
/// # Examples
///
/// ```
/// use rumor_metrics::ConvergenceDetector;
/// let mut d = ConvergenceDetector::new(1e-6, 2, 0.999);
/// assert!(!d.observe(0.5));
/// assert!(!d.observe(0.5)); // first stall
/// assert!(d.observe(0.5));  // second stall => converged
/// assert!(d.is_converged());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceDetector {
    epsilon: f64,
    patience: u32,
    target: f64,
    last: Option<f64>,
    stalls: u32,
    converged: bool,
}

impl ConvergenceDetector {
    /// Creates a detector.
    ///
    /// * `epsilon` — minimum improvement that counts as progress.
    /// * `patience` — number of consecutive stalled observations tolerated.
    /// * `target` — absolute value at which convergence is immediate
    ///   (e.g. `0.999` awareness, the paper's "high probability, arbitrarily
    ///   close to 1").
    pub fn new(epsilon: f64, patience: u32, target: f64) -> Self {
        Self {
            epsilon,
            patience,
            target,
            last: None,
            stalls: 0,
            converged: false,
        }
    }

    /// Feeds the next observation; returns `true` once converged.
    pub fn observe(&mut self, value: f64) -> bool {
        if self.converged {
            return true;
        }
        if value >= self.target {
            self.converged = true;
            return true;
        }
        match self.last {
            Some(prev) if (value - prev) < self.epsilon => {
                self.stalls += 1;
                if self.stalls >= self.patience {
                    self.converged = true;
                }
            }
            _ => self.stalls = 0,
        }
        self.last = Some(value);
        self.converged
    }

    /// Whether convergence has been declared.
    pub const fn is_converged(&self) -> bool {
        self.converged
    }

    /// Resets the detector to its initial state.
    pub fn reset(&mut self) {
        self.last = None;
        self.stalls = 0;
        self.converged = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_target() {
        let mut d = ConvergenceDetector::new(1e-9, 5, 0.999);
        assert!(d.observe(0.9995));
    }

    #[test]
    fn converges_on_stall() {
        let mut d = ConvergenceDetector::new(0.01, 3, 1.0);
        assert!(!d.observe(0.1));
        assert!(!d.observe(0.105)); // stall 1 (< 0.01 improvement)
        assert!(!d.observe(0.107)); // stall 2
        assert!(d.observe(0.108)); // stall 3 => converged
    }

    #[test]
    fn progress_resets_stall_count() {
        let mut d = ConvergenceDetector::new(0.01, 2, 1.0);
        assert!(!d.observe(0.1));
        assert!(!d.observe(0.1)); // stall 1
        assert!(!d.observe(0.5)); // progress, resets
        assert!(!d.observe(0.5)); // stall 1
        assert!(d.observe(0.5)); // stall 2 => converged
    }

    #[test]
    fn stays_converged() {
        let mut d = ConvergenceDetector::new(1e-9, 1, 0.5);
        assert!(d.observe(0.6));
        assert!(d.observe(0.0), "remains converged on later observations");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = ConvergenceDetector::new(1e-9, 1, 0.5);
        assert!(d.observe(0.6));
        d.reset();
        assert!(!d.is_converged());
        assert!(!d.observe(0.1));
    }
}
