//! A simple fixed-width linear histogram for latency/staleness distributions.

use serde::{Deserialize, Serialize};

/// A linear-bucket histogram over `f64` samples.
///
/// Samples below the range clamp into the first bucket and samples above
/// clamp into the overflow bucket, so [`Histogram::count`] always equals
/// the number of recorded samples.
///
/// # Examples
///
/// ```
/// use rumor_metrics::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(100.0); // overflow bucket
/// assert_eq!(h.count(), 3);
/// assert!(h.quantile(0.5) <= 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` equal cells.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let idx = if v < self.lo {
            0
        } else {
            (((v - self.lo) / width) as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile (`q` in `[0,1]`) via bucket interpolation.
    ///
    /// Returns the upper edge of the bucket containing the quantile;
    /// overflow resolves to the recorded maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + width * (i as f64 + 1.0);
            }
        }
        self.max
    }

    /// Iterates over `(bucket_lower_edge, count)` pairs, then overflow.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * i as f64, c))
            .chain(std::iter::once((self.hi, self.overflow)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 4.5).abs() < 1e-12);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(9.0));
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-5.0);
        h.record(42.0);
        assert_eq!(h.count(), 2);
        let cells: Vec<_> = h.iter().collect();
        assert_eq!(cells[0].1, 1, "below-range goes to first bucket");
        assert_eq!(cells.last().unwrap().1, 1, "above-range goes to overflow");
    }

    #[test]
    fn quantile_median_of_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let med = h.quantile(0.5);
        assert!((45.0..=55.0).contains(&med), "median ≈ 50, got {med}");
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.9), 0.0);
    }

    #[test]
    fn quantile_overflow_returns_max() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(7.0);
        assert_eq!(h.quantile(1.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
