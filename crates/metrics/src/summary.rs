//! Descriptive statistics over sample slices.

use serde::{Deserialize, Serialize};

/// Mean / standard deviation / extrema / percentiles of a sample set.
///
/// Used by the harness to aggregate repeated simulation trials into the
/// single numbers reported in `EXPERIMENTS.md`.
///
/// # Examples
///
/// ```
/// use rumor_metrics::Summary;
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std_dev(), 2.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    median: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    ///
    /// Empty input yields an all-zero summary with `n == 0`; callers that
    /// require data should check [`Summary::n`].
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Number of samples.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Arithmetic mean.
    pub const fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub const fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub const fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub const fn max(&self) -> f64 {
        self.max
    }

    /// Median sample.
    pub const fn median(&self) -> f64 {
        self.median
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} med={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.n(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.median(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn even_count_median_interpolates() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn display_mentions_mean() {
        let s = Summary::of(&[1.0, 1.0]);
        assert!(format!("{s}").contains("mean=1.0000"));
    }
}
