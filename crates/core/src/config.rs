//! Protocol configuration and its builder.

use crate::error::CoreError;
use crate::fanout::FanoutPolicy;
use crate::forward::ForwardPolicy;
use crate::partial_list::TruncationPolicy;
use serde::{Deserialize, Serialize};

/// §6's acknowledgement policy: whom a replica acks after receiving an
/// update ("p may adopt a policy to reply back only to the first or first
/// k random replica\[s\]").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AckPolicy {
    /// Never acknowledge (the paper's base protocol).
    None,
    /// Acknowledge only the first replica an update was received from.
    FirstSender,
    /// Acknowledge the first `k` distinct senders of an update.
    FirstK(u32),
}

impl AckPolicy {
    /// Maximum acks sent per update under this policy.
    pub fn limit(&self) -> u32 {
        match *self {
            Self::None => 0,
            Self::FirstSender => 1,
            Self::FirstK(k) => k,
        }
    }
}

/// When a replica initiates the pull phase (§3 pseudocode triggers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PullStrategy {
    /// Pull immediately on coming online ("online_again").
    Eager,
    /// §6's lazy optimisation: after coming online, wait `patience` rounds
    /// for a push to arrive; pull only if none does.
    Lazy {
        /// Rounds to wait for a push before pulling.
        patience: u32,
    },
    /// Pull only when explicitly triggered (e.g. by an unconfident query).
    OnDemand,
}

/// Pull-phase configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PullConfig {
    /// Trigger strategy.
    pub strategy: PullStrategy,
    /// How many replicas to contact per pull ("it is preferable to
    /// contact multiple peers and choose the most up to date", §3).
    pub fanout: usize,
    /// `no_updates_since` trigger: pull after this many rounds without
    /// receiving any update information. `None` disables the periodic
    /// trigger (the setting used when reproducing pure push-phase
    /// figures).
    pub staleness_rounds: Option<u32>,
    /// Rounds to wait for a pull response before retrying (§4.3 models
    /// success over *k attempts* — a single salvo often hits only offline
    /// replicas). `0` disables retries.
    pub retry_rounds: u32,
    /// Maximum pull retries per trigger.
    pub max_retries: u32,
    /// Wire-v2 digest-delta pulls: instead of shipping the full store
    /// digest, ask each peer "what changed since journal mark X" and
    /// receive only the missing suffix — O(delta) response bytes instead
    /// of O(store) request + response. Off by default; the full-digest
    /// exchange remains the v1-compatible path.
    pub delta: bool,
}

impl Default for PullConfig {
    fn default() -> Self {
        Self {
            strategy: PullStrategy::Eager,
            fanout: 3,
            staleness_rounds: None,
            retry_rounds: 3,
            max_retries: 5,
            delta: false,
        }
    }
}

/// Complete configuration of a [`ReplicaPeer`](crate::ReplicaPeer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// The replication factor `R` this partition is configured for.
    pub total_replicas: usize,
    /// Push fanout (`f_r`).
    pub fanout: FanoutPolicy,
    /// Forwarding probability `PF(t)`.
    pub forward: ForwardPolicy,
    /// Partial-list bound (`L_thr`).
    pub truncation: TruncationPolicy,
    /// Acknowledgement policy.
    pub ack: AckPolicy,
    /// Rounds during which a peer that failed to ack is deprioritised
    /// (§6: the strategy "will only be effective for short time
    /// intervals").
    pub ack_cooloff_rounds: u32,
    /// Pull-phase behaviour.
    pub pull: PullConfig,
}

impl ProtocolConfig {
    /// Starts building a configuration for a partition of `total_replicas`
    /// replicas.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_core::{ForwardPolicy, ProtocolConfig};
    ///
    /// let config = ProtocolConfig::builder(1000)
    ///     .fanout_fraction(0.01)
    ///     .forward(ForwardPolicy::ExponentialDecay { base: 0.9 })
    ///     .build()?;
    /// assert_eq!(config.push_targets(), 10);
    /// # Ok::<(), rumor_core::CoreError>(())
    /// ```
    pub fn builder(total_replicas: usize) -> ProtocolConfigBuilder {
        ProtocolConfigBuilder {
            config: ProtocolConfig {
                total_replicas,
                fanout: FanoutPolicy::Fraction { f_r: 0.01 },
                forward: ForwardPolicy::Always,
                truncation: TruncationPolicy::None,
                ack: AckPolicy::None,
                ack_cooloff_rounds: 10,
                pull: PullConfig::default(),
            },
        }
    }

    /// Number of replicas addressed per push under this configuration.
    pub fn push_targets(&self) -> usize {
        self.fanout.targets(self.total_replicas)
    }
}

/// Builder for [`ProtocolConfig`] (non-consuming terminal method).
#[derive(Debug, Clone)]
pub struct ProtocolConfigBuilder {
    config: ProtocolConfig,
}

impl ProtocolConfigBuilder {
    /// Sets the fanout as a fraction `f_r` of `R`.
    pub fn fanout_fraction(&mut self, f_r: f64) -> &mut Self {
        self.config.fanout = FanoutPolicy::Fraction { f_r };
        self
    }

    /// Sets the fanout as an absolute target count.
    pub fn fanout_absolute(&mut self, count: usize) -> &mut Self {
        self.config.fanout = FanoutPolicy::Absolute { count };
        self
    }

    /// Sets the forwarding policy `PF(t)`.
    pub fn forward(&mut self, policy: ForwardPolicy) -> &mut Self {
        self.config.forward = policy;
        self
    }

    /// Sets the partial-list truncation policy.
    pub fn truncation(&mut self, policy: TruncationPolicy) -> &mut Self {
        self.config.truncation = policy;
        self
    }

    /// Sets the acknowledgement policy.
    pub fn ack(&mut self, policy: AckPolicy) -> &mut Self {
        self.config.ack = policy;
        self
    }

    /// Sets how long non-acking peers are deprioritised.
    pub fn ack_cooloff_rounds(&mut self, rounds: u32) -> &mut Self {
        self.config.ack_cooloff_rounds = rounds;
        self
    }

    /// Sets the pull strategy.
    pub fn pull_strategy(&mut self, strategy: PullStrategy) -> &mut Self {
        self.config.pull.strategy = strategy;
        self
    }

    /// Sets how many replicas each pull contacts.
    pub fn pull_fanout(&mut self, fanout: usize) -> &mut Self {
        self.config.pull.fanout = fanout;
        self
    }

    /// Enables the periodic `no_updates_since` pull trigger.
    pub fn staleness_rounds(&mut self, rounds: u32) -> &mut Self {
        self.config.pull.staleness_rounds = Some(rounds);
        self
    }

    /// Configures pull retries: wait `rounds` for a response, retry up to
    /// `max` times (`rounds = 0` disables).
    pub fn pull_retry(&mut self, rounds: u32, max: u32) -> &mut Self {
        self.config.pull.retry_rounds = rounds;
        self.config.pull.max_retries = max;
        self
    }

    /// Enables wire-v2 digest-delta pulls (see [`PullConfig::delta`]).
    pub fn delta_pulls(&mut self, enabled: bool) -> &mut Self {
        self.config.pull.delta = enabled;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when any parameter is out of
    /// range (zero population, bad `f_r`, invalid `PF`, zero pull fanout).
    pub fn build(&self) -> Result<ProtocolConfig, CoreError> {
        let c = &self.config;
        if c.total_replicas == 0 {
            return Err(CoreError::invalid_config(
                "total_replicas",
                "population must be non-empty",
            ));
        }
        c.fanout
            .validate()
            .map_err(|e| CoreError::invalid_config("fanout", e))?;
        c.forward
            .validate()
            .map_err(|e| CoreError::invalid_config("forward", e))?;
        if c.pull.fanout == 0 {
            return Err(CoreError::invalid_config(
                "pull.fanout",
                "a pull must contact at least one replica",
            ));
        }
        if let TruncationPolicy::MaxFraction { fraction, .. } = c.truncation {
            if !(fraction > 0.0 && fraction <= 1.0) {
                return Err(CoreError::invalid_config(
                    "truncation",
                    format!("fraction must be in (0,1], got {fraction}"),
                ));
            }
        }
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial_list::DiscardStrategy;

    #[test]
    fn defaults_are_the_papers_base_protocol() {
        let c = ProtocolConfig::builder(1000).build().unwrap();
        assert_eq!(c.fanout, FanoutPolicy::Fraction { f_r: 0.01 });
        assert_eq!(c.forward, ForwardPolicy::Always);
        assert_eq!(c.truncation, TruncationPolicy::None);
        assert_eq!(c.ack, AckPolicy::None);
        assert_eq!(c.pull.strategy, PullStrategy::Eager);
        assert_eq!(c.push_targets(), 10);
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = ProtocolConfig::builder(500)
            .fanout_absolute(4)
            .forward(ForwardPolicy::Constant { p: 0.8 })
            .truncation(TruncationPolicy::MaxEntries {
                cap: 50,
                discard: DiscardStrategy::Random,
            })
            .ack(AckPolicy::FirstK(2))
            .ack_cooloff_rounds(5)
            .pull_strategy(PullStrategy::Lazy { patience: 3 })
            .pull_fanout(7)
            .staleness_rounds(40)
            .pull_retry(2, 9)
            .delta_pulls(true)
            .build()
            .unwrap();
        assert_eq!(c.push_targets(), 4);
        assert_eq!(c.ack.limit(), 2);
        assert_eq!(c.ack_cooloff_rounds, 5);
        assert_eq!(c.pull.fanout, 7);
        assert_eq!(c.pull.staleness_rounds, Some(40));
        assert_eq!(c.pull.retry_rounds, 2);
        assert_eq!(c.pull.max_retries, 9);
        assert!(c.pull.delta);
    }

    #[test]
    fn rejects_empty_population() {
        assert!(ProtocolConfig::builder(0).build().is_err());
    }

    #[test]
    fn rejects_bad_fanout() {
        assert!(ProtocolConfig::builder(10)
            .fanout_fraction(0.0)
            .build()
            .is_err());
        assert!(ProtocolConfig::builder(10)
            .fanout_absolute(0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_forward_policy() {
        assert!(ProtocolConfig::builder(10)
            .forward(ForwardPolicy::Constant { p: 2.0 })
            .build()
            .is_err());
    }

    #[test]
    fn rejects_zero_pull_fanout() {
        assert!(ProtocolConfig::builder(10).pull_fanout(0).build().is_err());
    }

    #[test]
    fn rejects_bad_truncation_fraction() {
        assert!(ProtocolConfig::builder(10)
            .truncation(TruncationPolicy::MaxFraction {
                fraction: 0.0,
                discard: DiscardStrategy::Head,
            })
            .build()
            .is_err());
    }

    #[test]
    fn ack_limits() {
        assert_eq!(AckPolicy::None.limit(), 0);
        assert_eq!(AckPolicy::FirstSender.limit(), 1);
        assert_eq!(AckPolicy::FirstK(5).limit(), 5);
    }
}
