//! The partial flooding list `R_f` — the paper's feed-forward mechanism.
//!
//! Every push message carries the set of replicas the update "has already
//! been sent (not necessarily received by all peers in `R_f`)" (§3).
//! Receivers subtract it from their forwarding targets, avoiding duplicate
//! messages *speculatively* rather than reactively; the list also leaks
//! replica addresses ("possibly discovers replicas unknown to her"),
//! gradually propagating global membership knowledge like the name-dropper
//! resource-discovery scheme (§7.2).
//!
//! §4.2 analyses bounding the list with a threshold `L_thr`, discarding
//! "either random entries or the head or tail of the partial list" —
//! [`TruncationPolicy`]/[`DiscardStrategy`] implement exactly those
//! options, at the analysed cost of extra duplicate messages.

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How entries are discarded when a partial list exceeds its bound (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiscardStrategy {
    /// Drop the oldest entries (head of the list).
    Head,
    /// Drop the newest entries (tail of the list).
    Tail,
    /// Drop uniformly random entries.
    Random,
}

/// Bound on the partial list size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TruncationPolicy {
    /// Never truncate (the paper's default analysis).
    None,
    /// Keep at most this many entries.
    MaxEntries {
        /// Entry cap.
        cap: usize,
        /// What to drop when over the cap.
        discard: DiscardStrategy,
    },
    /// Keep at most `fraction · R` entries (`L_thr` normalised, §4.2).
    MaxFraction {
        /// Normalised cap in `(0, 1]`.
        fraction: f64,
        /// What to drop when over the cap.
        discard: DiscardStrategy,
    },
}

impl TruncationPolicy {
    /// Resolves the entry cap for a population of `total_replicas`.
    pub fn cap(&self, total_replicas: usize) -> Option<usize> {
        match *self {
            Self::None => None,
            Self::MaxEntries { cap, .. } => Some(cap),
            Self::MaxFraction { fraction, .. } => {
                Some(((total_replicas as f64) * fraction).floor() as usize)
            }
        }
    }

    fn discard(&self) -> DiscardStrategy {
        match *self {
            Self::None => DiscardStrategy::Tail,
            Self::MaxEntries { discard, .. } | Self::MaxFraction { discard, .. } => discard,
        }
    }
}

/// The flooding list carried in push messages.
///
/// Entries are kept in *insertion order* (oldest first) because the
/// head/tail discard strategies of §4.2 are defined over message age;
/// membership tests use an auxiliary sorted index.
///
/// # Examples
///
/// ```
/// use rumor_core::PartialList;
/// use rumor_types::PeerId;
///
/// let mut list = PartialList::new();
/// list.insert(PeerId::new(3));
/// list.extend([PeerId::new(1), PeerId::new(3)]);
/// assert_eq!(list.len(), 2);
/// assert!(list.contains(PeerId::new(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialList {
    // Insertion-ordered, duplicate-free.
    entries: Vec<PeerId>,
}

impl PartialList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a list from peers, dropping duplicates, preserving order.
    pub fn from_peers(peers: impl IntoIterator<Item = PeerId>) -> Self {
        let mut list = Self::new();
        list.extend(peers);
        list
    }

    /// Number of entries (`R · l(t)` in the analysis).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no replica is listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `peer` is already listed.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.entries.contains(&peer)
    }

    /// Adds one peer; returns `true` if it was new.
    pub fn insert(&mut self, peer: PeerId) -> bool {
        if self.contains(peer) {
            false
        } else {
            self.entries.push(peer);
            true
        }
    }

    /// Adds every peer from the iterator (set union, `R_f ∪ R_p`).
    pub fn extend(&mut self, peers: impl IntoIterator<Item = PeerId>) {
        for p in peers {
            self.insert(p);
        }
    }

    /// Union with another list (accumulating lists from several senders,
    /// the optional optimisation noted in §4.2).
    pub fn union_with(&mut self, other: &PartialList) {
        self.extend(other.entries.iter().copied());
    }

    /// Entries in insertion order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.entries.iter().copied()
    }

    /// Normalised length `l(t) = |R_f| / R`.
    pub fn normalized_len(&self, total_replicas: usize) -> f64 {
        if total_replicas == 0 {
            0.0
        } else {
            self.entries.len() as f64 / total_replicas as f64
        }
    }

    /// Applies a truncation policy, returning how many entries were
    /// discarded.
    pub fn truncate(
        &mut self,
        policy: &TruncationPolicy,
        total_replicas: usize,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        let Some(cap) = policy.cap(total_replicas) else {
            return 0;
        };
        if self.entries.len() <= cap {
            return 0;
        }
        let excess = self.entries.len() - cap;
        match policy.discard() {
            DiscardStrategy::Head => {
                self.entries.drain(..excess);
            }
            DiscardStrategy::Tail => {
                self.entries.truncate(cap);
            }
            DiscardStrategy::Random => {
                // Choose survivors, preserve their relative order.
                let mut keep_idx: Vec<usize> = (0..self.entries.len()).collect();
                keep_idx.shuffle(rng);
                keep_idx.truncate(cap);
                keep_idx.sort_unstable();
                self.entries = keep_idx.into_iter().map(|i| self.entries[i]).collect();
            }
        }
        excess
    }
}

impl FromIterator<PeerId> for PartialList {
    fn from_iter<I: IntoIterator<Item = PeerId>>(iter: I) -> Self {
        Self::from_peers(iter)
    }
}

impl Extend<PeerId> for PartialList {
    fn extend<I: IntoIterator<Item = PeerId>>(&mut self, iter: I) {
        PartialList::extend(self, iter);
    }
}

impl fmt::Display for PartialList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R_f({} replicas)", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    fn peers(ids: impl IntoIterator<Item = u32>) -> Vec<PeerId> {
        ids.into_iter().map(PeerId::new).collect()
    }

    #[test]
    fn insert_deduplicates() {
        let mut l = PartialList::new();
        assert!(l.insert(PeerId::new(1)));
        assert!(!l.insert(PeerId::new(1)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn preserves_insertion_order() {
        let l = PartialList::from_peers(peers([5, 1, 9, 1]));
        let order: Vec<u32> = l.iter().map(|p| p.as_u32()).collect();
        assert_eq!(order, vec![5, 1, 9]);
    }

    #[test]
    fn union_is_idempotent() {
        let mut a = PartialList::from_peers(peers([1, 2]));
        let b = PartialList::from_peers(peers([2, 3]));
        a.union_with(&b);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn normalized_len_matches_paper() {
        let l = PartialList::from_peers(peers(0..50));
        assert!((l.normalized_len(1000) - 0.05).abs() < 1e-12);
        assert_eq!(l.normalized_len(0), 0.0);
    }

    #[test]
    fn truncate_none_is_noop() {
        let mut l = PartialList::from_peers(peers(0..10));
        assert_eq!(l.truncate(&TruncationPolicy::None, 100, &mut rng()), 0);
        assert_eq!(l.len(), 10);
    }

    #[test]
    fn truncate_head_drops_oldest() {
        let mut l = PartialList::from_peers(peers([1, 2, 3, 4]));
        let policy = TruncationPolicy::MaxEntries {
            cap: 2,
            discard: DiscardStrategy::Head,
        };
        assert_eq!(l.truncate(&policy, 100, &mut rng()), 2);
        let order: Vec<u32> = l.iter().map(|p| p.as_u32()).collect();
        assert_eq!(order, vec![3, 4]);
    }

    #[test]
    fn truncate_tail_drops_newest() {
        let mut l = PartialList::from_peers(peers([1, 2, 3, 4]));
        let policy = TruncationPolicy::MaxEntries {
            cap: 2,
            discard: DiscardStrategy::Tail,
        };
        l.truncate(&policy, 100, &mut rng());
        let order: Vec<u32> = l.iter().map(|p| p.as_u32()).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn truncate_random_keeps_cap_entries() {
        let mut l = PartialList::from_peers(peers(0..100));
        let policy = TruncationPolicy::MaxEntries {
            cap: 10,
            discard: DiscardStrategy::Random,
        };
        assert_eq!(l.truncate(&policy, 1000, &mut rng()), 90);
        assert_eq!(l.len(), 10);
        // Remaining entries are still duplicate-free and ordered by
        // original insertion.
        let order: Vec<u32> = l.iter().map(|p| p.as_u32()).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "relative order preserved for 0..100 input");
    }

    #[test]
    fn max_fraction_scales_with_population() {
        let policy = TruncationPolicy::MaxFraction {
            fraction: 0.1,
            discard: DiscardStrategy::Tail,
        };
        assert_eq!(policy.cap(1000), Some(100));
        let mut l = PartialList::from_peers(peers(0..150));
        l.truncate(&policy, 1000, &mut rng());
        assert_eq!(l.len(), 100);
    }

    #[test]
    fn collect_from_iterator() {
        let l: PartialList = peers([4, 4, 2]).into_iter().collect();
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn display_shows_count() {
        let l = PartialList::from_peers(peers([1, 2]));
        assert_eq!(format!("{l}"), "R_f(2 replicas)");
    }
}
