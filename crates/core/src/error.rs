//! Error type for protocol configuration and wire decoding.

use std::error::Error;
use std::fmt;

/// Errors surfaced by `rumor-core` public APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The parameter at fault.
        parameter: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A wire message could not be decoded.
    Decode {
        /// Why decoding failed.
        reason: String,
    },
}

impl CoreError {
    pub(crate) fn invalid_config(parameter: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidConfig {
            parameter,
            reason: reason.into(),
        }
    }

    pub(crate) fn decode(reason: impl Into<String>) -> Self {
        Self::Decode {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { parameter, reason } => {
                write!(f, "invalid protocol configuration `{parameter}`: {reason}")
            }
            Self::Decode { reason } => write!(f, "malformed message: {reason}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = CoreError::invalid_config("fanout", "must be positive");
        assert!(e.to_string().contains("fanout"));
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn decode_error_displays_reason() {
        let e = CoreError::decode("truncated header");
        assert!(e.to_string().contains("truncated header"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<CoreError>();
    }
}
