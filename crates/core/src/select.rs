//! Random target selection with soft preferences.
//!
//! §6's acknowledgement optimisation biases target choice: replicas that
//! recently acked "will have better chances to find online replicas in
//! future updates", while replicas that failed to ack are skipped "for
//! short time intervals". [`select_targets`] implements that three-tier
//! preference (preferred / neutral / avoided) over a uniform random base.

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;

/// Selects up to `count` distinct targets from `candidates`.
///
/// Candidates in `preferred` are chosen first (shuffled among themselves),
/// then neutral candidates, and candidates in `avoided` only if nothing
/// else remains — the ack heuristic must degrade to plain uniform gossip
/// rather than starve the push. Within each tier the choice is uniformly
/// random.
///
/// # Examples
///
/// ```
/// use rumor_core::select_targets;
/// use rumor_types::PeerId;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let candidates: Vec<PeerId> = (0..10).map(PeerId::new).collect();
/// let picked = select_targets(&candidates, 3, &[], &[], &mut rng);
/// assert_eq!(picked.len(), 3);
/// ```
pub fn select_targets(
    candidates: &[PeerId],
    count: usize,
    preferred: &[PeerId],
    avoided: &[PeerId],
    rng: &mut ChaCha8Rng,
) -> Vec<PeerId> {
    let mut scratch = SelectScratch::default();
    let mut out = Vec::new();
    select_targets_into(
        candidates,
        count,
        preferred,
        avoided,
        rng,
        &mut scratch,
        &mut out,
    );
    out
}

/// Reusable tier buffers for [`select_targets_into`], so repeated
/// selections (every push forward and pull trigger) allocate nothing in
/// steady state.
#[derive(Debug, Clone, Default)]
pub struct SelectScratch {
    first: Vec<PeerId>,
    middle: Vec<PeerId>,
    last: Vec<PeerId>,
}

/// Allocation-free form of [`select_targets`]: writes the selection into
/// `out` (cleared first), partitioning through `scratch`. RNG consumption
/// and the selected sequence are identical to [`select_targets`].
#[allow(clippy::too_many_arguments)]
pub fn select_targets_into(
    candidates: &[PeerId],
    count: usize,
    preferred: &[PeerId],
    avoided: &[PeerId],
    rng: &mut ChaCha8Rng,
    scratch: &mut SelectScratch,
    out: &mut Vec<PeerId>,
) {
    out.clear();
    if count == 0 || candidates.is_empty() {
        return;
    }
    scratch.first.clear();
    scratch.middle.clear();
    scratch.last.clear();
    for &c in candidates {
        if preferred.contains(&c) {
            scratch.first.push(c);
        } else if avoided.contains(&c) {
            scratch.last.push(c);
        } else {
            scratch.middle.push(c);
        }
    }
    scratch.first.shuffle(rng);
    scratch.middle.shuffle(rng);
    scratch.last.shuffle(rng);
    out.extend(
        scratch
            .first
            .iter()
            .chain(&scratch.middle)
            .chain(&scratch.last)
            .take(count)
            .copied(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(13)
    }

    fn ids(v: impl IntoIterator<Item = u32>) -> Vec<PeerId> {
        v.into_iter().map(PeerId::new).collect()
    }

    #[test]
    fn empty_inputs() {
        assert!(select_targets(&[], 3, &[], &[], &mut rng()).is_empty());
        assert!(select_targets(&ids([1]), 0, &[], &[], &mut rng()).is_empty());
    }

    #[test]
    fn selects_exactly_count_when_available() {
        let picked = select_targets(&ids(0..100), 10, &[], &[], &mut rng());
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "no duplicates");
    }

    #[test]
    fn returns_fewer_when_candidates_scarce() {
        let picked = select_targets(&ids([1, 2]), 10, &[], &[], &mut rng());
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn preferred_come_first() {
        let pref = ids([7, 8]);
        let picked = select_targets(&ids(0..10), 2, &pref, &[], &mut rng());
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|p| pref.contains(p)));
    }

    #[test]
    fn avoided_used_only_as_last_resort() {
        let avoid = ids([0, 1]);
        // Plenty of neutral candidates: avoided never picked.
        let picked = select_targets(&ids(0..10), 5, &[], &avoid, &mut rng());
        assert!(picked.iter().all(|p| !avoid.contains(p)));
        // Only avoided candidates exist: they are used.
        let picked = select_targets(&ids([0, 1]), 2, &[], &avoid, &mut rng());
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn selection_is_roughly_uniform_without_preferences() {
        let candidates = ids(0..10);
        let mut counts = [0u32; 10];
        let mut r = rng();
        for _ in 0..5000 {
            for p in select_targets(&candidates, 3, &[], &[], &mut r) {
                counts[p.index()] += 1;
            }
        }
        // Each peer expected ≈ 1500 hits.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1300..=1700).contains(&c), "peer {i} picked {c} times");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = select_targets(&ids(0..50), 5, &[], &[], &mut rng());
        let b = select_targets(&ids(0..50), 5, &[], &[], &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn into_variant_matches_allocating_variant_bit_for_bit() {
        // Same seed, same selection, same RNG consumption — proven by a
        // follow-up draw landing on the same value through both paths.
        let candidates = ids(0..40);
        let pref = ids([3, 5]);
        let avoid = ids([7, 9, 11]);
        let mut r1 = rng();
        let a = select_targets(&candidates, 6, &pref, &avoid, &mut r1);
        let mut r2 = rng();
        let mut scratch = SelectScratch::default();
        let mut out = Vec::new();
        for _ in 0..3 {
            // Reuse across calls must not leak prior state.
            select_targets_into(
                &candidates,
                6,
                &pref,
                &avoid,
                &mut r2,
                &mut scratch,
                &mut out,
            );
        }
        let mut r2b = rng();
        select_targets_into(
            &candidates,
            6,
            &pref,
            &avoid,
            &mut r2b,
            &mut scratch,
            &mut out,
        );
        assert_eq!(a, out);
        assert_eq!(
            rand::Rng::gen::<u64>(&mut r1),
            rand::Rng::gen::<u64>(&mut r2b),
            "RNG streams must stay aligned"
        );
    }
}
