//! Version lineages — the paper's "vector of version identifiers".
//!
//! Footnote 1 of the paper defines the version `V` carried by an update as
//! `(version_id_1, version_id_2, …, version_id_k)`: the *history* of
//! version identifiers a data item has passed through. A lineage that
//! extends another strictly supersedes it; two lineages that diverge are
//! concurrent and their values coexist as distinct versions (§3: altered
//! data "may be treated as distinct and coexists as different versions").

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_types::VersionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How two lineages relate in the version partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VersionRelation {
    /// Identical histories.
    Equal,
    /// `self` strictly extends the other lineage (newer).
    Dominates,
    /// The other lineage strictly extends `self` (older).
    DominatedBy,
    /// Histories diverged: neither is a prefix of the other.
    Concurrent,
}

/// An append-only chain of version identifiers for one data item.
///
/// # Examples
///
/// ```
/// use rumor_core::{Lineage, VersionRelation};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let v1 = Lineage::root(&mut rng);
/// let v2 = v1.child(&mut rng);
/// assert_eq!(v2.relation(&v1), VersionRelation::Dominates);
///
/// let fork = v1.child(&mut rng);
/// assert_eq!(fork.relation(&v2), VersionRelation::Concurrent);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lineage {
    ids: Vec<VersionId>,
}

impl Lineage {
    /// Creates a fresh single-entry lineage with a random version id.
    ///
    /// The paper derives ids from a secure hash of time, IP and a random
    /// number; 128 random bits give the same collision guarantees while
    /// keeping runs reproducible (`DESIGN.md` §4).
    pub fn root(rng: &mut ChaCha8Rng) -> Self {
        Self {
            ids: vec![fresh_id(rng)],
        }
    }

    /// Builds a lineage from explicit ids.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty: an empty history names no version.
    pub fn from_ids(ids: Vec<VersionId>) -> Self {
        assert!(!ids.is_empty(), "a lineage must contain at least one id");
        Self { ids }
    }

    /// Returns a new lineage extending this one by a fresh random id.
    #[must_use]
    pub fn child(&self, rng: &mut ChaCha8Rng) -> Self {
        let mut ids = self.ids.clone();
        ids.push(fresh_id(rng));
        Self { ids }
    }

    /// The newest version identifier (the chain head).
    pub fn head(&self) -> VersionId {
        *self.ids.last().expect("lineage is never empty")
    }

    /// Number of versions in the history.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Lineages are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The full chain of ids, oldest first.
    pub fn ids(&self) -> &[VersionId] {
        &self.ids
    }

    /// Whether `prefix` is a (non-strict) prefix of this lineage.
    pub fn has_prefix(&self, prefix: &Lineage) -> bool {
        self.ids.len() >= prefix.ids.len() && self.ids[..prefix.ids.len()] == prefix.ids[..]
    }

    /// Computes the partial-order relation between two lineages.
    pub fn relation(&self, other: &Lineage) -> VersionRelation {
        if self.ids == other.ids {
            VersionRelation::Equal
        } else if self.has_prefix(other) {
            VersionRelation::Dominates
        } else if other.has_prefix(self) {
            VersionRelation::DominatedBy
        } else {
            VersionRelation::Concurrent
        }
    }

    /// True when this lineage supersedes or equals `other`.
    pub fn covers(&self, other: &Lineage) -> bool {
        matches!(
            self.relation(other),
            VersionRelation::Equal | VersionRelation::Dominates
        )
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lineage[{} -> {}]", self.ids.len(), self.head())
    }
}

fn fresh_id(rng: &mut ChaCha8Rng) -> VersionId {
    VersionId::from_bits(rng.gen())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(2)
    }

    #[test]
    fn root_has_length_one() {
        let l = Lineage::root(&mut rng());
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
        assert_eq!(l.head(), l.ids()[0]);
    }

    #[test]
    fn child_extends_parent() {
        let mut r = rng();
        let parent = Lineage::root(&mut r);
        let child = parent.child(&mut r);
        assert_eq!(child.len(), 2);
        assert!(child.has_prefix(&parent));
        assert_eq!(child.relation(&parent), VersionRelation::Dominates);
        assert_eq!(parent.relation(&child), VersionRelation::DominatedBy);
    }

    #[test]
    fn equal_relation() {
        let l = Lineage::root(&mut rng());
        assert_eq!(l.relation(&l.clone()), VersionRelation::Equal);
        assert!(l.covers(&l.clone()));
    }

    #[test]
    fn forks_are_concurrent() {
        let mut r = rng();
        let base = Lineage::root(&mut r);
        let a = base.child(&mut r);
        let b = base.child(&mut r);
        assert_eq!(a.relation(&b), VersionRelation::Concurrent);
        assert_eq!(b.relation(&a), VersionRelation::Concurrent);
        assert!(!a.covers(&b));
    }

    #[test]
    fn unrelated_roots_are_concurrent() {
        let mut r = rng();
        let a = Lineage::root(&mut r);
        let b = Lineage::root(&mut r);
        assert_eq!(a.relation(&b), VersionRelation::Concurrent);
    }

    #[test]
    fn covers_is_reflexive_and_respects_dominance() {
        let mut r = rng();
        let a = Lineage::root(&mut r);
        let b = a.child(&mut r);
        let c = b.child(&mut r);
        assert!(c.covers(&a), "grandchild covers grandparent");
        assert!(!a.covers(&c));
    }

    #[test]
    #[should_panic(expected = "at least one id")]
    fn from_ids_rejects_empty() {
        let _ = Lineage::from_ids(vec![]);
    }

    #[test]
    fn display_mentions_length() {
        let mut r = rng();
        let l = Lineage::root(&mut r).child(&mut r);
        assert!(format!("{l}").contains("lineage[2"));
    }

    #[test]
    fn fresh_ids_do_not_collide_in_practice() {
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(fresh_id(&mut r)));
        }
    }
}
