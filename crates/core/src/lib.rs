//! `rumor-core` — the hybrid push/pull update protocol of Datta,
//! Hauswirth & Aberer, *Updates in Highly Unreliable, Replicated
//! Peer-to-Peer Systems* (ICDCS 2003).
//!
//! The crate implements the paper's primary contribution as a sans-IO
//! replica state machine, [`ReplicaPeer`]:
//!
//! * **Push phase** (§3): on receiving `Push(U, V, R_f, t)` a replica that
//!   has not yet processed the update selects a random subset `R_p` of its
//!   known replicas with `|R_p| = R · f_r` and, with probability `PF(t)`,
//!   forwards `Push(U, V, R_f ∪ R_p, t+1)` to `R_p \ R_f`. The partial
//!   flooding list `R_f` — the paper's *feed-forward/speculation*
//!   mechanism — suppresses duplicates and doubles as a replica-discovery
//!   channel (cf. the *name dropper* scheme).
//! * **Pull phase** (§3): replicas that come (back) online, have seen no
//!   update for a while, or receive a pull while unconfident, reconcile
//!   with randomly chosen replicas via version digests (anti-entropy).
//! * **Versioning** (§3, footnote 1): a version is a *chain of version
//!   identifiers* ([`Lineage`]); incomparable lineages coexist as distinct
//!   versions, deletions are tombstones carrying death certificates.
//! * **Self-tuning** (§6): forwarding probability driven by locally
//!   observable signals — duplicate counts, acknowledgements, and the
//!   partial-list length `l(t)` as an estimator of global spread.
//!
//! The peer is a pure state machine implementing [`rumor_net::Node`]:
//! every input writes its [`rumor_net::Effect`]s into a reusable
//! [`rumor_net::EffectSink`], so the same code runs — without allocating
//! on the hot path — under the synchronous round engine (the paper's
//! analysis model), the asynchronous event engine, or any real transport
//! a downstream user wires up.
//!
//! # Examples
//!
//! ```
//! use rumor_core::{ProtocolConfig, ReplicaPeer, Value};
//! use rumor_net::EffectSink;
//! use rumor_types::{DataKey, PeerId, Round};
//! use rand::SeedableRng;
//!
//! let config = ProtocolConfig::builder(100)   // R = 100 replicas
//!     .fanout_fraction(0.05)                  // f_r
//!     .build()?;
//! let mut peer = ReplicaPeer::new(PeerId::new(0), config);
//! peer.learn_replicas((1..100).map(PeerId::new));
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut effects = EffectSink::new();
//! let key = DataKey::from_name("motd");
//! let update = peer.initiate_update(
//!     key, Some(Value::from("hello")), Round::ZERO, &mut rng, &mut effects);
//! assert_eq!(effects.len(), 5, "R * f_r = 5 initial pushes");
//! assert!(peer.store().latest(key).is_some());
//! # let _ = update;
//! # Ok::<(), rumor_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod digest;
mod error;
mod fanout;
mod forward;
mod message;
mod partial_list;
mod peer;
mod query;
mod select;
mod store;
mod update;
mod value;
mod version;

pub use config::{AckPolicy, ProtocolConfig, ProtocolConfigBuilder, PullConfig, PullStrategy};
pub use digest::StoreDigest;
pub use error::CoreError;
pub use fanout::FanoutPolicy;
pub use forward::{ForwardPolicy, TuningSignals};
pub use message::{Message, PushMessage, REPLICA_ENTRY_BYTES};
pub use partial_list::{DiscardStrategy, PartialList, TruncationPolicy};
pub use peer::{PeerStats, ReplicaPeer};
pub use query::{QueryAnswer, QueryPolicy};
pub use select::{select_targets, select_targets_into, SelectScratch};
pub use store::{ApplyOutcome, ReplicaStore, StoredVersion};
pub use update::Update;
pub use value::Value;
pub use version::{Lineage, VersionRelation};
