//! Fanout policies — the paper's `f_r`.
//!
//! §4.1 deliberately separates the *fanout fraction* `f_r` from the
//! forwarding probability `PF(t)` "because we wanted to study the effects
//! of both these factors in limited flooding algorithms": Gnutella has
//! fanout but no `PF`, gossip routing has `PF` but fixed fanout. Both
//! knobs exist here for the same reason.

use serde::{Deserialize, Serialize};

/// How many replicas a forwarding peer addresses per push.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FanoutPolicy {
    /// Address `fraction · R` replicas (`f_r`, the paper's default).
    Fraction {
        /// The paper's `f_r` in `(0, 1]`.
        f_r: f64,
    },
    /// Address a fixed number of replicas regardless of `R`.
    Absolute {
        /// Number of targets per push.
        count: usize,
    },
}

impl FanoutPolicy {
    /// Resolves the number of push targets for a population of
    /// `total_replicas`, always at least 1 (a forwarding decision that
    /// addresses nobody is meaningless).
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_core::FanoutPolicy;
    /// assert_eq!(FanoutPolicy::Fraction { f_r: 0.01 }.targets(1000), 10);
    /// assert_eq!(FanoutPolicy::Absolute { count: 4 }.targets(1000), 4);
    /// ```
    pub fn targets(&self, total_replicas: usize) -> usize {
        match *self {
            Self::Fraction { f_r } => ((total_replicas as f64 * f_r).round() as usize).max(1),
            Self::Absolute { count } => count.max(1),
        }
    }

    /// The effective fanout fraction for a population (used where the
    /// analysis needs `f_r` regardless of which representation was
    /// configured).
    pub fn fraction(&self, total_replicas: usize) -> f64 {
        match *self {
            Self::Fraction { f_r } => f_r,
            Self::Absolute { count } => {
                if total_replicas == 0 {
                    0.0
                } else {
                    count as f64 / total_replicas as f64
                }
            }
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Self::Fraction { f_r } => {
                if f_r > 0.0 && f_r <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("f_r must be in (0,1], got {f_r}"))
                }
            }
            Self::Absolute { count } => {
                if count > 0 {
                    Ok(())
                } else {
                    Err("fanout count must be ≥ 1".to_owned())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_rounds_to_nearest() {
        assert_eq!(FanoutPolicy::Fraction { f_r: 0.005 }.targets(1000), 5);
        assert_eq!(FanoutPolicy::Fraction { f_r: 0.0004 }.targets(10_000), 4);
    }

    #[test]
    fn fraction_is_at_least_one() {
        assert_eq!(FanoutPolicy::Fraction { f_r: 0.001 }.targets(10), 1);
    }

    #[test]
    fn absolute_ignores_population() {
        let p = FanoutPolicy::Absolute { count: 7 };
        assert_eq!(p.targets(10), 7);
        assert_eq!(p.targets(1_000_000), 7);
    }

    #[test]
    fn fraction_accessor_inverts_absolute() {
        let p = FanoutPolicy::Absolute { count: 10 };
        assert!((p.fraction(1000) - 0.01).abs() < 1e-12);
        assert_eq!(p.fraction(0), 0.0);
        let q = FanoutPolicy::Fraction { f_r: 0.02 };
        assert_eq!(q.fraction(12345), 0.02);
    }

    #[test]
    fn validation() {
        assert!(FanoutPolicy::Fraction { f_r: 0.01 }.validate().is_ok());
        assert!(FanoutPolicy::Fraction { f_r: 0.0 }.validate().is_err());
        assert!(FanoutPolicy::Fraction { f_r: 1.2 }.validate().is_err());
        assert!(FanoutPolicy::Absolute { count: 1 }.validate().is_ok());
        assert!(FanoutPolicy::Absolute { count: 0 }.validate().is_err());
    }
}
