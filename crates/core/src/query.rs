//! Query servicing over replicated, possibly-stale data.
//!
//! §4.4: "Since requests are more sensitive … we may define some majority
//! logic, or use a version scheme for identifying latest updates, or a
//! hybrid of the two." A querier collects [`QueryAnswer`]s from several
//! replicas and resolves them with a [`QueryPolicy`].

use crate::value::Value;
use crate::version::Lineage;
use rumor_types::DataKey;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One replica's answer to a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// The queried key.
    pub key: DataKey,
    /// The answering replica's latest version, if it stores the key.
    pub lineage: Option<Lineage>,
    /// The corresponding value (`None` for tombstoned or unknown keys).
    pub value: Option<Value>,
    /// Whether the replica considers itself in sync (paper §3:
    /// `not_confident` triggers a pull instead of a confident answer).
    pub confident: bool,
}

impl QueryAnswer {
    /// An answer from a replica that does not store the key.
    pub fn unknown(key: DataKey, confident: bool) -> Self {
        Self {
            key,
            lineage: None,
            value: None,
            confident,
        }
    }
}

/// How multiple answers are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryPolicy {
    /// The version scheme: trust the answer with the longest lineage
    /// (ties broken by head id), i.e. the most recent version seen.
    Latest,
    /// Majority logic: the version head reported by the most replicas
    /// wins; ties resolve to the more recent version.
    Majority,
}

impl QueryPolicy {
    /// Resolves collected answers into a single one, or `None` when no
    /// replica returned a version.
    pub fn resolve(&self, answers: &[QueryAnswer]) -> Option<QueryAnswer> {
        let versioned: Vec<&QueryAnswer> = answers.iter().filter(|a| a.lineage.is_some()).collect();
        if versioned.is_empty() {
            return None;
        }
        let newest = |candidates: &[&QueryAnswer]| -> QueryAnswer {
            (*candidates
                .iter()
                .max_by_key(|a| {
                    let l = a.lineage.as_ref().expect("filtered");
                    (l.len(), l.head())
                })
                .expect("non-empty"))
            .clone()
        };
        match self {
            Self::Latest => Some(newest(&versioned)),
            Self::Majority => {
                let mut votes: BTreeMap<_, usize> = BTreeMap::new();
                for a in &versioned {
                    *votes
                        .entry(a.lineage.as_ref().expect("filtered").head())
                        .or_default() += 1;
                }
                let best_count = *votes.values().max().expect("non-empty");
                let winners: Vec<&QueryAnswer> = versioned
                    .iter()
                    .filter(|a| votes[&a.lineage.as_ref().expect("filtered").head()] == best_count)
                    .copied()
                    .collect();
                Some(newest(&winners))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(8)
    }

    fn answer(lineage: &Lineage, val: &str) -> QueryAnswer {
        QueryAnswer {
            key: DataKey::new(1),
            lineage: Some(lineage.clone()),
            value: Some(Value::from(val)),
            confident: true,
        }
    }

    #[test]
    fn empty_answers_resolve_to_none() {
        assert!(QueryPolicy::Latest.resolve(&[]).is_none());
        assert!(QueryPolicy::Majority.resolve(&[]).is_none());
        let unknowns = vec![QueryAnswer::unknown(DataKey::new(1), true)];
        assert!(QueryPolicy::Latest.resolve(&unknowns).is_none());
    }

    #[test]
    fn latest_picks_longest_lineage() {
        let mut r = rng();
        let v1 = Lineage::root(&mut r);
        let v2 = v1.child(&mut r);
        let resolved = QueryPolicy::Latest
            .resolve(&[answer(&v1, "old"), answer(&v2, "new")])
            .unwrap();
        assert_eq!(resolved.value.unwrap().as_bytes(), b"new");
    }

    #[test]
    fn majority_outvotes_a_longer_minority() {
        let mut r = rng();
        let common = Lineage::root(&mut r);
        let fresh = common.child(&mut r); // newer, but only one replica has it
        let answers = vec![
            answer(&common, "stable"),
            answer(&common, "stable"),
            answer(&fresh, "fresh"),
        ];
        let resolved = QueryPolicy::Majority.resolve(&answers).unwrap();
        assert_eq!(resolved.value.unwrap().as_bytes(), b"stable");
        // The version scheme would instead pick the fresh one.
        let latest = QueryPolicy::Latest.resolve(&answers).unwrap();
        assert_eq!(latest.value.unwrap().as_bytes(), b"fresh");
    }

    #[test]
    fn majority_tie_resolves_to_newest() {
        let mut r = rng();
        let a = Lineage::root(&mut r);
        let b = a.child(&mut r);
        let answers = vec![answer(&a, "a"), answer(&b, "b")];
        let resolved = QueryPolicy::Majority.resolve(&answers).unwrap();
        assert_eq!(resolved.value.unwrap().as_bytes(), b"b");
    }

    #[test]
    fn unknown_answers_do_not_vote() {
        let mut r = rng();
        let v = Lineage::root(&mut r);
        let answers = vec![
            QueryAnswer::unknown(DataKey::new(1), true),
            QueryAnswer::unknown(DataKey::new(1), true),
            answer(&v, "present"),
        ];
        let resolved = QueryPolicy::Majority.resolve(&answers).unwrap();
        assert_eq!(resolved.value.unwrap().as_bytes(), b"present");
    }
}
