//! The update record `(U, V)` disseminated by the protocol.

use crate::value::Value;
use crate::version::Lineage;
use rumor_types::{DataKey, PeerId, UpdateId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One version of one data item, as carried by push messages and pull
/// responses.
///
/// A `None` value is a *tombstone*: the paper handles deletions with
/// "conventional tombstones and death certificates" (§3) — the lineage is
/// the death certificate proving the delete supersedes earlier writes.
///
/// # Examples
///
/// ```
/// use rumor_core::{Lineage, Update, Value};
/// use rumor_types::{DataKey, PeerId};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let write = Update::write(
///     DataKey::from_name("addr/alice"),
///     Lineage::root(&mut rng),
///     Value::from("lausanne"),
///     PeerId::new(4),
/// );
/// let delete = write.superseding_delete(&mut rng);
/// assert!(delete.is_tombstone());
/// assert!(delete.lineage().covers(write.lineage()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Update {
    key: DataKey,
    lineage: Lineage,
    value: Option<Value>,
    origin: PeerId,
}

impl Update {
    /// Creates a write (value-bearing) update.
    pub fn write(key: DataKey, lineage: Lineage, value: Value, origin: PeerId) -> Self {
        Self {
            key,
            lineage,
            value: Some(value),
            origin,
        }
    }

    /// Creates a tombstone update (a delete with a death certificate).
    pub fn tombstone(key: DataKey, lineage: Lineage, origin: PeerId) -> Self {
        Self {
            key,
            lineage,
            value: None,
            origin,
        }
    }

    /// Builds a delete that supersedes this update (extends its lineage).
    #[must_use]
    pub fn superseding_delete(&self, rng: &mut rand_chacha::ChaCha8Rng) -> Self {
        Self::tombstone(self.key, self.lineage.child(rng), self.origin)
    }

    /// The data item this update concerns.
    pub const fn key(&self) -> DataKey {
        self.key
    }

    /// The version history of this update.
    pub const fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// The new value, or `None` for a tombstone.
    pub const fn value(&self) -> Option<&Value> {
        self.value.as_ref()
    }

    /// The replica that initiated the update.
    pub const fn origin(&self) -> PeerId {
        self.origin
    }

    /// Whether this update deletes the item.
    pub const fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// The globally unique identifier of this update event, used for the
    /// "push at most once" bookkeeping.
    pub fn id(&self) -> UpdateId {
        UpdateId::for_version(self.key, self.lineage.head())
    }

    /// Payload size in bytes (`|U|` in the message-length analysis).
    pub fn payload_len(&self) -> usize {
        self.value.as_ref().map_or(0, Value::len)
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tombstone() {
            write!(f, "delete {} ({})", self.key, self.lineage)
        } else {
            write!(f, "write {} ({})", self.key, self.lineage)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(4)
    }

    fn sample_write(r: &mut ChaCha8Rng) -> Update {
        Update::write(
            DataKey::new(1),
            Lineage::root(r),
            Value::from("v"),
            PeerId::new(0),
        )
    }

    #[test]
    fn write_has_value_and_id() {
        let mut r = rng();
        let u = sample_write(&mut r);
        assert!(!u.is_tombstone());
        assert_eq!(u.value().unwrap().as_bytes(), b"v");
        assert_eq!(u.payload_len(), 1);
        assert_eq!(u.id(), UpdateId::for_version(u.key(), u.lineage().head()));
    }

    #[test]
    fn tombstone_has_no_value() {
        let mut r = rng();
        let t = Update::tombstone(DataKey::new(2), Lineage::root(&mut r), PeerId::new(1));
        assert!(t.is_tombstone());
        assert_eq!(t.payload_len(), 0);
        assert!(t.value().is_none());
    }

    #[test]
    fn superseding_delete_dominates() {
        let mut r = rng();
        let w = sample_write(&mut r);
        let d = w.superseding_delete(&mut r);
        assert!(d.is_tombstone());
        assert_eq!(d.key(), w.key());
        assert!(d.lineage().covers(w.lineage()));
        assert_ne!(d.id(), w.id(), "a delete is a distinct update event");
    }

    #[test]
    fn ids_differ_across_keys() {
        let mut r = rng();
        let lineage = Lineage::root(&mut r);
        let a = Update::write(
            DataKey::new(1),
            lineage.clone(),
            Value::from("x"),
            PeerId::new(0),
        );
        let b = Update::write(DataKey::new(2), lineage, Value::from("x"), PeerId::new(0));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn display_distinguishes_kinds() {
        let mut r = rng();
        let w = sample_write(&mut r);
        let d = w.superseding_delete(&mut r);
        assert!(format!("{w}").starts_with("write"));
        assert!(format!("{d}").starts_with("delete"));
    }
}
