//! Forwarding-probability policies `PF(t)`.
//!
//! §3 introduces `PF(t)` as "any function, and is a self tuning parameter,
//! determined locally", and Fig. 4 evaluates the concrete shapes
//! reproduced here. §6 describes the self-tuning variant: duplicates
//! received, acknowledgements and the partial-list length are "essential,
//! locally available metric[s]" for reducing `PF(t)` as the rumor spreads.

use serde::{Deserialize, Serialize};

/// Locally observable signals available when deciding whether to forward.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TuningSignals {
    /// Duplicate copies of this update received so far (§6: "the number of
    /// duplicate messages received by a replica … essential, locally
    /// available metric").
    pub duplicates: u32,
    /// Normalised partial-list length `l(t)` — an estimate of how far the
    /// update has already spread (§6: "message length `L(t)` … provides an
    /// estimate of the extent of propagation").
    pub list_coverage: f64,
    /// Acknowledgements received for this update's pushes.
    pub acks: u32,
}

/// The probability `PF(t)` that a replica which received an update in
/// round `t−1` forwards it in round `t`.
///
/// # Examples
///
/// ```
/// use rumor_core::{ForwardPolicy, TuningSignals};
///
/// let pf = ForwardPolicy::ExponentialDecay { base: 0.9 };
/// let s = TuningSignals::default();
/// assert!((pf.probability(0, &s) - 1.0).abs() < 1e-12);
/// assert!((pf.probability(2, &s) - 0.81).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForwardPolicy {
    /// Always forward (`PF = 1`, plain constrained flooding — the
    /// Gnutella-like baseline of Fig. 1–3).
    Always,
    /// Forward with a fixed probability (`PF = p`, Fig. 4's `PF = 0.8`).
    Constant {
        /// The fixed probability.
        p: f64,
    },
    /// `PF(t) = max(0, 1 − rate · t)` (Fig. 4's `PF(t) = 1 − 0.1 t`).
    LinearDecay {
        /// Per-round decrement.
        rate: f64,
    },
    /// `PF(t) = base^t` (Fig. 4's `0.9^t`, `0.7^t`, `0.5^t`; Table 2's
    /// "our scheme").
    ExponentialDecay {
        /// Decay base in `(0, 1]`.
        base: f64,
    },
    /// `PF(t) = scale · base^t + offset` (Fig. 5's `0.8 · 0.7^t + 0.2`).
    OffsetExponential {
        /// Multiplier of the decaying part.
        scale: f64,
        /// Decay base.
        base: f64,
        /// Asymptotic forwarding probability.
        offset: f64,
    },
    /// Haas et al.'s GOSSIP1(p, k): flood (`PF = 1`) for the first `k`
    /// rounds, then forward with probability `p` (§5.6).
    FloodThenGossip {
        /// Probability after the flood prefix.
        p: f64,
        /// Number of pure-flooding rounds.
        k: u32,
    },
    /// §6's locally self-tuned policy:
    /// `PF = clamp(base^t · (1 − l(t))^ce · dd^dups, floor, 1)`.
    ///
    /// Coverage (`l(t)`) and duplicates both *damp* forwarding; the floor
    /// keeps the tail population reachable.
    SelfTuning {
        /// Deterministic per-round decay base.
        base: f64,
        /// Exponent applied to `(1 − coverage)`.
        coverage_exponent: f64,
        /// Multiplicative decay per duplicate received.
        duplicate_decay: f64,
        /// Lower bound on the probability.
        floor: f64,
    },
}

impl ForwardPolicy {
    /// A reasonable self-tuning default (used by examples and ablations).
    pub const fn self_tuning_default() -> Self {
        Self::SelfTuning {
            base: 0.95,
            coverage_exponent: 1.0,
            duplicate_decay: 0.6,
            floor: 0.05,
        }
    }

    /// Evaluates `PF(t)` under the given local signals, clamped to `[0,1]`.
    pub fn probability(&self, round_t: u32, signals: &TuningSignals) -> f64 {
        let t = round_t as f64;
        let p = match *self {
            Self::Always => 1.0,
            Self::Constant { p } => p,
            Self::LinearDecay { rate } => 1.0 - rate * t,
            Self::ExponentialDecay { base } => base.powf(t),
            Self::OffsetExponential {
                scale,
                base,
                offset,
            } => scale * base.powf(t) + offset,
            Self::FloodThenGossip { p, k } => {
                if round_t < k {
                    1.0
                } else {
                    p
                }
            }
            Self::SelfTuning {
                base,
                coverage_exponent,
                duplicate_decay,
                floor,
            } => {
                let coverage = signals.list_coverage.clamp(0.0, 1.0);
                let tuned = base.powf(t)
                    * (1.0 - coverage).powf(coverage_exponent)
                    * duplicate_decay.powi(signals.duplicates as i32);
                tuned.max(floor)
            }
        };
        p.clamp(0.0, 1.0)
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        let check_prob = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be in [0,1], got {v}"))
            }
        };
        match *self {
            Self::Always => Ok(()),
            Self::Constant { p } => check_prob("p", p),
            Self::LinearDecay { rate } => {
                if rate >= 0.0 && rate.is_finite() {
                    Ok(())
                } else {
                    Err(format!("rate must be ≥ 0, got {rate}"))
                }
            }
            Self::ExponentialDecay { base } => {
                if base > 0.0 && base <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("base must be in (0,1], got {base}"))
                }
            }
            Self::OffsetExponential {
                scale,
                base,
                offset,
            } => {
                check_prob("scale", scale)?;
                check_prob("offset", offset)?;
                if base > 0.0 && base <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("base must be in (0,1], got {base}"))
                }
            }
            Self::FloodThenGossip { p, .. } => check_prob("p", p),
            Self::SelfTuning {
                base,
                coverage_exponent,
                duplicate_decay,
                floor,
            } => {
                check_prob("duplicate_decay", duplicate_decay)?;
                check_prob("floor", floor)?;
                if !(base > 0.0 && base <= 1.0) {
                    return Err(format!("base must be in (0,1], got {base}"));
                }
                if coverage_exponent < 0.0 {
                    return Err(format!(
                        "coverage_exponent must be ≥ 0, got {coverage_exponent}"
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_SIGNALS: TuningSignals = TuningSignals {
        duplicates: 0,
        list_coverage: 0.0,
        acks: 0,
    };

    #[test]
    fn always_is_one() {
        for t in 0..20 {
            assert_eq!(ForwardPolicy::Always.probability(t, &NO_SIGNALS), 1.0);
        }
    }

    #[test]
    fn constant_holds_value() {
        let pf = ForwardPolicy::Constant { p: 0.8 };
        assert_eq!(pf.probability(0, &NO_SIGNALS), 0.8);
        assert_eq!(pf.probability(9, &NO_SIGNALS), 0.8);
    }

    #[test]
    fn linear_decay_matches_figure_4() {
        // PF(t) = 1 − 0.1 t (assuming t < 10).
        let pf = ForwardPolicy::LinearDecay { rate: 0.1 };
        assert!((pf.probability(3, &NO_SIGNALS) - 0.7).abs() < 1e-12);
        assert_eq!(pf.probability(15, &NO_SIGNALS), 0.0, "clamped at zero");
    }

    #[test]
    fn exponential_decay_matches_figure_4() {
        let pf = ForwardPolicy::ExponentialDecay { base: 0.7 };
        assert!((pf.probability(2, &NO_SIGNALS) - 0.49).abs() < 1e-12);
    }

    #[test]
    fn offset_exponential_matches_figure_5() {
        // PF(t) = 0.8 · 0.7^t + 0.2.
        let pf = ForwardPolicy::OffsetExponential {
            scale: 0.8,
            base: 0.7,
            offset: 0.2,
        };
        assert!((pf.probability(0, &NO_SIGNALS) - 1.0).abs() < 1e-12);
        assert!((pf.probability(1, &NO_SIGNALS) - 0.76).abs() < 1e-12);
        // Asymptote at 0.2.
        assert!((pf.probability(50, &NO_SIGNALS) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn flood_then_gossip_switches_at_k() {
        let pf = ForwardPolicy::FloodThenGossip { p: 0.8, k: 2 };
        assert_eq!(pf.probability(0, &NO_SIGNALS), 1.0);
        assert_eq!(pf.probability(1, &NO_SIGNALS), 1.0);
        assert_eq!(pf.probability(2, &NO_SIGNALS), 0.8);
        assert_eq!(pf.probability(7, &NO_SIGNALS), 0.8);
    }

    #[test]
    fn self_tuning_damps_with_coverage_and_duplicates() {
        let pf = ForwardPolicy::self_tuning_default();
        let quiet = pf.probability(1, &NO_SIGNALS);
        let covered = pf.probability(
            1,
            &TuningSignals {
                duplicates: 0,
                list_coverage: 0.9,
                acks: 0,
            },
        );
        let noisy = pf.probability(
            1,
            &TuningSignals {
                duplicates: 3,
                list_coverage: 0.9,
                acks: 0,
            },
        );
        assert!(quiet > covered, "{quiet} vs {covered}");
        assert!(covered >= noisy);
    }

    #[test]
    fn self_tuning_respects_floor() {
        let pf = ForwardPolicy::SelfTuning {
            base: 0.5,
            coverage_exponent: 2.0,
            duplicate_decay: 0.1,
            floor: 0.07,
        };
        let p = pf.probability(
            30,
            &TuningSignals {
                duplicates: 20,
                list_coverage: 0.999,
                acks: 0,
            },
        );
        assert!((p - 0.07).abs() < 1e-12);
    }

    #[test]
    fn probabilities_always_in_unit_interval() {
        let policies = [
            ForwardPolicy::Always,
            ForwardPolicy::Constant { p: 0.3 },
            ForwardPolicy::LinearDecay { rate: 0.25 },
            ForwardPolicy::ExponentialDecay { base: 0.5 },
            ForwardPolicy::OffsetExponential {
                scale: 0.8,
                base: 0.7,
                offset: 0.2,
            },
            ForwardPolicy::FloodThenGossip { p: 0.8, k: 2 },
            ForwardPolicy::self_tuning_default(),
        ];
        for pf in policies {
            for t in 0..40 {
                let p = pf.probability(
                    t,
                    &TuningSignals {
                        duplicates: t,
                        list_coverage: t as f64 / 40.0,
                        acks: 0,
                    },
                );
                assert!((0.0..=1.0).contains(&p), "{pf:?} at t={t} gave {p}");
            }
        }
    }

    #[test]
    fn validation_accepts_paper_policies() {
        assert!(ForwardPolicy::Always.validate().is_ok());
        assert!(ForwardPolicy::ExponentialDecay { base: 0.9 }
            .validate()
            .is_ok());
        assert!(ForwardPolicy::self_tuning_default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ForwardPolicy::Constant { p: 1.5 }.validate().is_err());
        assert!(ForwardPolicy::ExponentialDecay { base: 0.0 }
            .validate()
            .is_err());
        assert!(ForwardPolicy::ExponentialDecay { base: 1.5 }
            .validate()
            .is_err());
        assert!(ForwardPolicy::LinearDecay { rate: -1.0 }
            .validate()
            .is_err());
        assert!(ForwardPolicy::SelfTuning {
            base: 0.9,
            coverage_exponent: -1.0,
            duplicate_decay: 0.5,
            floor: 0.0
        }
        .validate()
        .is_err());
    }
}
