//! Opaque replicated values.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The application payload of a data item version.
///
/// The protocol never interprets values — the paper treats the update
/// content `U` as opaque and only its *size* enters the analysis (message
/// length, §4.2). Cheap to clone (reference counted).
///
/// # Examples
///
/// ```
/// use rumor_core::Value;
/// let v = Value::from("concert on friday");
/// assert_eq!(v.len(), 17);
/// assert_eq!(v.as_bytes(), b"concert on friday");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Self(bytes.into())
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Payload size in bytes (the paper's `|U|`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a zero-length payload.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Self(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Self(Bytes::from(v))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.len() <= 32 => write!(f, "{s:?}"),
            Ok(s) => write!(f, "{:?}… ({} bytes)", &s[..32], self.0.len()),
            Err(_) => write!(f, "<{} binary bytes>", self.0.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Value::from("abc").as_bytes(), b"abc");
        assert_eq!(Value::from(vec![1u8, 2]).len(), 2);
        assert_eq!(Value::new(Bytes::from_static(b"x")).as_ref(), b"x");
    }

    #[test]
    fn empty_value() {
        let v = Value::default();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn display_short_text() {
        assert_eq!(format!("{}", Value::from("hi")), "\"hi\"");
    }

    #[test]
    fn display_long_text_is_truncated() {
        let long = "x".repeat(100);
        let shown = format!("{}", Value::from(long.as_str()));
        assert!(shown.contains("100 bytes"));
    }

    #[test]
    fn display_binary_is_nonempty() {
        let v = Value::from(vec![0xff, 0xfe]);
        assert!(format!("{v}").contains("2 binary bytes"));
    }
}
