//! Protocol messages and their wire format.
//!
//! The paper's message-length analysis (§4.2) is exact:
//! `L_M(t) = |U| + R · δ · l(t)` — the update payload plus one entry of
//! `δ` bytes per partial-list member. The wire codec here makes those
//! sizes measurable rather than assumed: [`Message::encoded_len`] is the
//! byte count the length experiments report, and encode/decode round-trips
//! are tested for every variant. Our `δ` is [`REPLICA_ENTRY_BYTES`]
//! (4-byte peer ids; the paper's example uses 10 bytes per replica —
//! a constant factor that cancels in all normalised plots).

use crate::digest::StoreDigest;
use crate::error::CoreError;
use crate::partial_list::PartialList;
use crate::update::Update;
use crate::value::Value;
use crate::version::Lineage;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rumor_types::{DataKey, PeerId, UpdateId, VersionId};
use serde::{Deserialize, Serialize};

/// Bytes one replica address occupies on the wire (the paper's `δ`).
pub const REPLICA_ENTRY_BYTES: usize = 4;

const TAG_PUSH: u8 = 1;
const TAG_PULL_REQUEST: u8 = 2;
const TAG_PULL_RESPONSE: u8 = 3;
const TAG_ACK: u8 = 4;
// Wire-v2 kinds: a v1 decoder must never accept them, so the framed
// codec marks them `WireVersion::V2` (see the `Encode`/`Decode` impls).
const TAG_PULL_SINCE: u8 = 5;
const TAG_DELTA_RESPONSE: u8 = 6;

/// The push-phase request `Push(U, V, R_f, t)` (§3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushMessage {
    /// The update `(U, V)` being disseminated.
    pub update: Update,
    /// The push-round counter `t` ("counts the number of push rounds that
    /// have already been executed for the update").
    pub push_round: u32,
    /// The partial flooding list `R_f`.
    pub flood_list: PartialList,
}

/// All messages exchanged by [`ReplicaPeer`](crate::ReplicaPeer)s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Push-phase update dissemination.
    Push(PushMessage),
    /// Pull-phase inquiry carrying the requester's version digest.
    PullRequest {
        /// What the requester already holds.
        digest: StoreDigest,
    },
    /// Pull-phase reply carrying versions absent from the request digest.
    PullResponse {
        /// Updates the requester was missing.
        updates: Vec<Update>,
    },
    /// §6 optimisation: acknowledge receipt of an update to its sender.
    Ack {
        /// Which update event is acknowledged.
        update_id: UpdateId,
    },
    /// Wire-v2 incremental pull: "send me what changed since your
    /// journal mark `since`" — a constant 8 bytes replacing the
    /// O(store) digest of [`Message::PullRequest`].
    PullSince {
        /// The responder-local journal mark the requester last synced to
        /// (0 = everything).
        since: u64,
    },
    /// Wire-v2 reply to [`Message::PullSince`]: only the suffix of
    /// changes past the quoted mark, plus the responder's new mark.
    DeltaResponse {
        /// The responder's journal mark after this delta; quote it in
        /// the next [`Message::PullSince`].
        upto: u64,
        /// Frontier versions of every key changed since the quoted mark.
        updates: Vec<Update>,
    },
}

impl Message {
    /// The variant tag — also the frame kind byte of the
    /// [`rumor_wire::Encode`] implementation.
    const fn tag(&self) -> u8 {
        match self {
            Self::Push(_) => TAG_PUSH,
            Self::PullRequest { .. } => TAG_PULL_REQUEST,
            Self::PullResponse { .. } => TAG_PULL_RESPONSE,
            Self::Ack { .. } => TAG_ACK,
            Self::PullSince { .. } => TAG_PULL_SINCE,
            Self::DeltaResponse { .. } => TAG_DELTA_RESPONSE,
        }
    }

    /// Exact size of [`Message::encode`]'s output, computed without
    /// allocating.
    pub fn encoded_len(&self) -> usize {
        1 + self.body_len()
    }

    /// Body size without the leading tag byte (the framed payload size).
    fn body_len(&self) -> usize {
        match self {
            Self::Push(p) => {
                update_len(&p.update) + 4 + 4 + p.flood_list.len() * REPLICA_ENTRY_BYTES
            }
            Self::PullRequest { digest } => {
                4 + digest
                    .iter()
                    .map(|(_, heads)| 8 + 2 + heads.len() * 16)
                    .sum::<usize>()
            }
            Self::PullResponse { updates } => 4 + updates.iter().map(update_len).sum::<usize>(),
            Self::Ack { .. } => 16,
            Self::PullSince { .. } => 8,
            Self::DeltaResponse { updates, .. } => {
                8 + 4 + updates.iter().map(update_len).sum::<usize>()
            }
        }
    }

    /// Writes the tag-less body — shared by the legacy inline-tag format
    /// and the framed codec (where the tag travels in the frame header).
    fn put_body(&self, buf: &mut BytesMut) {
        match self {
            Self::Push(p) => {
                put_update(buf, &p.update);
                buf.put_u32(p.push_round);
                buf.put_u32(p.flood_list.len() as u32);
                for peer in p.flood_list.iter() {
                    buf.put_u32(peer.as_u32());
                }
            }
            Self::PullRequest { digest } => {
                buf.put_u32(digest.key_count() as u32);
                for (key, heads) in digest.iter() {
                    buf.put_u64(key.as_u64());
                    buf.put_u16(heads.len() as u16);
                    for h in heads {
                        buf.put_u128(h.to_bits());
                    }
                }
            }
            Self::PullResponse { updates } => {
                buf.put_u32(updates.len() as u32);
                for u in updates {
                    put_update(buf, u);
                }
            }
            Self::Ack { update_id } => {
                buf.put_u128(update_id.to_bits());
            }
            Self::PullSince { since } => {
                buf.put_u64(*since);
            }
            Self::DeltaResponse { upto, updates } => {
                buf.put_u64(*upto);
                buf.put_u32(updates.len() as u32);
                for u in updates {
                    put_update(buf, u);
                }
            }
        }
    }

    /// Reads the tag-less body for the variant named by `tag`. When
    /// `source` is the receive buffer the payload was sliced from,
    /// variable-length fields (update values) become zero-copy views of
    /// it instead of owned copies.
    fn take_body(tag: u8, buf: &mut &[u8], source: Option<&Bytes>) -> Result<Self, CoreError> {
        Ok(match tag {
            TAG_PUSH => {
                let update = take_update(buf, source)?;
                let push_round = take_u32(buf)?;
                let n = take_u32(buf)? as usize;
                let mut flood_list = PartialList::new();
                for _ in 0..n {
                    flood_list.insert(PeerId::new(take_u32(buf)?));
                }
                Self::Push(PushMessage {
                    update,
                    push_round,
                    flood_list,
                })
            }
            TAG_PULL_REQUEST => {
                let keys = take_u32(buf)? as usize;
                let mut digest = StoreDigest::new();
                for _ in 0..keys {
                    let key = DataKey::new(take_u64(buf)?);
                    let heads = take_u16(buf)? as usize;
                    for _ in 0..heads {
                        digest.insert(key, VersionId::from_bits(take_u128(buf)?));
                    }
                }
                Self::PullRequest { digest }
            }
            TAG_PULL_RESPONSE => {
                let n = take_u32(buf)? as usize;
                let mut updates = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    updates.push(take_update(buf, source)?);
                }
                Self::PullResponse { updates }
            }
            TAG_ACK => Self::Ack {
                update_id: UpdateId::from_bits(take_u128(buf)?),
            },
            TAG_PULL_SINCE => Self::PullSince {
                since: take_u64(buf)?,
            },
            TAG_DELTA_RESPONSE => {
                let upto = take_u64(buf)?;
                let n = take_u32(buf)? as usize;
                let mut updates = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    updates.push(take_update(buf, source)?);
                }
                Self::DeltaResponse { upto, updates }
            }
            other => return Err(CoreError::decode(format!("unknown message tag {other}"))),
        })
    }

    /// Serialises the message.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u8(self.tag());
        self.put_body(&mut buf);
        buf.freeze()
    }

    /// Deserialises a message.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] on truncated input, an unknown tag,
    /// or trailing bytes.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut bytes;
        let tag = take_u8(buf)?;
        let msg = Self::take_body(tag, buf, None)?;
        if !buf.is_empty() {
            return Err(CoreError::decode(format!(
                "{} trailing bytes after message",
                buf.len()
            )));
        }
        Ok(msg)
    }
}

/// Framed codec: the variant tag becomes the frame kind, the tag-less
/// body the payload, so a framed push costs
/// [`FRAME_HEADER_BYTES`](rumor_wire::FRAME_HEADER_BYTES)` +
/// encoded_len() − 1` bytes on the wire.
impl rumor_wire::Encode for Message {
    fn kind(&self) -> u8 {
        self.tag()
    }

    fn payload_len(&self) -> usize {
        self.body_len()
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        self.put_body(buf);
    }

    fn wire_version(&self) -> rumor_wire::WireVersion {
        match self {
            Self::PullSince { .. } | Self::DeltaResponse { .. } => rumor_wire::WireVersion::V2,
            _ => rumor_wire::WireVersion::V1,
        }
    }
}

impl rumor_wire::Decode for Message {
    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, rumor_wire::WireError> {
        decode_message_payload(kind, payload, None)
    }

    fn kind_version(kind: u8) -> rumor_wire::WireVersion {
        match kind {
            TAG_PULL_SINCE | TAG_DELTA_RESPONSE => rumor_wire::WireVersion::V2,
            _ => rumor_wire::WireVersion::V1,
        }
    }

    fn decode_payload_bytes(kind: u8, payload: &Bytes) -> Result<Self, rumor_wire::WireError> {
        decode_message_payload(kind, payload, Some(payload))
    }
}

fn decode_message_payload(
    kind: u8,
    payload: &[u8],
    source: Option<&Bytes>,
) -> Result<Message, rumor_wire::WireError> {
    if !matches!(
        kind,
        TAG_PUSH
            | TAG_PULL_REQUEST
            | TAG_PULL_RESPONSE
            | TAG_ACK
            | TAG_PULL_SINCE
            | TAG_DELTA_RESPONSE
    ) {
        return Err(rumor_wire::WireError::UnknownKind { kind });
    }
    let mut buf = payload;
    let msg = Message::take_body(kind, &mut buf, source)
        .map_err(|e| rumor_wire::WireError::malformed(e.to_string()))?;
    if !buf.is_empty() {
        return Err(rumor_wire::WireError::TrailingBytes { count: buf.len() });
    }
    Ok(msg)
}

fn update_len(u: &Update) -> usize {
    // key + origin + lineage(count + ids) + value(flag [+ len + bytes]).
    8 + 4 + 2 + u.lineage().len() * 16 + 1 + u.value().map_or(0, |v| 4 + v.len())
}

fn put_update(buf: &mut BytesMut, u: &Update) {
    buf.put_u64(u.key().as_u64());
    buf.put_u32(u.origin().as_u32());
    buf.put_u16(u.lineage().len() as u16);
    for id in u.lineage().ids() {
        buf.put_u128(id.to_bits());
    }
    match u.value() {
        Some(v) => {
            buf.put_u8(1);
            buf.put_u32(v.len() as u32);
            buf.put_slice(v.as_bytes());
        }
        None => buf.put_u8(0),
    }
}

fn take_update(buf: &mut &[u8], source: Option<&Bytes>) -> Result<Update, CoreError> {
    let key = DataKey::new(take_u64(buf)?);
    let origin = PeerId::new(take_u32(buf)?);
    let n = take_u16(buf)? as usize;
    if n == 0 {
        return Err(CoreError::decode("empty lineage"));
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(VersionId::from_bits(take_u128(buf)?));
    }
    let lineage = Lineage::from_ids(ids);
    match take_u8(buf)? {
        0 => Ok(Update::tombstone(key, lineage, origin)),
        1 => {
            let len = take_u32(buf)? as usize;
            if buf.len() < len {
                return Err(CoreError::decode("truncated value"));
            }
            // Zero-copy hot path: view the value out of the receive
            // buffer; fall back to an owned copy when no buffer backs
            // the slice (legacy inline decode).
            let value = match source {
                Some(src) => Value::new(src.slice_ref(&buf[..len])),
                None => Value::from(buf[..len].to_vec()),
            };
            buf.advance(len);
            Ok(Update::write(key, lineage, value, origin))
        }
        other => Err(CoreError::decode(format!("bad value flag {other}"))),
    }
}

macro_rules! take_int {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        fn $name(buf: &mut &[u8]) -> Result<$ty, CoreError> {
            if buf.len() < $size {
                return Err(CoreError::decode(concat!("truncated ", stringify!($ty))));
            }
            Ok(buf.$get())
        }
    };
}

take_int!(take_u8, u8, get_u8, 1);
take_int!(take_u16, u16, get_u16, 2);
take_int!(take_u32, u32, get_u32, 4);
take_int!(take_u64, u64, get_u64, 8);
take_int!(take_u128, u128, get_u128, 16);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn sample_update(r: &mut ChaCha8Rng) -> Update {
        Update::write(
            DataKey::new(11),
            Lineage::root(r).child(r),
            Value::from("payload"),
            PeerId::new(3),
        )
    }

    fn sample_push(r: &mut ChaCha8Rng) -> Message {
        Message::Push(PushMessage {
            update: sample_update(r),
            push_round: 2,
            flood_list: PartialList::from_peers((0..5).map(PeerId::new)),
        })
    }

    #[test]
    fn push_roundtrip() {
        let m = sample_push(&mut rng());
        let decoded = Message::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn tombstone_roundtrip() {
        let mut r = rng();
        let m = Message::Push(PushMessage {
            update: Update::tombstone(DataKey::new(1), Lineage::root(&mut r), PeerId::new(0)),
            push_round: 0,
            flood_list: PartialList::new(),
        });
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn pull_request_roundtrip() {
        let mut digest = StoreDigest::new();
        digest.insert(DataKey::new(1), VersionId::from_bits(7));
        digest.insert(DataKey::new(1), VersionId::from_bits(9));
        digest.insert(DataKey::new(2), VersionId::from_bits(3));
        let m = Message::PullRequest { digest };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn pull_response_roundtrip() {
        let mut r = rng();
        let m = Message::PullResponse {
            updates: vec![sample_update(&mut r), sample_update(&mut r)],
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn ack_roundtrip() {
        let m = Message::Ack {
            update_id: UpdateId::from_bits(123456789),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn encoded_len_matches_actual_for_all_variants() {
        let mut r = rng();
        let mut digest = StoreDigest::new();
        digest.insert(DataKey::new(5), VersionId::from_bits(1));
        let messages = vec![
            sample_push(&mut r),
            Message::PullRequest { digest },
            Message::PullResponse {
                updates: vec![sample_update(&mut r)],
            },
            Message::PullResponse { updates: vec![] },
            Message::Ack {
                update_id: UpdateId::from_bits(5),
            },
            Message::PullSince { since: 42 },
            Message::DeltaResponse {
                upto: 7,
                updates: vec![sample_update(&mut r)],
            },
            Message::DeltaResponse {
                upto: 0,
                updates: vec![],
            },
        ];
        for m in messages {
            assert_eq!(m.encoded_len(), m.encode().len(), "{m:?}");
        }
    }

    #[test]
    fn push_length_grows_delta_per_list_entry() {
        // L_M = |U| + const + δ·|R_f| (§4.2).
        let mut r = rng();
        let update = sample_update(&mut r);
        let len_with = |n: u32| {
            Message::Push(PushMessage {
                update: update.clone(),
                push_round: 1,
                flood_list: PartialList::from_peers((0..n).map(PeerId::new)),
            })
            .encoded_len()
        };
        assert_eq!(len_with(10) - len_with(0), 10 * REPLICA_ENTRY_BYTES);
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let err = Message::decode(&[99]).unwrap_err();
        assert!(matches!(err, CoreError::Decode { .. }));
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = sample_push(&mut rng());
        let bytes = m.encode();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let m = Message::Ack {
            update_id: UpdateId::from_bits(1),
        };
        let mut bytes = m.encode().to_vec();
        bytes.push(0);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn framed_roundtrip_matches_inline_format() {
        use rumor_wire::{decode_frame, encode_frame, frame_len, FRAME_HEADER_BYTES};
        let mut r = rng();
        let mut digest = StoreDigest::new();
        digest.insert(DataKey::new(5), VersionId::from_bits(1));
        let messages = vec![
            sample_push(&mut r),
            Message::PullRequest { digest },
            Message::PullResponse {
                updates: vec![sample_update(&mut r)],
            },
            Message::Ack {
                update_id: UpdateId::from_bits(5),
            },
        ];
        for m in messages {
            let frame = encode_frame(&m);
            assert_eq!(frame.len(), frame_len(&m));
            // Frame = header + the inline format minus its leading tag
            // (the tag rides in the header's kind byte).
            assert_eq!(frame_len(&m), FRAME_HEADER_BYTES + m.encoded_len() - 1);
            assert_eq!(frame[1], m.encode()[0], "kind byte equals inline tag");
            assert_eq!(&frame[FRAME_HEADER_BYTES..], &m.encode()[1..]);
            assert_eq!(decode_frame::<Message>(&frame).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn framed_decode_rejects_unknown_kind_and_malformed_body() {
        use rumor_wire::{decode_frame, encode_frame, WireError};
        let m = sample_push(&mut rng());
        let mut bytes = encode_frame(&m).to_vec();
        bytes[1] = 200; // frame kind byte
        assert_eq!(
            decode_frame::<Message>(&bytes),
            Err(WireError::UnknownKind { kind: 200 })
        );
        // Truncate the payload but fix up the declared length: the body
        // decoder must reject it as malformed rather than panic.
        let full = encode_frame(&m).to_vec();
        let cut = full.len() - 3;
        let mut truncated = full[..cut].to_vec();
        let declared = (cut - 6) as u32;
        truncated[2..6].copy_from_slice(&declared.to_be_bytes());
        assert!(matches!(
            decode_frame::<Message>(&truncated),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn pull_since_and_delta_roundtrip_inline() {
        let mut r = rng();
        for m in [
            Message::PullSince { since: 0 },
            Message::PullSince { since: u64::MAX },
            Message::DeltaResponse {
                upto: 9,
                updates: vec![sample_update(&mut r), sample_update(&mut r)],
            },
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn v2_kinds_are_framed_as_wire_v2_and_rejected_by_the_v1_decoder() {
        use rumor_wire::{decode_frame, decode_frame_v2, encode_frame, WireError, WIRE_VERSION_V2};
        let mut r = rng();
        let messages = vec![
            Message::PullSince { since: 3 },
            Message::DeltaResponse {
                upto: 5,
                updates: vec![sample_update(&mut r)],
            },
        ];
        for m in messages {
            let frame = encode_frame(&m);
            assert_eq!(frame[0], WIRE_VERSION_V2, "v2 kinds carry the v2 byte");
            assert_eq!(
                decode_frame::<Message>(&frame),
                Err(WireError::BadVersion {
                    found: WIRE_VERSION_V2
                }),
                "the v1 decoder must reject {m:?}"
            );
            let mut out = Vec::new();
            decode_frame_v2::<Message>(&frame, &mut out).unwrap();
            assert_eq!(out, vec![m]);
        }
    }

    #[test]
    fn framed_zero_copy_decode_views_values_out_of_the_frame() {
        use rumor_wire::{decode_frame_v2, encode_frame, FRAME_HEADER_BYTES};
        let m = Message::DeltaResponse {
            upto: 1,
            updates: vec![Update::write(
                DataKey::new(4),
                Lineage::root(&mut rng()),
                Value::from("zero-copy payload"),
                PeerId::new(2),
            )],
        };
        let frame = encode_frame(&m);
        let mut out = Vec::new();
        decode_frame_v2::<Message>(&frame, &mut out).unwrap();
        let Message::DeltaResponse { updates, .. } = &out[0] else {
            panic!("wrong variant");
        };
        let value = updates[0].value().unwrap();
        let frame_base = frame.as_ref().as_ptr() as usize;
        let value_base = value.as_bytes().as_ptr() as usize;
        assert!(
            value_base >= frame_base + FRAME_HEADER_BYTES && value_base < frame_base + frame.len(),
            "value bytes must point into the receive buffer"
        );
    }

    #[test]
    fn decode_rejects_empty_lineage() {
        // Hand-craft a push whose update claims zero lineage entries.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PUSH);
        buf.put_u64(1); // key
        buf.put_u32(0); // origin
        buf.put_u16(0); // empty lineage
        assert!(Message::decode(&buf).is_err());
    }
}
