//! The replica state machine: push phase, pull phase, acks, self-tuning.

use crate::config::{AckPolicy, ProtocolConfig, PullStrategy};
use crate::forward::TuningSignals;
use crate::message::{Message, PushMessage};
use crate::partial_list::PartialList;
use crate::query::QueryAnswer;
use crate::select::{select_targets_into, SelectScratch};
use crate::store::ReplicaStore;
use crate::update::Update;
use crate::value::Value;
use crate::version::Lineage;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_net::{EffectSink, Node};
use rumor_types::{DataKey, PeerId, Round, UpdateId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Timer tag used by the lazy pull strategy.
const TAG_LAZY_PULL: u64 = 1;
/// Timer tag used by pull retries (§4.3's repeated attempts).
const TAG_PULL_RETRY: u64 = 2;

/// Locally collected protocol statistics (all monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerStats {
    /// First copies of updates received by push.
    pub pushes_received: u64,
    /// Duplicate push copies received (§6's tuning signal).
    pub duplicates_received: u64,
    /// Forwarding decisions in which the `PF(t)` coin fired.
    pub pushes_forwarded: u64,
    /// Forwarding decisions suppressed by the `PF(t)` coin.
    pub forwards_suppressed: u64,
    /// Push messages sent (to targets, `R_p \ R_f`).
    pub push_messages_sent: u64,
    /// Push targets skipped because the partial list covered them.
    pub targets_suppressed_by_list: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Acks received.
    pub acks_received: u64,
    /// Pulls initiated.
    pub pulls_initiated: u64,
    /// Pull requests served.
    pub pull_requests_received: u64,
    /// Pull responses received.
    pub pull_responses_received: u64,
    /// Updates that changed the store, arriving via push.
    pub updates_via_push: u64,
    /// Updates that changed the store, arriving via pull.
    pub updates_via_pull: u64,
    /// Previously unknown replicas learned from flood lists/senders.
    pub replicas_discovered: u64,
}

#[derive(Debug, Clone, Default)]
struct ProcessedState {
    duplicates: u32,
    acks_sent: u32,
    acks_received: u32,
}

/// A replica of one logical data partition, running the paper's hybrid
/// push/pull update protocol as a sans-IO state machine.
///
/// Drive it through [`rumor_net::Node`] (engines) or call the inherent
/// methods directly (tests, custom transports). See the crate docs for an
/// end-to-end example.
#[derive(Debug)]
pub struct ReplicaPeer {
    id: PeerId,
    config: ProtocolConfig,
    store: ReplicaStore,
    /// Known replicas, sorted, self excluded.
    known: Vec<PeerId>,
    processed: BTreeMap<UpdateId, ProcessedState>,
    /// Accumulated flooding list per update (union over received copies).
    flood_lists: BTreeMap<UpdateId, PartialList>,
    /// Peers that acked recently: preferred targets (round of last ack).
    acked_by: BTreeMap<PeerId, Round>,
    /// Peers pushed to that have not acked: avoided until cool-off.
    awaiting_ack: BTreeMap<PeerId, Round>,
    last_info_round: Option<Round>,
    confident: bool,
    online: bool,
    pull_retries_left: u32,
    /// Wire-v2 delta pulls: per-responder journal mark this peer has
    /// synced to (advanced only by received [`Message::DeltaResponse`]s,
    /// so a lost response merely re-sends — never skips — updates).
    peer_sync: BTreeMap<PeerId, u64>,
    stats: PeerStats,
    /// Reusable tier buffers for target selection (hot path).
    select_scratch: SelectScratch,
    /// Reusable selection output (push targets, pull targets).
    targets_scratch: Vec<PeerId>,
    /// Reusable selection output for the pre-filter set `R_p`.
    rp_scratch: Vec<PeerId>,
}

impl ReplicaPeer {
    /// Creates a replica with the given identity and configuration.
    ///
    /// The peer starts online, confident, with an empty store and no
    /// known replicas; populate knowledge with
    /// [`ReplicaPeer::learn_replicas`].
    pub fn new(id: PeerId, config: ProtocolConfig) -> Self {
        Self {
            id,
            config,
            store: ReplicaStore::new(),
            known: Vec::new(),
            processed: BTreeMap::new(),
            flood_lists: BTreeMap::new(),
            acked_by: BTreeMap::new(),
            awaiting_ack: BTreeMap::new(),
            last_info_round: None,
            confident: true,
            online: true,
            pull_retries_left: 0,
            peer_sync: BTreeMap::new(),
            stats: PeerStats::default(),
            select_scratch: SelectScratch::default(),
            targets_scratch: Vec::new(),
            rp_scratch: Vec::new(),
        }
    }

    /// Adds replicas to this peer's local knowledge (replica list).
    /// Returns how many were previously unknown.
    pub fn learn_replicas(&mut self, peers: impl IntoIterator<Item = PeerId>) -> usize {
        let mut new = 0;
        for p in peers {
            if p == self.id {
                continue;
            }
            if let Err(pos) = self.known.binary_search(&p) {
                self.known.insert(pos, p);
                new += 1;
            }
        }
        self.stats.replicas_discovered += new as u64;
        new
    }

    /// The replica's identity.
    pub const fn peer_id(&self) -> PeerId {
        self.id
    }

    /// The local data store.
    pub const fn store(&self) -> &ReplicaStore {
        &self.store
    }

    /// The replicas this peer currently knows (sorted).
    pub fn known_replicas(&self) -> &[PeerId] {
        &self.known
    }

    /// Whether this peer has processed (seen) the given update event.
    pub fn has_processed(&self, id: UpdateId) -> bool {
        self.processed.contains_key(&id)
    }

    /// Duplicate copies received for an update.
    pub fn duplicates_of(&self, id: UpdateId) -> u32 {
        self.processed.get(&id).map_or(0, |s| s.duplicates)
    }

    /// Local statistics.
    pub const fn stats(&self) -> &PeerStats {
        &self.stats
    }

    /// Whether the peer believes it is in sync (§3's `not_confident`
    /// gate, inverted).
    pub const fn is_confident(&self) -> bool {
        self.confident
    }

    /// The protocol configuration in force.
    pub const fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Marks the peer's initial availability. Simulators call this once
    /// before the first round for peers that start offline (the engines
    /// only report *transitions*).
    pub fn set_initially_offline(&mut self) {
        self.online = false;
        self.confident = false;
    }

    /// Initiates a new update: stores it locally and writes the round-0
    /// push effects into `out` (§4.2 "Round 0": the initiator sends `U`
    /// to an `f_r` fraction of replicas; no `PF` coin is flipped for the
    /// initiator).
    ///
    /// `value = None` initiates a deletion (tombstone).
    pub fn initiate_update(
        &mut self,
        key: DataKey,
        value: Option<Value>,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) -> Update {
        let lineage = match self.store.latest(key) {
            Some(existing) => existing.lineage().child(rng),
            None => Lineage::root(rng),
        };
        let update = match value {
            Some(v) => Update::write(key, lineage, v, self.id),
            None => Update::tombstone(key, lineage, self.id),
        };
        self.store.apply(&update);
        self.processed
            .insert(update.id(), ProcessedState::default());
        self.note_info(round);

        let fanout = self.config.push_targets();
        let (preferred, avoided) = self.selection_bias(round);
        let mut targets = std::mem::take(&mut self.targets_scratch);
        select_targets_into(
            &self.known,
            fanout,
            &preferred,
            &avoided,
            rng,
            &mut self.select_scratch,
            &mut targets,
        );
        let mut flood_list = PartialList::from_peers([self.id]);
        flood_list.extend(targets.iter().copied());
        flood_list.truncate(&self.config.truncation, self.config.total_replicas, rng);
        self.flood_lists.insert(update.id(), flood_list.clone());

        self.send_pushes(&update, 1, &flood_list, &targets, round, out);
        targets.clear();
        self.targets_scratch = targets;
        update
    }

    /// Explicitly enters the pull phase: sends `PullRequest`s to up to
    /// `pull.fanout` known replicas and, when retries are configured,
    /// arms a retry timer so that attempts repeat until a response
    /// arrives (§4.3's `k` attempts).
    pub fn pull_with_retries(
        &mut self,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        self.pull_retries_left = self.config.pull.max_retries;
        let before = out.len();
        self.trigger_pull(round, rng, out);
        if self.config.pull.retry_rounds > 0 && out.len() > before {
            out.timer(u64::from(self.config.pull.retry_rounds), TAG_PULL_RETRY);
        }
    }

    /// Explicitly enters the pull phase: sends `PullRequest`s to up to
    /// `pull.fanout` known replicas.
    pub fn trigger_pull(
        &mut self,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        if self.known.is_empty() {
            return;
        }
        self.stats.pulls_initiated += 1;
        let _ = round;
        let (preferred, avoided) = self.selection_bias(round);
        let mut targets = std::mem::take(&mut self.targets_scratch);
        select_targets_into(
            &self.known,
            self.config.pull.fanout,
            &preferred,
            &avoided,
            rng,
            &mut self.select_scratch,
            &mut targets,
        );
        if self.config.pull.delta {
            // Wire-v2: quote each responder's last journal mark instead
            // of shipping the full store digest — constant request size,
            // O(delta) response. First contact (no mark yet) falls back
            // to a digest pull: quoting `since = 0` would make the
            // responder replay its entire journal, and flood lists keep
            // introducing never-pulled peers, so at scale the replays
            // would dwarf what the marks save. The responder answers a
            // digest pull with a mark-carrying delta (see
            // [`ReplicaPeer::handle_pull_request`]), so one exchange
            // upgrades the pair to incremental syncs.
            let mut digest = None;
            for &to in &targets {
                match self.peer_sync.get(&to) {
                    Some(&since) => out.send(to, Message::PullSince { since }),
                    None => {
                        let d = digest.get_or_insert_with(|| self.store.digest());
                        out.send(to, Message::PullRequest { digest: d.clone() });
                    }
                }
            }
        } else {
            let digest = self.store.digest();
            for &to in &targets {
                out.send(
                    to,
                    Message::PullRequest {
                        digest: digest.clone(),
                    },
                );
            }
        }
        targets.clear();
        self.targets_scratch = targets;
    }

    /// Answers a query from local state (§4.4). The sim layer combines
    /// answers from several replicas with a
    /// [`QueryPolicy`](crate::QueryPolicy).
    pub fn answer_query(&self, key: DataKey) -> QueryAnswer {
        match self.store.latest(key) {
            Some(v) => QueryAnswer {
                key,
                lineage: Some(v.lineage().clone()),
                value: v.value().cloned(),
                confident: self.confident,
            },
            None => QueryAnswer::unknown(key, self.confident),
        }
    }

    fn note_info(&mut self, round: Round) {
        self.last_info_round = Some(round);
        self.confident = true;
    }

    /// Preferred/avoided peers for target selection under the ack
    /// heuristic (§6). With acks disabled both sets are empty and the
    /// selection is uniform.
    fn selection_bias(&self, round: Round) -> (Vec<PeerId>, Vec<PeerId>) {
        if matches!(self.config.ack, AckPolicy::None) {
            return (Vec::new(), Vec::new());
        }
        let cool = self.config.ack_cooloff_rounds;
        let preferred: Vec<PeerId> = self
            .acked_by
            .iter()
            .filter(|(_, &r)| round - r <= cool)
            .map(|(&p, _)| p)
            .collect();
        let avoided: Vec<PeerId> = self
            .awaiting_ack
            .iter()
            .filter(|(_, &r)| round - r <= cool && round > r)
            .map(|(&p, _)| p)
            .collect();
        (preferred, avoided)
    }

    fn send_pushes(
        &mut self,
        update: &Update,
        push_round: u32,
        flood_list: &PartialList,
        targets: &[PeerId],
        round: Round,
        out: &mut EffectSink<Message>,
    ) {
        for &to in targets {
            if self.config.ack.limit() > 0 {
                self.awaiting_ack.entry(to).or_insert(round);
            }
            out.send(
                to,
                Message::Push(PushMessage {
                    update: update.clone(),
                    push_round,
                    flood_list: flood_list.clone(),
                }),
            );
        }
        self.stats.push_messages_sent += targets.len() as u64;
    }

    fn handle_push(
        &mut self,
        from: PeerId,
        push: PushMessage,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        // Learn replicas from the sender and the flood list (name-dropper
        // side channel, §1: "possibly discovers replicas unknown to her").
        self.learn_replicas(push.flood_list.iter().chain([from]));

        let uid = push.update.id();

        if let Some(state) = self.processed.get_mut(&uid) {
            state.duplicates += 1;
            self.stats.duplicates_received += 1;
            // Ack duplicates only while the policy's budget allows; the
            // paper's FirstK policy counts distinct senders.
            let limit = self.config.ack.limit();
            let state = self.processed.get_mut(&uid).expect("just seen");
            if state.acks_sent < limit {
                state.acks_sent += 1;
                self.stats.acks_sent += 1;
                out.send(from, Message::Ack { update_id: uid });
            }
            // Merge lists from duplicate copies: keeps discovery flowing
            // and sharpens coverage estimates (§4.2 optional trimming).
            self.flood_lists
                .entry(uid)
                .or_default()
                .union_with(&push.flood_list);
            return;
        }

        // First copy.
        self.stats.pushes_received += 1;
        self.note_info(round);
        if self.store.apply(&push.update).changed() {
            self.stats.updates_via_push += 1;
        }
        let mut state = ProcessedState::default();
        if self.config.ack.limit() > 0 {
            state.acks_sent = 1;
            self.stats.acks_sent += 1;
            out.send(from, Message::Ack { update_id: uid });
        }
        self.processed.insert(uid, state);

        // Accumulate the flooding list.
        let mut list = self.flood_lists.remove(&uid).unwrap_or_default();
        list.union_with(&push.flood_list);

        // Forwarding decision: one PF(t) coin per update (paper §3
        // pseudocode flips once, then pushes to R_p \ R_f).
        let signals = TuningSignals {
            duplicates: self.duplicates_of(uid),
            list_coverage: list.normalized_len(self.config.total_replicas),
            acks: self.processed[&uid].acks_received,
        };
        let pf = self.config.forward.probability(push.push_round, &signals);
        let forward = pf > 0.0 && (pf >= 1.0 || rng.gen_bool(pf));
        if forward {
            self.stats.pushes_forwarded += 1;
            let fanout = self.config.push_targets();
            let (preferred, avoided) = self.selection_bias(round);
            let mut r_p = std::mem::take(&mut self.rp_scratch);
            select_targets_into(
                &self.known,
                fanout,
                &preferred,
                &avoided,
                rng,
                &mut self.select_scratch,
                &mut r_p,
            );
            let mut targets = std::mem::take(&mut self.targets_scratch);
            targets.clear();
            targets.extend(
                r_p.iter()
                    .copied()
                    .filter(|&p| p != from && !list.contains(p)),
            );
            self.stats.targets_suppressed_by_list += (r_p.len() - targets.len()) as u64;
            list.extend(r_p.iter().copied());
            list.insert(self.id);
            list.truncate(&self.config.truncation, self.config.total_replicas, rng);
            self.send_pushes(
                &push.update,
                push.push_round + 1,
                &list,
                &targets,
                round,
                out,
            );
            targets.clear();
            self.targets_scratch = targets;
            r_p.clear();
            self.rp_scratch = r_p;
        } else {
            self.stats.forwards_suppressed += 1;
        }
        self.flood_lists.insert(uid, list);
    }

    fn handle_pull_request(
        &mut self,
        from: PeerId,
        digest: &crate::digest::StoreDigest,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        self.stats.pull_requests_received += 1;
        self.learn_replicas([from]);
        let updates = self.store.missing_updates_for(digest);
        if self.config.pull.delta {
            // Answer with the same digest-diff but stamped with this
            // replica's journal frontier, so the requester's sync mark
            // populates and its next pull is an 8-byte `PullSince`.
            let upto = self.store.journal_len();
            out.send(from, Message::DeltaResponse { upto, updates });
        } else {
            out.send(from, Message::PullResponse { updates });
        }
        // §3: "receives a pull request, but is not sure to have the latest
        // update" — an unconfident pulled party itself enters the pull
        // phase.
        if !self.confident {
            self.trigger_pull(round, rng, out);
        }
    }

    fn handle_pull_response(&mut self, from: PeerId, updates: &[Update], round: Round) {
        self.stats.pull_responses_received += 1;
        self.learn_replicas([from]);
        let changed = self.store.merge_updates(updates);
        self.stats.updates_via_pull += changed as u64;
        // Updates learned by pull are "processed": a later push copy is a
        // duplicate and must not restart the flood.
        for u in updates {
            self.processed.entry(u.id()).or_default();
        }
        // Any response — even an empty one — is evidence of being in sync.
        self.note_info(round);
    }

    /// Serves a wire-v2 delta pull: answer with the journal suffix past
    /// the quoted mark. Mirrors [`ReplicaPeer::handle_pull_request`]
    /// including the §3 unconfident self-pull — and like it draws no
    /// randomness, so delta and full-digest pulls stay trajectory-
    /// equivalent on identical seeds.
    fn handle_pull_since(
        &mut self,
        from: PeerId,
        since: u64,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        self.stats.pull_requests_received += 1;
        self.learn_replicas([from]);
        let (updates, upto) = self.store.delta_since(since);
        out.send(from, Message::DeltaResponse { upto, updates });
        if !self.confident {
            self.trigger_pull(round, rng, out);
        }
    }

    fn handle_delta_response(&mut self, from: PeerId, upto: u64, updates: &[Update], round: Round) {
        // The sync mark only ever advances: a stale (reordered) response
        // cannot roll it back into re-requesting already-synced history.
        let mark = self.peer_sync.entry(from).or_insert(0);
        *mark = (*mark).max(upto);
        self.handle_pull_response(from, updates, round);
    }

    fn handle_ack(&mut self, from: PeerId, update_id: UpdateId, round: Round) {
        self.stats.acks_received += 1;
        self.acked_by.insert(from, round);
        self.awaiting_ack.remove(&from);
        if let Some(state) = self.processed.get_mut(&update_id) {
            state.acks_received += 1;
        }
    }
}

impl Node for ReplicaPeer {
    type Msg = Message;

    fn id(&self) -> PeerId {
        self.id
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: Message,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        match msg {
            Message::Push(push) => self.handle_push(from, push, round, rng, out),
            Message::PullRequest { digest } => {
                self.handle_pull_request(from, &digest, round, rng, out);
            }
            Message::PullResponse { updates } => self.handle_pull_response(from, &updates, round),
            Message::Ack { update_id } => self.handle_ack(from, update_id, round),
            Message::PullSince { since } => self.handle_pull_since(from, since, round, rng, out),
            Message::DeltaResponse { upto, updates } => {
                self.handle_delta_response(from, upto, &updates, round);
            }
        }
    }

    fn on_round_start(
        &mut self,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        // `no_updates_since(t)` trigger (§3).
        if let Some(staleness) = self.config.pull.staleness_rounds {
            let stale = match self.last_info_round {
                Some(last) => round - last >= staleness,
                None => round.as_u32() >= staleness,
            };
            if stale {
                // Reset the clock so the pull is not re-fired every round
                // while responses are in flight.
                self.last_info_round = Some(round);
                self.confident = false;
                self.trigger_pull(round, rng, out);
            }
        }
    }

    fn on_status_change(
        &mut self,
        online: bool,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        self.online = online;
        if !online {
            return;
        }
        // `online_again` trigger (§3): the peer cannot know what it
        // missed, so it is unconfident until a pull round-trips.
        self.confident = false;
        match self.config.pull.strategy {
            PullStrategy::Eager => self.pull_with_retries(round, rng, out),
            PullStrategy::Lazy { patience } => {
                out.timer(u64::from(patience.max(1)), TAG_LAZY_PULL);
            }
            PullStrategy::OnDemand => {}
        }
    }

    fn on_timer(
        &mut self,
        tag: u64,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Message>,
    ) {
        match tag {
            TAG_LAZY_PULL if !self.confident => {
                // §6: the lazy peer waited for a push; none arrived, pull.
                self.pull_with_retries(round, rng, out);
            }
            TAG_PULL_RETRY if !self.confident && self.pull_retries_left > 0 => {
                self.pull_retries_left -= 1;
                let before = out.len();
                self.trigger_pull(round, rng, out);
                if self.pull_retries_left > 0 && out.len() > before {
                    out.timer(u64::from(self.config.pull.retry_rounds), TAG_PULL_RETRY);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AckPolicy, ProtocolConfig, PullStrategy};
    use crate::forward::ForwardPolicy;
    use rand::SeedableRng;
    use rumor_net::Effect;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(9)
    }

    fn sink() -> EffectSink<Message> {
        EffectSink::new()
    }

    fn peer_with(n: usize, f_r: f64) -> ReplicaPeer {
        let config = ProtocolConfig::builder(n)
            .fanout_fraction(f_r)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas((1..n as u32).map(PeerId::new));
        p
    }

    fn push_msg(update: &Update, t: u32, list: impl IntoIterator<Item = u32>) -> Message {
        Message::Push(PushMessage {
            update: update.clone(),
            push_round: t,
            flood_list: PartialList::from_peers(list.into_iter().map(PeerId::new)),
        })
    }

    #[test]
    fn initiator_pushes_fanout_targets() {
        let mut p = peer_with(100, 0.05);
        let mut effects = sink();
        let update = p.initiate_update(
            DataKey::new(1),
            Some(Value::from("x")),
            Round::ZERO,
            &mut rng(),
            &mut effects,
        );
        assert_eq!(effects.len(), 5);
        assert!(p.has_processed(update.id()));
        assert_eq!(p.stats().push_messages_sent, 5);
        // All effects are pushes with t = 1 and a flood list containing
        // the initiator and the targets.
        for e in effects.as_slice() {
            let Effect::Send {
                msg: Message::Push(push),
                ..
            } = e
            else {
                panic!("expected a push send, got {e:?}");
            };
            assert_eq!(push.push_round, 1);
            assert_eq!(push.flood_list.len(), 6);
            assert!(push.flood_list.contains(PeerId::new(0)));
        }
    }

    #[test]
    fn initiate_on_existing_key_extends_lineage() {
        let mut p = peer_with(10, 0.2);
        let mut r = rng();
        let mut out = sink();
        let u1 = p.initiate_update(
            DataKey::new(1),
            Some(Value::from("a")),
            Round::ZERO,
            &mut r,
            &mut out,
        );
        let u2 = p.initiate_update(
            DataKey::new(1),
            Some(Value::from("b")),
            Round::ZERO,
            &mut r,
            &mut out,
        );
        assert!(u2.lineage().covers(u1.lineage()));
        assert_eq!(p.store().versions(DataKey::new(1)).len(), 1);
    }

    #[test]
    fn first_push_is_applied_and_forwarded() {
        let mut p = peer_with(100, 0.05);
        let mut r = rng();
        let update = Update::write(
            DataKey::new(9),
            Lineage::root(&mut r),
            Value::from("v"),
            PeerId::new(7),
        );
        let mut effects = sink();
        p.on_message(
            PeerId::new(7),
            push_msg(&update, 1, [7]),
            Round::new(1),
            &mut r,
            &mut effects,
        );
        assert!(p.has_processed(update.id()));
        assert_eq!(p.store().get(DataKey::new(9)).unwrap().as_bytes(), b"v");
        assert!(!effects.is_empty(), "PF=Always must forward");
        for e in effects.as_slice() {
            let Effect::Send {
                to,
                msg: Message::Push(push),
            } = e
            else {
                panic!("unexpected effect {e:?}");
            };
            assert_ne!(*to, PeerId::new(7), "never forward back to the sender");
            assert_eq!(push.push_round, 2, "hop counter incremented");
        }
        assert_eq!(p.stats().pushes_received, 1);
        assert_eq!(p.stats().pushes_forwarded, 1);
    }

    #[test]
    fn duplicate_push_is_not_reforwarded() {
        let mut p = peer_with(100, 0.05);
        let mut r = rng();
        let update = Update::write(
            DataKey::new(9),
            Lineage::root(&mut r),
            Value::from("v"),
            PeerId::new(7),
        );
        let mut out = sink();
        p.on_message(
            PeerId::new(7),
            push_msg(&update, 1, [7]),
            Round::new(1),
            &mut r,
            &mut out,
        );
        let mut effects = sink();
        p.on_message(
            PeerId::new(8),
            push_msg(&update, 1, [8]),
            Round::new(1),
            &mut r,
            &mut effects,
        );
        assert!(
            effects.is_empty(),
            "duplicates produce no forwards without acks"
        );
        assert_eq!(p.stats().duplicates_received, 1);
        assert_eq!(p.duplicates_of(update.id()), 1);
    }

    #[test]
    fn flood_list_suppresses_targets() {
        // Peer knows only peers 1..10; flood list already covers them all
        // => nothing left to push to.
        let config = ProtocolConfig::builder(10)
            .fanout_fraction(1.0)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas((1..10).map(PeerId::new));
        let mut r = rng();
        let update = Update::write(
            DataKey::new(1),
            Lineage::root(&mut r),
            Value::from("v"),
            PeerId::new(1),
        );
        let mut effects = sink();
        p.on_message(
            PeerId::new(1),
            push_msg(&update, 1, 0..10),
            Round::new(1),
            &mut r,
            &mut effects,
        );
        assert!(effects.is_empty());
        assert!(p.stats().targets_suppressed_by_list >= 8);
    }

    #[test]
    fn pf_zero_never_forwards() {
        let config = ProtocolConfig::builder(100)
            .forward(ForwardPolicy::Constant { p: 0.0 })
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas((1..100).map(PeerId::new));
        let mut r = rng();
        let update = Update::write(
            DataKey::new(1),
            Lineage::root(&mut r),
            Value::from("v"),
            PeerId::new(1),
        );
        let mut effects = sink();
        p.on_message(
            PeerId::new(1),
            push_msg(&update, 1, [1]),
            Round::new(1),
            &mut r,
            &mut effects,
        );
        assert!(effects.is_empty());
        assert_eq!(p.stats().forwards_suppressed, 1);
        assert!(
            p.store().get(DataKey::new(1)).is_some(),
            "update applied even when not forwarded"
        );
    }

    #[test]
    fn ack_policy_first_sender() {
        let config = ProtocolConfig::builder(100)
            .ack(AckPolicy::FirstSender)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas((1..100).map(PeerId::new));
        let mut r = rng();
        let update = Update::write(
            DataKey::new(1),
            Lineage::root(&mut r),
            Value::from("v"),
            PeerId::new(1),
        );
        let mut first = sink();
        p.on_message(
            PeerId::new(1),
            push_msg(&update, 1, [1]),
            Round::new(1),
            &mut r,
            &mut first,
        );
        let acks: Vec<_> = first
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Send {
                        msg: Message::Ack { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(acks.len(), 1, "first sender is acked");
        let mut dup = sink();
        p.on_message(
            PeerId::new(2),
            push_msg(&update, 1, [2]),
            Round::new(1),
            &mut r,
            &mut dup,
        );
        assert!(
            dup.iter().all(|e| !matches!(
                e,
                Effect::Send {
                    msg: Message::Ack { .. },
                    ..
                }
            )),
            "second sender is not acked under FirstSender"
        );
        assert_eq!(p.stats().acks_sent, 1);
    }

    #[test]
    fn ack_reception_updates_preferences() {
        let config = ProtocolConfig::builder(100)
            .ack(AckPolicy::FirstSender)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas((1..100).map(PeerId::new));
        let mut r = rng();
        let mut out = sink();
        let update = p.initiate_update(
            DataKey::new(1),
            Some(Value::from("x")),
            Round::ZERO,
            &mut r,
            &mut out,
        );
        assert!(!p.awaiting_ack.is_empty(), "targets awaiting ack recorded");
        let some_target = *p.awaiting_ack.keys().next().unwrap();
        out.clear();
        p.on_message(
            some_target,
            Message::Ack {
                update_id: update.id(),
            },
            Round::new(1),
            &mut r,
            &mut out,
        );
        assert_eq!(p.stats().acks_received, 1);
        assert!(p.acked_by.contains_key(&some_target));
        assert!(!p.awaiting_ack.contains_key(&some_target));
    }

    #[test]
    fn pull_roundtrip_reconciles() {
        let mut r = rng();
        let mut source = peer_with(10, 0.2);
        let mut out = sink();
        let update = source.initiate_update(
            DataKey::new(5),
            Some(Value::from("data")),
            Round::ZERO,
            &mut r,
            &mut out,
        );

        let config = ProtocolConfig::builder(10).build().unwrap();
        let mut fresh = ReplicaPeer::new(PeerId::new(9), config);
        fresh.learn_replicas([PeerId::new(0)]);

        // Fresh peer comes online => eager pull (plus a retry timer).
        let mut pulls = sink();
        fresh.on_status_change(true, Round::new(3), &mut r, &mut pulls);
        assert!(!fresh.is_confident());
        let requests: Vec<_> = pulls
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    msg: Message::PullRequest { digest },
                    ..
                } => Some(digest),
                _ => None,
            })
            .collect();
        assert_eq!(requests.len(), 1);
        assert!(
            pulls.iter().any(|e| matches!(e, Effect::Timer { .. })),
            "eager pull arms a retry timer"
        );
        let digest = requests[0];

        // Source answers with the missing update.
        let mut responses = sink();
        source.on_message(
            PeerId::new(9),
            Message::PullRequest {
                digest: digest.clone(),
            },
            Round::new(3),
            &mut r,
            &mut responses,
        );
        let Effect::Send {
            msg: Message::PullResponse { updates },
            ..
        } = &responses[0]
        else {
            panic!("expected pull response");
        };
        assert_eq!(updates.len(), 1);

        // Fresh peer ingests it.
        let mut ignored = sink();
        fresh.on_message(
            PeerId::new(0),
            Message::PullResponse {
                updates: updates.clone(),
            },
            Round::new(4),
            &mut r,
            &mut ignored,
        );
        assert!(fresh.is_confident());
        assert_eq!(
            fresh.store().get(DataKey::new(5)).unwrap().as_bytes(),
            b"data"
        );
        assert!(
            fresh.has_processed(update.id()),
            "pulled updates are marked processed"
        );
        assert_eq!(fresh.stats().updates_via_pull, 1);
    }

    #[test]
    fn delta_pull_roundtrip_reconciles_and_resyncs_incrementally() {
        let mut r = rng();
        let source_config = ProtocolConfig::builder(10)
            .fanout_fraction(0.2)
            .delta_pulls(true)
            .build()
            .unwrap();
        let mut source = ReplicaPeer::new(PeerId::new(0), source_config);
        source.learn_replicas((1..10).map(PeerId::new));
        let mut out = sink();
        source.initiate_update(
            DataKey::new(5),
            Some(Value::from("data")),
            Round::ZERO,
            &mut r,
            &mut out,
        );

        let config = ProtocolConfig::builder(10)
            .delta_pulls(true)
            .build()
            .unwrap();
        let mut fresh = ReplicaPeer::new(PeerId::new(9), config);
        fresh.learn_replicas([PeerId::new(0)]);

        // First contact (no sync mark for peer 0 yet) falls back to a
        // digest pull rather than asking for a full journal replay.
        let mut pulls = sink();
        fresh.on_status_change(true, Round::new(3), &mut r, &mut pulls);
        let digest = pulls
            .iter()
            .find_map(|e| match e {
                Effect::Send {
                    msg: Message::PullRequest { digest },
                    ..
                } => Some(digest.clone()),
                _ => None,
            })
            .expect("first delta pull sends a digest PullRequest");

        // A delta-enabled responder answers the digest pull with a
        // mark-carrying delta, upgrading the pair to incremental syncs.
        let mut responses = sink();
        source.on_message(
            PeerId::new(9),
            Message::PullRequest { digest },
            Round::new(3),
            &mut r,
            &mut responses,
        );
        let Effect::Send {
            msg: Message::DeltaResponse { upto, updates },
            ..
        } = &responses[0]
        else {
            panic!("expected delta response, got {:?}", responses[0]);
        };
        assert_eq!(*upto, 1);
        assert_eq!(updates.len(), 1);

        // Fresh peer ingests it, advancing its sync mark for peer 0.
        let mut ignored = sink();
        fresh.on_message(
            PeerId::new(0),
            Message::DeltaResponse {
                upto: *upto,
                updates: updates.clone(),
            },
            Round::new(4),
            &mut r,
            &mut ignored,
        );
        assert!(fresh.is_confident());
        assert_eq!(
            fresh.store().get(DataKey::new(5)).unwrap().as_bytes(),
            b"data"
        );
        assert_eq!(fresh.stats().updates_via_pull, 1);

        // The next pull quotes the advanced mark; the source answers
        // with an empty delta — O(delta), not O(store).
        let mut again = sink();
        fresh.trigger_pull(Round::new(5), &mut r, &mut again);
        let since2 = again
            .iter()
            .find_map(|e| match e {
                Effect::Send {
                    msg: Message::PullSince { since },
                    ..
                } => Some(*since),
                _ => None,
            })
            .unwrap();
        assert_eq!(since2, 1, "sync mark advanced");
        let mut empty = sink();
        source.on_message(
            PeerId::new(9),
            Message::PullSince { since: since2 },
            Round::new(5),
            &mut r,
            &mut empty,
        );
        let Effect::Send {
            msg: Message::DeltaResponse { updates, .. },
            ..
        } = &empty[0]
        else {
            panic!("expected delta response");
        };
        assert!(updates.is_empty(), "nothing changed since the mark");
    }

    #[test]
    fn stale_delta_response_cannot_roll_back_the_sync_mark() {
        let config = ProtocolConfig::builder(10)
            .delta_pulls(true)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas([PeerId::new(1)]);
        let mut r = rng();
        let mut out = sink();
        p.on_message(
            PeerId::new(1),
            Message::DeltaResponse {
                upto: 7,
                updates: vec![],
            },
            Round::new(1),
            &mut r,
            &mut out,
        );
        // A delayed older response arrives afterwards.
        p.on_message(
            PeerId::new(1),
            Message::DeltaResponse {
                upto: 3,
                updates: vec![],
            },
            Round::new(2),
            &mut r,
            &mut out,
        );
        out.clear();
        p.trigger_pull(Round::new(3), &mut r, &mut out);
        let since = out
            .iter()
            .find_map(|e| match e {
                Effect::Send {
                    msg: Message::PullSince { since },
                    ..
                } => Some(*since),
                _ => None,
            })
            .unwrap();
        assert_eq!(since, 7, "mark is monotone");
    }

    #[test]
    fn lazy_pull_waits_for_push() {
        let config = ProtocolConfig::builder(10)
            .pull_strategy(PullStrategy::Lazy { patience: 3 })
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(2), config);
        p.learn_replicas([PeerId::new(0), PeerId::new(1)]);
        let mut r = rng();

        let mut effects = sink();
        p.on_status_change(true, Round::new(5), &mut r, &mut effects);
        assert!(
            matches!(
                effects[..],
                [Effect::Timer {
                    delay: 3,
                    tag: TAG_LAZY_PULL
                }]
            ),
            "lazy strategy sets a timer instead of pulling: {effects:?}"
        );

        // A push arrives before the timer => confident, timer is a no-op.
        let update = Update::write(
            DataKey::new(1),
            Lineage::root(&mut r),
            Value::from("v"),
            PeerId::new(0),
        );
        effects.clear();
        p.on_message(
            PeerId::new(0),
            push_msg(&update, 1, [0]),
            Round::new(6),
            &mut r,
            &mut effects,
        );
        effects.clear();
        p.on_timer(TAG_LAZY_PULL, Round::new(8), &mut r, &mut effects);
        assert!(effects.is_empty());

        // Without the push, the timer pulls.
        let mut q = ReplicaPeer::new(
            PeerId::new(3),
            ProtocolConfig::builder(10)
                .pull_strategy(PullStrategy::Lazy { patience: 3 })
                .build()
                .unwrap(),
        );
        q.learn_replicas([PeerId::new(0)]);
        let mut effects = sink();
        q.on_status_change(true, Round::new(5), &mut r, &mut effects);
        effects.clear();
        q.on_timer(TAG_LAZY_PULL, Round::new(8), &mut r, &mut effects);
        assert!(
            matches!(
                effects.first(),
                Some(Effect::Send {
                    msg: Message::PullRequest { .. },
                    ..
                })
            ),
            "lazy timer with no push must pull: {effects:?}"
        );
    }

    #[test]
    fn pull_retries_until_response_or_budget() {
        let config = ProtocolConfig::builder(10)
            .pull_retry(2, 2)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas([PeerId::new(1), PeerId::new(2)]);
        let mut r = rng();

        // Coming online fires the first attempt and a retry timer.
        let mut first = sink();
        p.on_status_change(true, Round::new(1), &mut r, &mut first);
        assert!(first
            .iter()
            .any(|e| matches!(e, Effect::Timer { delay: 2, .. })));

        // No response arrives: the retry timer pulls again and re-arms.
        let mut retry1 = sink();
        p.on_timer(TAG_PULL_RETRY, Round::new(3), &mut r, &mut retry1);
        assert!(retry1.iter().any(|e| matches!(
            e,
            Effect::Send {
                msg: Message::PullRequest { .. },
                ..
            }
        )));
        assert!(retry1.iter().any(|e| matches!(e, Effect::Timer { .. })));

        // Second retry exhausts the budget: no further timer.
        let mut retry2 = sink();
        p.on_timer(TAG_PULL_RETRY, Round::new(5), &mut r, &mut retry2);
        assert!(retry2.iter().any(|e| matches!(
            e,
            Effect::Send {
                msg: Message::PullRequest { .. },
                ..
            }
        )));
        assert!(!retry2.iter().any(|e| matches!(e, Effect::Timer { .. })));
        let mut retry3 = sink();
        p.on_timer(TAG_PULL_RETRY, Round::new(7), &mut r, &mut retry3);
        assert!(retry3.is_empty(), "budget exhausted");
    }

    #[test]
    fn pull_retry_stops_after_response() {
        let config = ProtocolConfig::builder(10)
            .pull_retry(2, 5)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas([PeerId::new(1)]);
        let mut r = rng();
        let mut out = sink();
        p.on_status_change(true, Round::new(1), &mut r, &mut out);
        // A (possibly empty) pull response restores confidence.
        out.clear();
        p.on_message(
            PeerId::new(1),
            Message::PullResponse { updates: vec![] },
            Round::new(2),
            &mut r,
            &mut out,
        );
        assert!(p.is_confident());
        out.clear();
        p.on_timer(TAG_PULL_RETRY, Round::new(3), &mut r, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn staleness_triggers_periodic_pull() {
        let config = ProtocolConfig::builder(10)
            .staleness_rounds(5)
            .build()
            .unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas([PeerId::new(1)]);
        let mut r = rng();
        let mut effects = sink();
        p.on_round_start(Round::new(3), &mut r, &mut effects);
        assert!(effects.is_empty());
        p.on_round_start(Round::new(5), &mut r, &mut effects);
        assert!(!effects.is_empty(), "stale peer pulls");
        effects.clear();
        p.on_round_start(Round::new(6), &mut r, &mut effects);
        assert!(effects.is_empty(), "clock reset");
    }

    #[test]
    fn unconfident_pulled_party_also_pulls() {
        let config = ProtocolConfig::builder(10).build().unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        p.learn_replicas([PeerId::new(1), PeerId::new(2)]);
        let mut r = rng();
        let mut effects = sink();
        p.on_status_change(false, Round::new(1), &mut r, &mut effects);
        p.online = true;
        p.confident = false;
        effects.clear();
        p.on_message(
            PeerId::new(1),
            Message::PullRequest {
                digest: crate::digest::StoreDigest::new(),
            },
            Round::new(2),
            &mut r,
            &mut effects,
        );
        let responses = effects
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Send {
                        msg: Message::PullResponse { .. },
                        ..
                    }
                )
            })
            .count();
        let pulls = effects
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Send {
                        msg: Message::PullRequest { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(responses, 1, "always answer the request");
        assert!(
            pulls >= 1,
            "unconfident pulled party enters pull phase itself"
        );
    }

    #[test]
    fn pull_with_no_known_replicas_is_silent() {
        let config = ProtocolConfig::builder(10).build().unwrap();
        let mut p = ReplicaPeer::new(PeerId::new(0), config);
        let mut out = sink();
        p.trigger_pull(Round::ZERO, &mut rng(), &mut out);
        assert!(out.is_empty());
        assert_eq!(p.stats().pulls_initiated, 0);
    }

    #[test]
    fn query_answers_reflect_store_and_confidence() {
        let mut p = peer_with(10, 0.2);
        let mut r = rng();
        let mut out = sink();
        let a = p.answer_query(DataKey::new(1));
        assert!(a.lineage.is_none());
        assert!(a.confident);
        p.initiate_update(
            DataKey::new(1),
            Some(Value::from("x")),
            Round::ZERO,
            &mut r,
            &mut out,
        );
        let a = p.answer_query(DataKey::new(1));
        assert_eq!(a.value.unwrap().as_bytes(), b"x");
        out.clear();
        p.on_status_change(true, Round::new(1), &mut r, &mut out);
        assert!(!p.answer_query(DataKey::new(1)).confident);
    }

    #[test]
    fn learn_replicas_ignores_self_and_duplicates() {
        let mut p = peer_with(10, 0.2);
        assert_eq!(p.learn_replicas([PeerId::new(0), PeerId::new(1)]), 0);
        assert_eq!(p.learn_replicas([PeerId::new(42)]), 1);
        assert!(p.known_replicas().windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn set_initially_offline_clears_confidence() {
        let mut p = peer_with(10, 0.2);
        p.set_initially_offline();
        assert!(!p.is_confident());
    }
}
