//! The replica-local multi-version store.
//!
//! §3: update conflicts are rare and need no resolution — "if data is
//! altered, it may be treated as distinct and coexists as different
//! versions". The store therefore keeps, per key, the *frontier* of
//! maximal lineages: applying an update discards every version it
//! supersedes and otherwise coexists with the rest. Deletions are stored
//! as tombstones so that the death certificate keeps propagating.

use crate::digest::StoreDigest;
use crate::update::Update;
use crate::value::Value;
use crate::version::Lineage;
use rumor_types::{DataKey, PeerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One version held by the store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredVersion {
    lineage: Lineage,
    value: Option<Value>,
    origin: PeerId,
}

impl StoredVersion {
    /// The version history.
    pub const fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// The stored value (`None` = tombstone).
    pub const fn value(&self) -> Option<&Value> {
        self.value.as_ref()
    }

    /// The replica that initiated this version.
    pub const fn origin(&self) -> PeerId {
        self.origin
    }

    /// Whether this version is a tombstone.
    pub const fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Re-materialises the update that produced this version.
    pub fn to_update(&self, key: DataKey) -> Update {
        match &self.value {
            Some(v) => Update::write(key, self.lineage.clone(), v.clone(), self.origin),
            None => Update::tombstone(key, self.lineage.clone(), self.origin),
        }
    }
}

/// Result of applying an update to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApplyOutcome {
    /// The update superseded at least one stored version.
    Applied,
    /// The update introduced a new concurrent version (coexists).
    AppliedConcurrent,
    /// The exact version was already stored.
    AlreadyKnown,
    /// A stored version already supersedes the update.
    Stale,
}

impl ApplyOutcome {
    /// Whether the store changed.
    pub const fn changed(self) -> bool {
        matches!(self, Self::Applied | Self::AppliedConcurrent)
    }
}

/// Multi-version key/value store for one replica.
///
/// # Examples
///
/// ```
/// use rumor_core::{ApplyOutcome, Lineage, ReplicaStore, Update, Value};
/// use rumor_types::{DataKey, PeerId};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut store = ReplicaStore::new();
/// let key = DataKey::from_name("news");
/// let v1 = Update::write(key, Lineage::root(&mut rng), Value::from("a"), PeerId::new(0));
/// assert_eq!(store.apply(&v1), ApplyOutcome::AppliedConcurrent);
/// assert_eq!(store.apply(&v1), ApplyOutcome::AlreadyKnown);
///
/// let v2 = Update::write(key, v1.lineage().child(&mut rng), Value::from("b"), PeerId::new(0));
/// assert_eq!(store.apply(&v2), ApplyOutcome::Applied);
/// assert_eq!(store.apply(&v1), ApplyOutcome::Stale);
/// assert_eq!(store.latest(key).unwrap().value().unwrap().as_bytes(), b"b");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplicaStore {
    items: BTreeMap<DataKey, Vec<StoredVersion>>,
    /// Keys in the order store-changing applies touched them — the
    /// wire-v2 delta-pull index. `journal.len()` is this replica's sync
    /// frontier; [`ReplicaStore::delta_since`] answers "what changed
    /// since entry `n`" without walking the whole store. Append-only
    /// (a bound is a known residual, see ROADMAP).
    journal: Vec<DataKey>,
}

impl ReplicaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies an update, enforcing the frontier invariant: after the
    /// call, no stored version of the key covers another.
    pub fn apply(&mut self, update: &Update) -> ApplyOutcome {
        let versions = self.items.entry(update.key()).or_default();
        for v in versions.iter() {
            if v.lineage == *update.lineage() {
                return ApplyOutcome::AlreadyKnown;
            }
            if v.lineage.covers(update.lineage()) {
                return ApplyOutcome::Stale;
            }
        }
        let before = versions.len();
        versions.retain(|v| !update.lineage().covers(&v.lineage));
        let superseded = before - versions.len();
        versions.push(StoredVersion {
            lineage: update.lineage().clone(),
            value: update.value().cloned(),
            origin: update.origin(),
        });
        self.journal.push(update.key());
        if superseded > 0 {
            ApplyOutcome::Applied
        } else {
            ApplyOutcome::AppliedConcurrent
        }
    }

    /// Number of store-changing applies so far — the frontier a wire-v2
    /// delta pull quotes back as its `since` mark.
    pub fn journal_len(&self) -> u64 {
        self.journal.len() as u64
    }

    /// The suffix of changes since journal entry `since`: the current
    /// frontier versions of every key touched by apply number `since`
    /// onwards, plus the new frontier mark (`journal_len`).
    ///
    /// Any change a peer misses after syncing to mark `s` is itself a
    /// journaled apply at an entry `>= s`, so repeatedly pulling with the
    /// last returned mark never skips an update. A `since` beyond the
    /// journal (e.g. after the responder restarted with an empty store)
    /// degrades to a full resend. Keys touched repeatedly are sent once;
    /// over-sending is an apply no-op at the requester.
    pub fn delta_since(&self, since: u64) -> (Vec<Update>, u64) {
        let upto = self.journal_len();
        let start = if since > upto { 0 } else { since as usize };
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for &key in &self.journal[start..] {
            if seen.insert(key) {
                for v in self.versions(key) {
                    out.push(v.to_update(key));
                }
            }
        }
        (out, upto)
    }

    /// All current (frontier) versions of a key.
    pub fn versions(&self, key: DataKey) -> &[StoredVersion] {
        self.items.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Deterministically picks the "most recent" version of a key: the
    /// longest lineage, ties broken by the largest head id. This is the
    /// paper's "version scheme for identifying latest updates" (§4.4).
    pub fn latest(&self, key: DataKey) -> Option<&StoredVersion> {
        self.versions(key)
            .iter()
            .max_by_key(|v| (v.lineage.len(), v.lineage.head()))
    }

    /// The visible value of a key: the latest version's value, or `None`
    /// if the key is absent or its latest version is a tombstone.
    pub fn get(&self, key: DataKey) -> Option<&Value> {
        self.latest(key).and_then(StoredVersion::value)
    }

    /// Number of keys with at least one stored version.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over all keys.
    pub fn keys(&self) -> impl Iterator<Item = DataKey> + '_ {
        self.items.keys().copied()
    }

    /// Number of keys whose latest version is a tombstone.
    pub fn tombstone_count(&self) -> usize {
        self.items
            .keys()
            .filter(|&&k| self.latest(k).is_some_and(StoredVersion::is_tombstone))
            .count()
    }

    /// A compact description of every version held, for anti-entropy.
    pub fn digest(&self) -> StoreDigest {
        let mut digest = StoreDigest::new();
        for (key, versions) in &self.items {
            for v in versions {
                digest.insert(*key, v.lineage.head());
            }
        }
        digest
    }

    /// Updates held here that the owner of `digest` does not list — the
    /// payload of a pull response.
    ///
    /// A version is sent when its head id is absent from the digest; the
    /// receiver's own `apply` discards anything its frontier already
    /// covers, so over-sending costs only bandwidth, never correctness.
    pub fn missing_updates_for(&self, digest: &StoreDigest) -> Vec<Update> {
        let mut out = Vec::new();
        for (key, versions) in &self.items {
            for v in versions {
                if !digest.contains(*key, v.lineage.head()) {
                    out.push(v.to_update(*key));
                }
            }
        }
        out
    }

    /// Ingests every update from a pull response; returns how many changed
    /// the store.
    pub fn merge_updates<'a>(&mut self, updates: impl IntoIterator<Item = &'a Update>) -> usize {
        updates
            .into_iter()
            .filter(|u| self.apply(u).changed())
            .count()
    }

    /// Two stores are *consistent* when they hold identical version sets
    /// (the paper's quasi-consistency target once gossip quiesces).
    pub fn consistent_with(&self, other: &ReplicaStore) -> bool {
        self.digest() == other.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(6)
    }

    fn write(key: u64, lineage: Lineage, val: &str) -> Update {
        Update::write(DataKey::new(key), lineage, Value::from(val), PeerId::new(0))
    }

    #[test]
    fn empty_store() {
        let s = ReplicaStore::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.get(DataKey::new(1)).is_none());
        assert!(s.versions(DataKey::new(1)).is_empty());
        assert!(s.latest(DataKey::new(1)).is_none());
    }

    #[test]
    fn newer_version_supersedes() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let u1 = write(1, Lineage::root(&mut r), "a");
        let u2 = write(1, u1.lineage().child(&mut r), "b");
        s.apply(&u1);
        assert_eq!(s.apply(&u2), ApplyOutcome::Applied);
        assert_eq!(
            s.versions(DataKey::new(1)).len(),
            1,
            "frontier holds only the newest"
        );
        assert_eq!(s.get(DataKey::new(1)).unwrap().as_bytes(), b"b");
    }

    #[test]
    fn out_of_order_arrival_is_stale() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let u1 = write(1, Lineage::root(&mut r), "a");
        let u2 = write(1, u1.lineage().child(&mut r), "b");
        s.apply(&u2);
        assert_eq!(s.apply(&u1), ApplyOutcome::Stale);
        assert_eq!(s.get(DataKey::new(1)).unwrap().as_bytes(), b"b");
    }

    #[test]
    fn concurrent_versions_coexist() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let base = Lineage::root(&mut r);
        let u1 = write(1, base.child(&mut r), "a");
        let u2 = write(1, base.child(&mut r), "b");
        s.apply(&u1);
        assert_eq!(s.apply(&u2), ApplyOutcome::AppliedConcurrent);
        assert_eq!(
            s.versions(DataKey::new(1)).len(),
            2,
            "conflict co-exists (paper §3)"
        );
    }

    #[test]
    fn supersede_collapses_concurrent_branches() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let base = Lineage::root(&mut r);
        let a = write(1, base.child(&mut r), "a");
        let b = write(1, base.child(&mut r), "b");
        s.apply(&a);
        s.apply(&b);
        // A new version extending branch `a` supersedes only branch `a`.
        let a2 = write(1, a.lineage().child(&mut r), "a2");
        assert_eq!(s.apply(&a2), ApplyOutcome::Applied);
        assert_eq!(s.versions(DataKey::new(1)).len(), 2);
    }

    #[test]
    fn tombstone_hides_value_but_remains_stored() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let u = write(1, Lineage::root(&mut r), "a");
        s.apply(&u);
        let del = u.superseding_delete(&mut r);
        assert_eq!(s.apply(&del), ApplyOutcome::Applied);
        assert!(
            s.get(DataKey::new(1)).is_none(),
            "deleted key reads as absent"
        );
        assert_eq!(s.tombstone_count(), 1, "death certificate retained");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn latest_prefers_longer_lineage() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let base = Lineage::root(&mut r);
        let shallow = write(1, base.child(&mut r), "shallow");
        let deep = write(1, base.child(&mut r).child(&mut r), "deep");
        s.apply(&shallow);
        s.apply(&deep);
        assert_eq!(
            s.latest(DataKey::new(1))
                .unwrap()
                .value()
                .unwrap()
                .as_bytes(),
            b"deep"
        );
    }

    #[test]
    fn digest_and_missing_updates_roundtrip() {
        let mut r = rng();
        let mut a = ReplicaStore::new();
        let mut b = ReplicaStore::new();
        let u1 = write(1, Lineage::root(&mut r), "x");
        let u2 = write(2, Lineage::root(&mut r), "y");
        a.apply(&u1);
        a.apply(&u2);
        b.apply(&u1);
        let missing = a.missing_updates_for(&b.digest());
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].key(), DataKey::new(2));
        assert_eq!(b.merge_updates(&missing), 1);
        assert!(a.consistent_with(&b));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut r = rng();
        let mut a = ReplicaStore::new();
        let u = write(1, Lineage::root(&mut r), "x");
        a.apply(&u);
        let mut b = ReplicaStore::new();
        let missing = a.missing_updates_for(&b.digest());
        assert_eq!(b.merge_updates(&missing), 1);
        assert_eq!(b.merge_updates(&missing), 0, "second merge changes nothing");
    }

    #[test]
    fn stored_version_roundtrips_to_update() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let u = write(7, Lineage::root(&mut r), "v");
        s.apply(&u);
        let back = s.versions(DataKey::new(7))[0].to_update(DataKey::new(7));
        assert_eq!(back, u);
    }

    #[test]
    fn delta_since_returns_only_the_changed_suffix() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        assert_eq!(s.delta_since(0), (vec![], 0));
        let u1 = write(1, Lineage::root(&mut r), "a");
        let u2 = write(2, Lineage::root(&mut r), "b");
        s.apply(&u1);
        s.apply(&u2);
        let (all, mark) = s.delta_since(0);
        assert_eq!(mark, 2);
        assert_eq!(all.len(), 2, "full resend from mark 0");
        // From the frontier mark: nothing to send.
        assert_eq!(s.delta_since(mark), (vec![], mark));
        // A change after the mark shows up, and only it.
        let u2b = write(2, u2.lineage().child(&mut r), "b2");
        s.apply(&u2b);
        let (delta, mark2) = s.delta_since(mark);
        assert_eq!(mark2, 3);
        assert_eq!(delta, vec![u2b.clone()]);
        // Rejected applies (stale, already known) do not advance the journal.
        s.apply(&u2);
        s.apply(&u2b);
        assert_eq!(s.journal_len(), 3);
    }

    #[test]
    fn delta_since_dedupes_and_clamps_foreign_marks() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        let u1 = write(1, Lineage::root(&mut r), "a");
        let u1b = write(1, u1.lineage().child(&mut r), "a2");
        s.apply(&u1);
        s.apply(&u1b);
        // Key 1 was journaled twice but its frontier is sent once.
        let (delta, mark) = s.delta_since(0);
        assert_eq!(delta, vec![u1b]);
        assert_eq!(mark, 2);
        // A mark beyond the journal degrades to a full resend.
        let (resend, mark2) = s.delta_since(99);
        assert_eq!(resend.len(), 1);
        assert_eq!(mark2, 2);
    }

    #[test]
    fn delta_from_zero_covers_missing_updates_for_any_digest() {
        let mut r = rng();
        let mut a = ReplicaStore::new();
        let mut b = ReplicaStore::new();
        let u1 = write(1, Lineage::root(&mut r), "x");
        let u2 = write(2, Lineage::root(&mut r), "y");
        a.apply(&u1);
        a.apply(&u2);
        b.apply(&u1);
        let (delta, _) = a.delta_since(0);
        let mut patched = b.clone();
        patched.merge_updates(&delta);
        assert!(patched.consistent_with(&a), "delta from 0 is a superset");
    }

    #[test]
    fn keys_iterates_every_key() {
        let mut r = rng();
        let mut s = ReplicaStore::new();
        s.apply(&write(1, Lineage::root(&mut r), "a"));
        s.apply(&write(2, Lineage::root(&mut r), "b"));
        let keys: Vec<u64> = s.keys().map(|k| k.as_u64()).collect();
        assert_eq!(keys, vec![1, 2]);
    }
}
