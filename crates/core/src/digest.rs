//! Version digests exchanged during the pull phase.
//!
//! A pulling replica summarises what it holds — per key, the head ids of
//! its frontier versions — and the pulled party answers with every
//! version not listed (paper §3: "Inquire for missed updates based on
//! version vectors").

use rumor_types::{DataKey, VersionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-key sets of known version heads.
///
/// # Examples
///
/// ```
/// use rumor_core::StoreDigest;
/// use rumor_types::{DataKey, VersionId};
///
/// let mut d = StoreDigest::new();
/// d.insert(DataKey::new(1), VersionId::from_bits(42));
/// assert!(d.contains(DataKey::new(1), VersionId::from_bits(42)));
/// assert!(!d.contains(DataKey::new(2), VersionId::from_bits(42)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreDigest {
    entries: BTreeMap<DataKey, Vec<VersionId>>,
}

impl StoreDigest {
    /// Creates an empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a version head is known for `key`.
    pub fn insert(&mut self, key: DataKey, head: VersionId) {
        let heads = self.entries.entry(key).or_default();
        if let Err(pos) = heads.binary_search(&head) {
            heads.insert(pos, head);
        }
    }

    /// Whether `head` is listed for `key`.
    pub fn contains(&self, key: DataKey, head: VersionId) -> bool {
        self.entries
            .get(&key)
            .is_some_and(|heads| heads.binary_search(&head).is_ok())
    }

    /// Number of keys described.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of `(key, head)` entries.
    pub fn version_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// True when the digest describes nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, heads)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (DataKey, &[VersionId])> {
        self.entries.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

impl FromIterator<(DataKey, VersionId)> for StoreDigest {
    fn from_iter<I: IntoIterator<Item = (DataKey, VersionId)>>(iter: I) -> Self {
        let mut d = Self::new();
        for (k, v) in iter {
            d.insert(k, v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bits: u128) -> VersionId {
        VersionId::from_bits(bits)
    }

    #[test]
    fn empty_digest() {
        let d = StoreDigest::new();
        assert!(d.is_empty());
        assert_eq!(d.key_count(), 0);
        assert_eq!(d.version_count(), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut d = StoreDigest::new();
        d.insert(DataKey::new(1), v(9));
        d.insert(DataKey::new(1), v(9));
        assert_eq!(d.version_count(), 1);
    }

    #[test]
    fn multiple_heads_per_key() {
        let mut d = StoreDigest::new();
        d.insert(DataKey::new(1), v(1));
        d.insert(DataKey::new(1), v(2));
        assert_eq!(d.key_count(), 1);
        assert_eq!(d.version_count(), 2);
        assert!(d.contains(DataKey::new(1), v(1)));
        assert!(d.contains(DataKey::new(1), v(2)));
    }

    #[test]
    fn heads_stay_sorted() {
        let mut d = StoreDigest::new();
        for bits in [5u128, 1, 3, 2, 4] {
            d.insert(DataKey::new(1), v(bits));
        }
        let (_, heads) = d.iter().next().unwrap();
        let sorted: Vec<_> = {
            let mut s = heads.to_vec();
            s.sort();
            s
        };
        assert_eq!(heads, sorted.as_slice());
    }

    #[test]
    fn from_iterator_collects() {
        let d: StoreDigest = [(DataKey::new(1), v(1)), (DataKey::new(2), v(2))]
            .into_iter()
            .collect();
        assert_eq!(d.key_count(), 2);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a: StoreDigest = [(DataKey::new(1), v(1)), (DataKey::new(1), v(2))]
            .into_iter()
            .collect();
        let b: StoreDigest = [(DataKey::new(1), v(2)), (DataKey::new(1), v(1))]
            .into_iter()
            .collect();
        assert_eq!(a, b);
    }
}
