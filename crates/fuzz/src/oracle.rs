//! The convergence oracle: what a finished fuzz case must satisfy.
//!
//! After the horizon plus a stable-online probe window, every *witness*
//! — a correct (non-Byzantine) replica that stayed online through the
//! whole window — must (a) be aware of every update that any witness is
//! aware of (no partially-known update), and (b) hold a replica store
//! whose digest equals every other witness's (full anti-entropy
//! convergence, tombstones included). A violation is reported as a
//! [`Divergence`] — plain, ordered data, so records serialize
//! deterministically and replays compare structurally.

use rumor_core::StoreDigest;
use rumor_types::{PeerId, UpdateId};

use crate::json::Json;

/// A convergence violation found by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// An initiated update is known to some witnesses but not others.
    PartialUpdate {
        /// Workload sequence number of the update.
        sequence: u32,
        /// The update identity, as a decimal `u128` string.
        update: String,
        /// Witnesses aware of the update (ascending peer index).
        aware: Vec<u32>,
        /// Witnesses unaware of it (ascending peer index).
        unaware: Vec<u32>,
    },
    /// Witness stores disagree even though no tracked update is
    /// partially known (e.g. a lied-away version difference).
    StoreMismatch {
        /// The witness whose digest served as the reference.
        representative: u32,
        /// Witnesses whose digests differ from the reference.
        divergent: Vec<u32>,
    },
}

impl Divergence {
    /// Stable artefact name of the violation class.
    pub fn kind(&self) -> &'static str {
        match self {
            Divergence::PartialUpdate { .. } => "partial-update",
            Divergence::StoreMismatch { .. } => "store-mismatch",
        }
    }

    /// Serializes as a JSON object (field order is stable).
    pub fn to_json(&self) -> Json {
        match self {
            Divergence::PartialUpdate {
                sequence,
                update,
                aware,
                unaware,
            } => Json::Obj(vec![
                ("kind".into(), Json::from_text(self.kind())),
                ("sequence".into(), Json::from_u32(*sequence)),
                ("update".into(), Json::from_text(update)),
                ("aware".into(), peer_list(aware)),
                ("unaware".into(), peer_list(unaware)),
            ]),
            Divergence::StoreMismatch {
                representative,
                divergent,
            } => Json::Obj(vec![
                ("kind".into(), Json::from_text(self.kind())),
                ("representative".into(), Json::from_u32(*representative)),
                ("divergent".into(), peer_list(divergent)),
            ]),
        }
    }

    /// Parses a divergence serialized by [`Divergence::to_json`].
    pub fn from_json(doc: &Json) -> Result<Divergence, String> {
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("divergence missing `kind`")?;
        match kind {
            "partial-update" => Ok(Divergence::PartialUpdate {
                sequence: doc
                    .get("sequence")
                    .and_then(Json::as_u32)
                    .ok_or("divergence missing `sequence`")?,
                update: doc
                    .get("update")
                    .and_then(Json::as_str)
                    .ok_or("divergence missing `update`")?
                    .to_owned(),
                aware: parse_peer_list(doc, "aware")?,
                unaware: parse_peer_list(doc, "unaware")?,
            }),
            "store-mismatch" => Ok(Divergence::StoreMismatch {
                representative: doc
                    .get("representative")
                    .and_then(Json::as_u32)
                    .ok_or("divergence missing `representative`")?,
                divergent: parse_peer_list(doc, "divergent")?,
            }),
            other => Err(format!("unknown divergence kind `{other}`")),
        }
    }
}

fn peer_list(peers: &[u32]) -> Json {
    Json::Arr(peers.iter().map(|&p| Json::from_u32(p)).collect())
}

fn parse_peer_list(doc: &Json, name: &str) -> Result<Vec<u32>, String> {
    doc.get(name)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("divergence missing `{name}`"))?
        .iter()
        .map(|v| v.as_u32().ok_or_else(|| format!("bad peer in `{name}`")))
        .collect()
}

/// Checks the oracle over the stable-online correct witnesses.
///
/// `witnesses` must be the ascending list of stable peers; `digest_of`
/// and `aware` probe a peer's replica store and update awareness. With
/// fewer than two witnesses the oracle is vacuous and returns `None`.
/// Partial-update violations are reported before store mismatches: they
/// name the exact update, so they make better repro records.
pub fn check<D, A>(
    witnesses: &[PeerId],
    digest_of: D,
    tracked: &[(u32, UpdateId)],
    aware: A,
) -> Option<Divergence>
where
    D: Fn(PeerId) -> StoreDigest,
    A: Fn(PeerId, UpdateId) -> bool,
{
    if witnesses.len() < 2 {
        return None;
    }
    for &(sequence, update) in tracked {
        let mut aware_peers = Vec::new();
        let mut unaware_peers = Vec::new();
        for &peer in witnesses {
            if aware(peer, update) {
                aware_peers.push(peer.index() as u32);
            } else {
                unaware_peers.push(peer.index() as u32);
            }
        }
        if !aware_peers.is_empty() && !unaware_peers.is_empty() {
            return Some(Divergence::PartialUpdate {
                sequence,
                update: update.to_bits().to_string(),
                aware: aware_peers,
                unaware: unaware_peers,
            });
        }
    }
    let representative = witnesses[0];
    let reference = digest_of(representative);
    let divergent: Vec<u32> = witnesses[1..]
        .iter()
        .filter(|&&peer| digest_of(peer) != reference)
        .map(|&peer| peer.index() as u32)
        .collect();
    if divergent.is_empty() {
        None
    } else {
        Some(Divergence::StoreMismatch {
            representative: representative.index() as u32,
            divergent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_types::{DataKey, VersionId};

    fn peers(ids: &[u32]) -> Vec<PeerId> {
        ids.iter().map(|&i| PeerId::new(i)).collect()
    }

    fn digest_with(version: u128) -> StoreDigest {
        let mut digest = StoreDigest::new();
        digest.insert(DataKey::new(1), VersionId::from_bits(version));
        digest
    }

    #[test]
    fn vacuous_with_fewer_than_two_witnesses() {
        let verdict = check(&peers(&[3]), |_| digest_with(1), &[], |_, _| false);
        assert_eq!(verdict, None);
    }

    #[test]
    fn partial_awareness_is_reported_with_both_sides() {
        let update = UpdateId::from_bits(99);
        let verdict = check(
            &peers(&[0, 1, 2]),
            |_| digest_with(1),
            &[(0, update)],
            |p, _| p.index() != 1,
        );
        assert_eq!(
            verdict,
            Some(Divergence::PartialUpdate {
                sequence: 0,
                update: "99".into(),
                aware: vec![0, 2],
                unaware: vec![1],
            })
        );
    }

    #[test]
    fn uniform_awareness_and_equal_digests_pass() {
        let update = UpdateId::from_bits(7);
        let verdict = check(
            &peers(&[0, 1, 2]),
            |_| digest_with(1),
            &[(0, update)],
            |_, _| true,
        );
        assert_eq!(verdict, None);
        // Uniformly unaware (the update never survived) is also fine.
        let verdict = check(
            &peers(&[0, 1]),
            |_| digest_with(1),
            &[(0, update)],
            |_, _| false,
        );
        assert_eq!(verdict, None);
    }

    #[test]
    fn digest_disagreement_is_a_store_mismatch() {
        let verdict = check(
            &peers(&[4, 5, 6]),
            |p| digest_with(if p.index() == 6 { 2 } else { 1 }),
            &[],
            |_, _| true,
        );
        assert_eq!(
            verdict,
            Some(Divergence::StoreMismatch {
                representative: 4,
                divergent: vec![6],
            })
        );
    }

    #[test]
    fn divergence_json_round_trips() {
        let cases = [
            Divergence::PartialUpdate {
                sequence: 2,
                update: "340282366920938463463374607431768211455".into(),
                aware: vec![1, 3],
                unaware: vec![2],
            },
            Divergence::StoreMismatch {
                representative: 0,
                divergent: vec![9, 11],
            },
        ];
        for d in &cases {
            let text = d.to_json().pretty();
            let doc = crate::json::parse(&text).expect("parses");
            assert_eq!(&Divergence::from_json(&doc).expect("decodes"), d);
        }
    }
}
