//! Batch runner: generate cases, run them, collect violations.

use crate::case::{CaseSpec, ExecPath};
use crate::config::{ConfigError, FuzzConfig};
use crate::json::Json;
use crate::record::{ExecutionRecord, RECORD_SCHEMA};

/// Schema tag stamped into batch artefacts.
pub const BATCH_SCHEMA: &str = "rumor-fuzz/batch/v1";

/// Aggregate result of one fuzz batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The validated config the batch ran under.
    pub config: FuzzConfig,
    /// Cases executed (always `config.cases`).
    pub cases_run: u32,
    /// Cases that took the engine path.
    pub engine_cases: u32,
    /// Cases that took the cluster path.
    pub cluster_cases: u32,
    /// Total messages sent across all cases.
    pub total_messages: u64,
    /// Total sends tampered with by Byzantine members.
    pub total_tampered: u64,
    /// Every oracle violation, frozen as a replayable record.
    pub violations: Vec<ExecutionRecord>,
    /// Cases that failed to build or run (spec + error text).
    pub errors: Vec<String>,
}

impl BatchReport {
    /// `true` when every case ran and passed the oracle.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    /// Serializes the batch artefact (pretty JSON, trailing newline).
    pub fn to_json(&self) -> String {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::from_text(BATCH_SCHEMA)),
            ("seed".into(), Json::from_u64(self.config.seed)),
            ("cases_run".into(), Json::from_u32(self.cases_run)),
            ("engine_cases".into(), Json::from_u32(self.engine_cases)),
            ("cluster_cases".into(), Json::from_u32(self.cluster_cases)),
            ("total_messages".into(), Json::from_u64(self.total_messages)),
            ("total_tampered".into(), Json::from_u64(self.total_tampered)),
            ("record_schema".into(), Json::from_text(RECORD_SCHEMA)),
            (
                "violations".into(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|record| {
                            Json::Obj(vec![
                                ("case".into(), record.spec.to_json()),
                                ("divergence".into(), record.divergence.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "errors".into(),
                Json::Arr(self.errors.iter().map(|e| Json::from_text(e)).collect()),
            ),
        ]);
        let mut text = doc.pretty();
        text.push('\n');
        text
    }
}

/// Generates and runs `config.cases` cases, collecting every oracle
/// violation as a replayable [`ExecutionRecord`].
pub fn run_batch(config: &FuzzConfig) -> Result<BatchReport, ConfigError> {
    let config = config.clone().validate()?;
    let mut report = BatchReport {
        cases_run: config.cases,
        config: config.clone(),
        engine_cases: 0,
        cluster_cases: 0,
        total_messages: 0,
        total_tampered: 0,
        violations: Vec::new(),
        errors: Vec::new(),
    };
    let mut case_idx = 0u32;
    while case_idx < config.cases {
        let spec = CaseSpec::generate(&config, case_idx);
        match spec.path {
            ExecPath::Engine => report.engine_cases += 1,
            ExecPath::Cluster => report.cluster_cases += 1,
        }
        match spec.run() {
            Ok(outcome) => {
                report.total_messages += outcome.messages;
                report.total_tampered += outcome.tampered;
                if let Some(divergence) = outcome.divergence {
                    report.violations.push(ExecutionRecord { spec, divergence });
                }
            }
            Err(error) => report.errors.push(format!("case {case_idx}: {error}")),
        }
        case_idx += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_benign() -> FuzzConfig {
        FuzzConfig {
            cases: 6,
            max_population: 16,
            max_rounds: 100,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn benign_batch_is_clean_and_deterministic() {
        let first = run_batch(&small_benign()).expect("valid config");
        assert!(first.is_clean(), "violations: {:?}", first.violations);
        assert_eq!(first.cases_run, 6);
        assert_eq!(first.engine_cases + first.cluster_cases, 6);
        assert!(first.total_messages > 0);
        assert_eq!(first.total_tampered, 0, "benign batches never tamper");
        let second = run_batch(&small_benign()).expect("valid config");
        assert_eq!(first, second, "batches must be reproducible");
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let bad = FuzzConfig {
            cases: 0,
            ..FuzzConfig::default()
        };
        assert!(run_batch(&bad).is_err());
    }

    #[test]
    fn batch_artefact_carries_schema_and_counters() {
        let report = run_batch(&small_benign()).expect("valid config");
        let text = report.to_json();
        let doc = crate::json::parse(&text).expect("artefact parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BATCH_SCHEMA));
        assert_eq!(doc.get("cases_run").and_then(Json::as_u32), Some(6));
        assert_eq!(
            doc.get("violations")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }
}
