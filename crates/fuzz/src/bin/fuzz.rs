//! `fuzz` — drive seeded chaos batches, Byzantine degradation sweeps
//! and record replays from the command line.
//!
//! ```text
//! fuzz [--seed N] [--cases N] [--byz F] [OUT_DIR]   full batch + sweep
//! fuzz --smoke OUT_DIR                              bounded CI batch + sweep
//! fuzz --replay RECORD.json [--trace TRACE.json]    re-run a frozen record
//! ```
//!
//! Artefacts: `FUZZ_batch.json` (schema `rumor-fuzz/batch/v1`),
//! `FUZZ_sweep.json` (schema `rumor-fuzz/sweep/v1`) and one
//! `record_<index>.json` per violation (schema `rumor-fuzz/record/v1`).
//! `--replay --trace OUT` additionally captures the replayed trajectory
//! as a structured trace artefact (schema `rumor-obs/trace/v1`) —
//! tracing draws no randomness, so the traced replay is the recorded
//! run, made inspectable. Exit status is non-zero when a benign batch
//! finds a violation or a replay fails to reproduce its record.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use rumor_cluster::ByzantineBehaviour;
use rumor_fuzz::{
    degradation_sweep, run_batch, BatchReport, ExecutionRecord, FuzzConfig, ReplayVerdict,
    SweepReport,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_mode(&args) {
        Ok(Mode::Replay { path, trace }) => replay(&path, trace.as_deref()),
        Ok(Mode::Batch { config, out_dir }) => batch(&config, &out_dir),
        Err(message) => {
            eprintln!("fuzz: {message}");
            eprintln!(
                "usage: fuzz [--seed N] [--cases N] [--byz F] [OUT_DIR]\n       \
                 fuzz --smoke OUT_DIR\n       \
                 fuzz --replay RECORD.json [--trace TRACE.json]"
            );
            ExitCode::from(2)
        }
    }
}

enum Mode {
    Batch { config: FuzzConfig, out_dir: String },
    Replay { path: String, trace: Option<String> },
}

fn parse_mode(args: &[String]) -> Result<Mode, String> {
    let mut config = FuzzConfig::default();
    let mut out_dir: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut arg_idx = 0usize;
    while arg_idx < args.len() {
        let take_value = |i: usize| -> Result<&str, String> {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("`{}` needs a value", args[i]))
        };
        match args[arg_idx].as_str() {
            "--replay" => {
                replay_path = Some(take_value(arg_idx)?.to_owned());
                arg_idx += 2;
            }
            "--trace" => {
                trace_path = Some(take_value(arg_idx)?.to_owned());
                arg_idx += 2;
            }
            "--smoke" => {
                // Bounded for CI: small populations, short horizon.
                config.cases = 32;
                config.max_population = 24;
                config.max_rounds = 100;
                out_dir = Some(take_value(arg_idx)?.to_owned());
                arg_idx += 2;
            }
            "--seed" => {
                config.seed = take_value(arg_idx)?
                    .parse()
                    .map_err(|_| "`--seed` wants a u64".to_owned())?;
                arg_idx += 2;
            }
            "--cases" => {
                config.cases = take_value(arg_idx)?
                    .parse()
                    .map_err(|_| "`--cases` wants a u32".to_owned())?;
                arg_idx += 2;
            }
            "--byz" => {
                config.byzantine_max_fraction = take_value(arg_idx)?
                    .parse()
                    .map_err(|_| "`--byz` wants a fraction".to_owned())?;
                arg_idx += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            dir => {
                out_dir = Some(dir.to_owned());
                arg_idx += 1;
            }
        }
    }
    if let Some(path) = replay_path {
        return Ok(Mode::Replay {
            path,
            trace: trace_path,
        });
    }
    if trace_path.is_some() {
        return Err("`--trace` only makes sense with `--replay`".to_owned());
    }
    Ok(Mode::Batch {
        config,
        out_dir: out_dir.unwrap_or_else(|| "fuzz-out".to_owned()),
    })
}

fn batch(config: &FuzzConfig, out_dir: &str) -> ExitCode {
    let report = match run_batch(config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("fuzz: invalid config: {error}");
            return ExitCode::from(2);
        }
    };
    // The sweep always runs on the cluster path with a forced Byzantine
    // block, independent of the batch's own (usually benign) knobs.
    let sweep_config = FuzzConfig {
        cases: report.config.cases,
        ..report.config.clone()
    };
    let sweep = match degradation_sweep(
        &sweep_config,
        ByzantineBehaviour::DigestLie,
        &[0.0, 0.15, 0.3, 0.45, 0.6, 0.75],
        8,
    ) {
        Ok(sweep) => sweep,
        Err(error) => {
            eprintln!("fuzz: sweep failed: {error}");
            return ExitCode::from(2);
        }
    };
    if let Err(error) = write_artefacts(Path::new(out_dir), &report, &sweep) {
        eprintln!("fuzz: {error}");
        return ExitCode::from(2);
    }
    print_summary(&report, &sweep, out_dir);
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_artefacts(
    out_dir: &Path,
    report: &BatchReport,
    sweep: &SweepReport,
) -> Result<(), String> {
    fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let write = |name: &str, text: &str| {
        let path = out_dir.join(name);
        fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("FUZZ_batch.json", &report.to_json())?;
    write("FUZZ_sweep.json", &sweep.to_json())?;
    for record in &report.violations {
        write(
            &format!("record_{}.json", record.spec.index),
            &record.to_json(),
        )?;
    }
    Ok(())
}

fn print_summary(report: &BatchReport, sweep: &SweepReport, out_dir: &str) {
    println!("fuzz batch (seed {}):", report.config.seed);
    println!(
        "  cases                 : {} ({} engine, {} cluster)",
        report.cases_run, report.engine_cases, report.cluster_cases
    );
    println!("  messages              : {}", report.total_messages);
    println!("  tampered sends        : {}", report.total_tampered);
    println!("  oracle violations     : {}", report.violations.len());
    for record in &report.violations {
        println!(
            "    case {:>4} seed {:>20} -> {}",
            record.spec.index,
            record.spec.seed,
            record.divergence.kind()
        );
    }
    for error in &report.errors {
        println!("  run error             : {error}");
    }
    println!("degradation sweep (digest-lie):");
    for point in &sweep.points {
        println!(
            "  byz {:>5.2} -> P(converge) {:.2}  (mean tampered {:.1})",
            point.fraction, point.convergence_probability, point.mean_tampered
        );
    }
    println!("artefacts under {out_dir}/");
}

fn replay(path: &str, trace_out: Option<&str>) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("fuzz: reading {path}: {error}");
            return ExitCode::from(2);
        }
    };
    let record = match ExecutionRecord::from_json(&text) {
        Ok(record) => record,
        Err(error) => {
            eprintln!("fuzz: parsing {path}: {error}");
            return ExitCode::from(2);
        }
    };
    let result = match trace_out {
        Some(out) => {
            let label = format!("fuzz-replay-{}", record.spec.index);
            match record.replay_traced(&label) {
                Ok((verdict, outcome, trace)) => {
                    if let Err(error) = fs::write(out, trace.to_json()) {
                        eprintln!("fuzz: writing trace {out}: {error}");
                        return ExitCode::from(2);
                    }
                    println!(
                        "trace: {out} ({} events over {} rounds)",
                        trace.events.len(),
                        trace.rounds()
                    );
                    Ok((verdict, outcome))
                }
                Err(error) => Err(error),
            }
        }
        None => record.replay(),
    };
    match result {
        Ok((ReplayVerdict::Reproduced, outcome)) => {
            println!(
                "replay {path}: reproduced `{}` after {} rounds ({} witnesses)",
                record.divergence.kind(),
                outcome.rounds_executed,
                outcome.witnesses
            );
            ExitCode::SUCCESS
        }
        Ok((ReplayVerdict::DifferentDivergence(other), _)) => {
            eprintln!(
                "replay {path}: STALE — recorded `{}` but replay produced `{}`",
                record.divergence.kind(),
                other.kind()
            );
            ExitCode::FAILURE
        }
        Ok((ReplayVerdict::Clean, _)) => {
            eprintln!("replay {path}: GONE — the case now satisfies the oracle");
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("replay {path}: failed to run: {error}");
            ExitCode::from(2)
        }
    }
}
