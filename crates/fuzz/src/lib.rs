//! `rumor-fuzz` — seeded chaos fuzzer for the rumor-spreading stack.
//!
//! The rest of the workspace proves the protocol on *chosen* scenarios:
//! golden-pinned cluster runs, analytical cross-checks, benchmark
//! baselines. This crate attacks it with *random* ones. From a single
//! master seed it generates whole fuzz cases — population, churn and
//! loss parameters, a workload of writes and deletes, a crash/restart
//! schedule, optionally a block of Byzantine members
//! ([`rumor_cluster::ByzantineBehaviour`]) — runs each case through an
//! existing execution path (the reference `rumor_sim::Driver` engine or
//! the virtual-time `rumor_cluster` runtime), and checks a convergence
//! oracle over the replicas that stayed online:
//!
//! * no initiated update may be *partially* known — either every stable
//!   correct witness holds it or none does;
//! * every stable correct witness's replica store digest must be equal
//!   (anti-entropy converged, tombstones included).
//!
//! Determinism is the contract that makes failures useful. All
//! randomness flows through `rumor_types::SeedSequence` (substream
//! `"fuzz/case"`), a case's seed is its *only* input, and a failing
//! case freezes into an [`ExecutionRecord`] — hand-rolled JSON whose
//! numbers are text-preserving ([`Json`]) — that
//! [`ExecutionRecord::replay`] re-runs bit for bit.
//!
//! The `fuzz` binary drives batches ([`run_batch`]), Byzantine
//! degradation sweeps ([`degradation_sweep`]) and record replays; CI
//! runs it in `--smoke` mode.
//!
//! # Examples
//!
//! ```
//! use rumor_fuzz::{run_batch, FuzzConfig};
//!
//! let config = FuzzConfig {
//!     cases: 2,
//!     max_population: 12,
//!     max_rounds: 60,
//!     ..FuzzConfig::default()
//! };
//! let report = run_batch(&config)?;
//! assert!(report.is_clean(), "benign cases must satisfy the oracle");
//! assert_eq!(report.cases_run, 2);
//! # Ok::<(), rumor_fuzz::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case;
mod config;
pub mod json;
mod oracle;
mod record;
mod runner;
mod sweep;

pub use case::{behaviour_from_name, behaviour_name, CaseOutcome, CaseSpec, ExecPath};
pub use config::{ConfigError, FuzzConfig};
pub use json::Json;
pub use oracle::Divergence;
pub use record::{ExecutionRecord, ReplayVerdict, RECORD_SCHEMA};
pub use runner::{run_batch, BatchReport, BATCH_SCHEMA};
pub use sweep::{degradation_sweep, SweepPoint, SweepReport, SWEEP_SCHEMA};
