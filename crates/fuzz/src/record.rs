//! Replayable execution records: a failing case frozen as JSON.
//!
//! A record carries the full [`CaseSpec`] plus the [`Divergence`] the
//! oracle reported. Because the spec is the *only* input a run consumes
//! (all randomness derives from its seed), re-running the spec
//! reproduces the identical trajectory — [`ExecutionRecord::replay`]
//! checks that the divergence comes back structurally equal, and
//! serializing the replayed record yields the committed bytes.

use crate::case::{CaseOutcome, CaseSpec};
use crate::json::{self, Json};
use crate::oracle::Divergence;
use rumor_obs::TraceDoc;

/// Schema tag stamped into every record artefact.
pub const RECORD_SCHEMA: &str = "rumor-fuzz/record/v1";

/// A failing fuzz case frozen for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionRecord {
    /// The case that failed.
    pub spec: CaseSpec,
    /// The violation the oracle reported.
    pub divergence: Divergence,
}

/// What replaying a record produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayVerdict {
    /// The recorded divergence came back identically — a true repro.
    Reproduced,
    /// The case diverged, but differently — the record is stale
    /// (protocol or fuzzer semantics changed since it was captured).
    DifferentDivergence(Divergence),
    /// The case now passes the oracle — the defect is gone.
    Clean,
}

impl ExecutionRecord {
    /// Serializes the record (pretty JSON, trailing newline).
    pub fn to_json(&self) -> String {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::from_text(RECORD_SCHEMA)),
            ("case".into(), self.spec.to_json()),
            ("divergence".into(), self.divergence.to_json()),
        ]);
        let mut text = doc.pretty();
        text.push('\n');
        text
    }

    /// Parses a record serialized by [`ExecutionRecord::to_json`].
    pub fn from_json(text: &str) -> Result<ExecutionRecord, String> {
        let doc = json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("record missing `schema`")?;
        if schema != RECORD_SCHEMA {
            return Err(format!(
                "unsupported record schema `{schema}` (want `{RECORD_SCHEMA}`)"
            ));
        }
        let spec = CaseSpec::from_json(doc.get("case").ok_or("record missing `case`")?)?;
        let divergence =
            Divergence::from_json(doc.get("divergence").ok_or("record missing `divergence`")?)?;
        Ok(ExecutionRecord { spec, divergence })
    }

    /// Re-runs the recorded case and compares the oracle verdict.
    pub fn replay(&self) -> Result<(ReplayVerdict, CaseOutcome), String> {
        let outcome = self.spec.run()?;
        let verdict = self.verdict_of(&outcome);
        Ok((verdict, outcome))
    }

    /// Like [`ExecutionRecord::replay`], additionally capturing the
    /// replayed trajectory as a `rumor-obs` trace. Tracing consumes no
    /// randomness, so the verdict is identical to an untraced replay —
    /// the trace is the same run, made inspectable.
    pub fn replay_traced(
        &self,
        label: &str,
    ) -> Result<(ReplayVerdict, CaseOutcome, TraceDoc), String> {
        let (outcome, trace) = self.spec.run_traced(label)?;
        let verdict = self.verdict_of(&outcome);
        Ok((verdict, outcome, trace))
    }

    fn verdict_of(&self, outcome: &CaseOutcome) -> ReplayVerdict {
        match &outcome.divergence {
            Some(d) if *d == self.divergence => ReplayVerdict::Reproduced,
            Some(d) => ReplayVerdict::DifferentDivergence(d.clone()),
            None => ReplayVerdict::Clean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuzzConfig;

    fn sample_record() -> ExecutionRecord {
        ExecutionRecord {
            spec: CaseSpec::generate(&FuzzConfig::default(), 5),
            divergence: Divergence::StoreMismatch {
                representative: 0,
                divergent: vec![3, 7],
            },
        }
    }

    #[test]
    fn record_serialization_is_the_identity_under_a_round_trip() {
        let record = sample_record();
        let text = record.to_json();
        let back = ExecutionRecord::from_json(&text).expect("record parses");
        assert_eq!(back, record);
        assert_eq!(back.to_json(), text, "bytes must be reproduced exactly");
    }

    #[test]
    fn wrong_schema_and_missing_fields_are_rejected() {
        let good = sample_record().to_json();
        let wrong_schema = good.replace(RECORD_SCHEMA, "rumor-fuzz/record/v0");
        assert!(ExecutionRecord::from_json(&wrong_schema).is_err());
        assert!(ExecutionRecord::from_json("{}").is_err());
        assert!(ExecutionRecord::from_json("not json").is_err());
    }

    #[test]
    fn replaying_a_fabricated_divergence_reports_clean() {
        // The sample spec passes the oracle, so a fabricated divergence
        // must replay as Clean — proving replay really re-runs the case.
        let record = sample_record();
        let (verdict, outcome) = record.replay().expect("replays");
        assert_eq!(verdict, ReplayVerdict::Clean);
        assert_eq!(outcome.divergence, None);
    }
}
