//! Fuzzer configuration: one master seed plus the knobs bounding the
//! random case space, with build-time validation.

/// Bounds of the random case space and the master seed.
///
/// Every random decision the fuzzer makes — scenario shape, workload,
/// fault schedule, Byzantine fraction — is derived from [`seed`] through
/// the `rumor_types::SeedSequence` substream `"fuzz/case"`; two runs
/// with the same config generate byte-identical case specs.
///
/// [`seed`]: FuzzConfig::seed
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzConfig {
    /// Master seed; case `i` runs on `SeedSequence(seed, "fuzz/case")[i]`.
    pub seed: u64,
    /// How many cases a batch generates.
    pub cases: u32,
    /// Smallest population a case may draw (must be ≥ 2).
    pub min_population: usize,
    /// Largest population a case may draw.
    pub max_population: usize,
    /// Horizon in rounds before the oracle's stable-online probe window.
    pub max_rounds: u32,
    /// Upper bound on the Byzantine fraction a case may draw; `0.0`
    /// keeps the whole batch benign (every member honest).
    pub byzantine_max_fraction: f64,
    /// Run cluster-path cases under wire v2 (per-peer batch frames +
    /// digest-delta pulls). Copied into every spec — never drawn from
    /// the case RNG, so flipping it cannot shift the draw order behind
    /// committed repro records.
    pub wire_v2: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 2026,
            cases: 64,
            min_population: 8,
            max_population: 40,
            max_rounds: 160,
            byzantine_max_fraction: 0.0,
            wire_v2: false,
        }
    }
}

impl FuzzConfig {
    /// Validates the bounds, returning the config ready to run.
    pub fn validate(self) -> Result<Self, ConfigError> {
        if self.cases == 0 {
            return Err(ConfigError::NoCases);
        }
        if self.min_population < 2 {
            return Err(ConfigError::PopulationFloor {
                min: self.min_population,
            });
        }
        if self.min_population > self.max_population {
            return Err(ConfigError::PopulationRange {
                min: self.min_population,
                max: self.max_population,
            });
        }
        if self.max_rounds == 0 {
            return Err(ConfigError::NoHorizon);
        }
        if !(0.0..=1.0).contains(&self.byzantine_max_fraction) {
            return Err(ConfigError::ByzantineFraction {
                value: self.byzantine_max_fraction,
            });
        }
        Ok(self)
    }
}

/// Rejected [`FuzzConfig`] bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `cases` was zero — a batch must run something.
    NoCases,
    /// `min_population` below 2 — the oracle needs two witnesses.
    PopulationFloor {
        /// The offending floor.
        min: usize,
    },
    /// `min_population` exceeded `max_population`.
    PopulationRange {
        /// The configured floor.
        min: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// `max_rounds` was zero — no case could make progress.
    NoHorizon,
    /// `byzantine_max_fraction` outside `[0, 1]` (or NaN).
    ByzantineFraction {
        /// The offending fraction.
        value: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoCases => write!(f, "cases must be at least 1"),
            ConfigError::PopulationFloor { min } => {
                write!(
                    f,
                    "min_population {min} is below 2 (oracle needs two witnesses)"
                )
            }
            ConfigError::PopulationRange { min, max } => {
                write!(f, "population range is empty: min {min} > max {max}")
            }
            ConfigError::NoHorizon => write!(f, "max_rounds must be at least 1"),
            ConfigError::ByzantineFraction { value } => {
                write!(f, "byzantine_max_fraction {value} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(FuzzConfig::default().validate().is_ok());
    }

    #[test]
    fn each_bound_violation_maps_to_its_typed_error() {
        let base = FuzzConfig::default;
        assert_eq!(
            FuzzConfig { cases: 0, ..base() }.validate(),
            Err(ConfigError::NoCases)
        );
        assert_eq!(
            FuzzConfig {
                min_population: 1,
                ..base()
            }
            .validate(),
            Err(ConfigError::PopulationFloor { min: 1 })
        );
        assert_eq!(
            FuzzConfig {
                min_population: 50,
                max_population: 10,
                ..base()
            }
            .validate(),
            Err(ConfigError::PopulationRange { min: 50, max: 10 })
        );
        assert_eq!(
            FuzzConfig {
                max_rounds: 0,
                ..base()
            }
            .validate(),
            Err(ConfigError::NoHorizon)
        );
        let nan = FuzzConfig {
            byzantine_max_fraction: f64::NAN,
            ..base()
        };
        assert!(matches!(
            nan.validate(),
            Err(ConfigError::ByzantineFraction { .. })
        ));
        assert!(FuzzConfig {
            byzantine_max_fraction: 1.5,
            ..base()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn errors_render_a_human_message() {
        let msg = ConfigError::PopulationRange { min: 9, max: 3 }.to_string();
        assert!(msg.contains("min 9"), "{msg}");
        assert!(msg.contains("max 3"), "{msg}");
    }
}
