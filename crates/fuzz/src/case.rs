//! A fuzz case: one fully-specified scenario + workload + fault
//! schedule, generated from a single seed and runnable on either
//! execution path.
//!
//! `CaseSpec` is the replay unit. Every field is plain data, every
//! random draw during execution is derived from [`CaseSpec::seed`], so
//! serializing a spec, parsing it back and running it again reproduces
//! the original trajectory bit for bit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rumor_churn::MarkovChurn;
use rumor_cluster::{ByzantineBehaviour, ByzantineSpec, ClusterBuilder, FaultSpec, VirtualCluster};
use rumor_core::{ProtocolConfig, PullStrategy, ReplicaPeer};
use rumor_obs::{MemTracer, TraceDoc, Tracer};
use rumor_sim::{Driver, PaperProtocol, Protocol, Scenario, TopologySpec, UpdateEvent};
use rumor_types::{derive_seed, DataKey, PeerId, SeedSequence, UpdateId};

use crate::config::FuzzConfig;
use crate::json::Json;
use crate::oracle::{self, Divergence};

/// Which runtime executes the case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// The reference `rumor_sim::Driver` over the sync engine.
    Engine,
    /// The deterministic virtual-time `rumor_cluster` runtime (the only
    /// path that can host crash faults and Byzantine members).
    Cluster,
}

impl ExecPath {
    /// Stable artefact name.
    pub fn name(self) -> &'static str {
        match self {
            ExecPath::Engine => "engine",
            ExecPath::Cluster => "cluster",
        }
    }

    /// Parses an artefact name.
    pub fn from_name(name: &str) -> Option<ExecPath> {
        match name {
            "engine" => Some(ExecPath::Engine),
            "cluster" => Some(ExecPath::Cluster),
            _ => None,
        }
    }
}

/// Stable artefact name for a Byzantine behaviour.
pub fn behaviour_name(behaviour: ByzantineBehaviour) -> &'static str {
    match behaviour {
        ByzantineBehaviour::DigestLie => "digest-lie",
        ByzantineBehaviour::StaleReplay => "stale-replay",
        ByzantineBehaviour::CorruptFrames => "corrupt-frames",
        ByzantineBehaviour::Mixed => "mixed",
    }
}

/// Parses a Byzantine behaviour artefact name.
pub fn behaviour_from_name(name: &str) -> Option<ByzantineBehaviour> {
    match name {
        "digest-lie" => Some(ByzantineBehaviour::DigestLie),
        "stale-replay" => Some(ByzantineBehaviour::StaleReplay),
        "corrupt-frames" => Some(ByzantineBehaviour::CorruptFrames),
        "mixed" => Some(ByzantineBehaviour::Mixed),
        _ => None,
    }
}

/// One fully-determined fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Index within the generating batch.
    pub index: u32,
    /// The case seed — sole entropy source for generation *and* run.
    pub seed: u64,
    /// Which runtime executes the case.
    pub path: ExecPath,
    /// Replica population.
    pub population: usize,
    /// Initial online fraction.
    pub online_fraction: f64,
    /// Markov churn: probability an online peer stays online.
    pub stay_online: f64,
    /// Markov churn: probability an offline peer comes online.
    pub come_online: f64,
    /// Per-message loss probability.
    pub loss: f64,
    /// Knowledge-graph out-degree: `0` = full mesh, otherwise each peer
    /// knows `subset_k` uniformly random peers. Sparse views are where
    /// Byzantine members bite — a peer whose whole view lies to it has
    /// no honest pull source.
    pub subset_k: usize,
    /// Absolute push fanout.
    pub fanout: usize,
    /// Anti-entropy period in rounds.
    pub staleness_rounds: u32,
    /// `true` = eager pull on coming online, else lazy (patience 2).
    pub eager_pull: bool,
    /// Number of updates the workload initiates.
    pub updates: u32,
    /// Probability an update is a delete (tombstone).
    pub delete_chance: f64,
    /// Cluster-path crash probability per node per round.
    pub crash_rate: f64,
    /// Rounds a crashed node stays down before restarting.
    pub restart_after: u32,
    /// Fraction of the population mounted as Byzantine members.
    pub byzantine_fraction: f64,
    /// Behaviour those members run (irrelevant when the fraction is 0).
    pub byzantine_behaviour: ByzantineBehaviour,
    /// Horizon in rounds before the oracle's probe window.
    pub max_rounds: u32,
    /// Cluster-path wire codec: `true` = v2 (per-peer batch frames +
    /// digest-delta pulls). Copied from the config, never drawn — see
    /// [`FuzzConfig::wire_v2`].
    pub wire_v2: bool,
}

/// What one case run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// The oracle's verdict — `Some` means the case is a violation.
    pub divergence: Option<Divergence>,
    /// Rounds executed including the probe window.
    pub rounds_executed: u32,
    /// Messages (frames) sent during the run.
    pub messages: u64,
    /// Sends the Byzantine layer tampered with.
    pub tampered: u64,
    /// How many members ran a Byzantine behaviour.
    pub byzantine: usize,
    /// Stable-online correct witnesses the oracle evaluated.
    pub witnesses: usize,
}

/// Oracle inputs for the per-update awareness check: only updates on
/// keys written exactly once. A key written twice puts the later
/// version's lineage over the earlier one's, and `ReplicaStore::apply`
/// keeps only the frontier — a replica that first hears of the key via
/// the newer version never processes the superseded update, so
/// awareness of it is *legitimately* non-uniform. Those keys are still
/// covered by the oracle's store-digest equality check.
fn surviving_updates(tracked: &[(u32, DataKey, UpdateId)]) -> Vec<(u32, UpdateId)> {
    tracked
        .iter()
        .filter(|(_, key, _)| tracked.iter().filter(|(_, k, _)| k == key).count() == 1)
        .map(|&(sequence, _, update)| (sequence, update))
        .collect()
}

impl CaseSpec {
    /// Generates case `index` of a batch. Deterministic: the draw order
    /// below is part of the replay contract — changing it invalidates
    /// committed repro records.
    pub fn generate(config: &FuzzConfig, index: u32) -> CaseSpec {
        let seed = SeedSequence::new(config.seed, "fuzz/case").seed_at(u64::from(index));
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, "fuzz/gen"));
        let population = rng.gen_range(config.min_population..=config.max_population);
        let online_fraction = rng.gen_range(0.5..0.95);
        let stay_online = rng.gen_range(0.88..0.99);
        let come_online = rng.gen_range(0.15..0.5);
        let loss = rng.gen_range(0.0..0.08);
        let subset_k = if rng.gen_bool(0.4) {
            rng.gen_range(3..=5usize)
        } else {
            0
        };
        let fanout = rng.gen_range(2..=5usize);
        let staleness_rounds = rng.gen_range(4..=8u32);
        let eager_pull = rng.gen_bool(0.5);
        let updates = rng.gen_range(1..=3u32);
        let delete_chance = if rng.gen_bool(0.3) { 0.25 } else { 0.0 };
        let byzantine_fraction = if config.byzantine_max_fraction > 0.0 {
            rng.gen_range(0.0..config.byzantine_max_fraction)
        } else {
            0.0
        };
        let byzantine_behaviour = match rng.gen_range(0..4u8) {
            0 => ByzantineBehaviour::DigestLie,
            1 => ByzantineBehaviour::StaleReplay,
            2 => ByzantineBehaviour::CorruptFrames,
            _ => ByzantineBehaviour::Mixed,
        };
        let path = if byzantine_fraction > 0.0 || rng.gen_bool(0.5) {
            ExecPath::Cluster
        } else {
            ExecPath::Engine
        };
        let (crash_rate, restart_after) = match path {
            ExecPath::Cluster => (rng.gen_range(0.0..0.08), rng.gen_range(2..=5u32)),
            ExecPath::Engine => (0.0, 3),
        };
        CaseSpec {
            index,
            seed,
            path,
            population,
            online_fraction,
            stay_online,
            come_online,
            loss,
            subset_k,
            fanout,
            staleness_rounds,
            eager_pull,
            updates,
            delete_chance,
            crash_rate,
            restart_after,
            byzantine_fraction,
            byzantine_behaviour,
            max_rounds: config.max_rounds,
            wire_v2: config.wire_v2,
        }
    }

    /// The workload schedule, re-derived from the case seed.
    pub fn events(&self) -> Vec<UpdateEvent> {
        const KEYS: [&str; 3] = ["fuzz-alpha", "fuzz-beta", "fuzz-gamma"];
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(self.seed, "fuzz/workload"));
        let mut events: Vec<UpdateEvent> = (0..self.updates)
            .map(|sequence| UpdateEvent {
                round: rng.gen_range(0..8u32),
                key: DataKey::from_name(KEYS[rng.gen_range(0..KEYS.len())]),
                delete: self.delete_chance > 0.0 && rng.gen_bool(self.delete_chance),
                sequence,
            })
            .collect();
        events.sort_by_key(|e| (e.round, e.sequence));
        events
    }

    /// Rounds the oracle steps singly after the horizon, intersecting
    /// online sets: long enough for at least two anti-entropy cycles.
    pub fn probe_window(&self) -> u32 {
        self.staleness_rounds * 2 + 4
    }

    fn scenario(&self) -> Result<Scenario, String> {
        let churn =
            MarkovChurn::new(self.stay_online, self.come_online).map_err(|e| e.to_string())?;
        let topology = if self.subset_k == 0 {
            TopologySpec::Full
        } else {
            TopologySpec::RandomSubset { k: self.subset_k }
        };
        Scenario::builder(self.population, self.seed)
            .online_fraction(self.online_fraction)
            .topology(topology)
            .churn(churn)
            .loss(self.loss)
            .build()
            .map_err(|e| e.to_string())
    }

    fn protocol(&self) -> Result<PaperProtocol, String> {
        let mut builder = ProtocolConfig::builder(self.population);
        builder
            .fanout_absolute(self.fanout)
            .staleness_rounds(self.staleness_rounds)
            .pull_retry(2, 3)
            .pull_strategy(if self.eager_pull {
                PullStrategy::Eager
            } else {
                PullStrategy::Lazy { patience: 2 }
            });
        if self.wire_v2 {
            builder.delta_pulls(true);
        }
        builder
            .build()
            .map(PaperProtocol::new)
            .map_err(|e| e.to_string())
    }

    /// Runs the case to completion and checks the convergence oracle.
    pub fn run(&self) -> Result<CaseOutcome, String> {
        match self.path {
            ExecPath::Engine => {
                let scenario = self.scenario()?;
                let protocol = self.protocol()?;
                let mut driver = scenario.drive(&protocol);
                Ok(self.drive_engine(&mut driver, &protocol))
            }
            ExecPath::Cluster => {
                let mut cluster = self.mount_cluster(false)?;
                Ok(self.drive_cluster(&mut cluster))
            }
        }
    }

    /// Like [`CaseSpec::run`], additionally capturing the trajectory as
    /// a structured `rumor-obs` trace labelled `label`. Capture consumes
    /// no randomness, so the outcome (and the oracle verdict) is
    /// bit-identical to an untraced [`CaseSpec::run`] of the same spec —
    /// which is what makes a frozen repro record explorable as a
    /// timeline without invalidating it.
    pub fn run_traced(&self, label: &str) -> Result<(CaseOutcome, TraceDoc), String> {
        match self.path {
            ExecPath::Engine => {
                let scenario = self.scenario()?;
                let protocol = self.protocol()?;
                let mut driver = scenario.drive_traced(&protocol, MemTracer::new());
                let outcome = self.drive_engine(&mut driver, &protocol);
                let events = driver.tracer_mut().take();
                let doc = TraceDoc::merge(label, self.seed, self.population as u32, [events]);
                Ok((outcome, doc))
            }
            ExecPath::Cluster => {
                let mut cluster = self.mount_cluster(true)?;
                let outcome = self.drive_cluster(&mut cluster);
                let doc = cluster
                    .take_trace(label)
                    .expect("cluster was mounted traced");
                Ok((outcome, doc))
            }
        }
    }

    fn mount_cluster(&self, trace: bool) -> Result<VirtualCluster<PaperProtocol>, String> {
        let scenario = self.scenario()?;
        let protocol = self.protocol()?;
        let faults = FaultSpec {
            crash_rate: self.crash_rate,
            restart_after: self.restart_after,
            byzantine: ByzantineSpec {
                fraction: self.byzantine_fraction,
                behaviour: self.byzantine_behaviour,
            },
        };
        let mut builder = ClusterBuilder::new(&scenario)
            .faults(faults)
            .map_err(|e| e.to_string())?;
        if trace {
            builder = builder.traced();
        }
        if self.wire_v2 {
            builder = builder.wire(rumor_cluster::WireVersion::V2);
        }
        Ok(builder.virtual_time(protocol))
    }

    fn drive_cluster(&self, cluster: &mut VirtualCluster<PaperProtocol>) -> CaseOutcome {
        let events = self.events();
        let mut tracked: Vec<(u32, DataKey, UpdateId)> = Vec::new();
        let mut next = 0usize;
        let mut tick = 0u32;
        while tick < self.max_rounds {
            while next < events.len() && events[next].round <= tick {
                match cluster.initiate(&events[next]) {
                    Some(update) => {
                        tracked.push((events[next].sequence, events[next].key, update));
                        next += 1;
                    }
                    // Nobody online to originate: retry next tick.
                    None => break,
                }
            }
            cluster.step();
            tick += 1;
        }

        // Stable-online probe: only peers online for the entire window
        // (and honest) are oracle witnesses.
        let mut stable: Vec<PeerId> = cluster.online_peers();
        let mut step_idx = 0u32;
        while step_idx < self.probe_window() {
            cluster.step();
            let now = cluster.online_peers();
            stable.retain(|p| now.contains(p));
            step_idx += 1;
        }
        stable.retain(|&p| !cluster.is_byzantine(p));

        let divergence = oracle::check(
            &stable,
            |p| cluster.node(p).store().digest(),
            &surviving_updates(&tracked),
            |p, u| cluster.is_aware(p, u),
        );
        let report = tracked
            .first()
            .map(|&(_, _, update)| cluster.report(update));
        CaseOutcome {
            divergence,
            rounds_executed: self.max_rounds + self.probe_window(),
            messages: report.as_ref().map_or(0, |r| r.frames_sent),
            tampered: report.as_ref().map_or(0, |r| r.frames_tampered),
            byzantine: report.as_ref().map_or(0, |r| r.byzantine),
            witnesses: stable.len(),
        }
    }

    fn drive_engine<T: Tracer>(
        &self,
        driver: &mut Driver<ReplicaPeer, T>,
        protocol: &PaperProtocol,
    ) -> CaseOutcome {
        let events = self.events();
        let mut tracked: Vec<(u32, DataKey, UpdateId)> = Vec::new();
        let mut next = 0usize;
        let mut tick = 0u32;
        while tick < self.max_rounds {
            while next < events.len() && events[next].round <= tick {
                match driver.initiate(protocol, None, &events[next]) {
                    Some(update) => {
                        tracked.push((events[next].sequence, events[next].key, update));
                        next += 1;
                    }
                    None => break,
                }
            }
            driver.step();
            tick += 1;
        }

        let mut stable: Vec<PeerId> = driver.online().iter_online().collect();
        let mut step_idx = 0u32;
        while step_idx < self.probe_window() {
            driver.step();
            let now: Vec<PeerId> = driver.online().iter_online().collect();
            stable.retain(|p| now.contains(p));
            step_idx += 1;
        }

        let divergence = oracle::check(
            &stable,
            |p| driver.node(p).store().digest(),
            &surviving_updates(&tracked),
            |p, u| protocol.is_aware(driver.node(p), u),
        );
        CaseOutcome {
            divergence,
            rounds_executed: self.max_rounds + self.probe_window(),
            messages: driver.messages(),
            tampered: 0,
            byzantine: 0,
            witnesses: stable.len(),
        }
    }

    /// Serializes the spec as a JSON object (field order is stable).
    /// `wire_v2` is emitted only when set, so records captured before
    /// the field existed re-serialize byte-identically.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("index".into(), Json::from_u32(self.index)),
            ("seed".into(), Json::from_u64(self.seed)),
            ("path".into(), Json::from_text(self.path.name())),
            ("population".into(), Json::from_usize(self.population)),
            (
                "online_fraction".into(),
                Json::from_f64(self.online_fraction),
            ),
            ("stay_online".into(), Json::from_f64(self.stay_online)),
            ("come_online".into(), Json::from_f64(self.come_online)),
            ("loss".into(), Json::from_f64(self.loss)),
            ("subset_k".into(), Json::from_usize(self.subset_k)),
            ("fanout".into(), Json::from_usize(self.fanout)),
            (
                "staleness_rounds".into(),
                Json::from_u32(self.staleness_rounds),
            ),
            ("eager_pull".into(), Json::Bool(self.eager_pull)),
            ("updates".into(), Json::from_u32(self.updates)),
            ("delete_chance".into(), Json::from_f64(self.delete_chance)),
            ("crash_rate".into(), Json::from_f64(self.crash_rate)),
            ("restart_after".into(), Json::from_u32(self.restart_after)),
            (
                "byzantine_fraction".into(),
                Json::from_f64(self.byzantine_fraction),
            ),
            (
                "byzantine_behaviour".into(),
                Json::from_text(behaviour_name(self.byzantine_behaviour)),
            ),
            ("max_rounds".into(), Json::from_u32(self.max_rounds)),
        ];
        if self.wire_v2 {
            fields.push(("wire_v2".into(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }

    /// Parses a spec serialized by [`CaseSpec::to_json`].
    pub fn from_json(doc: &Json) -> Result<CaseSpec, String> {
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("case spec missing `{name}`"))
        };
        let u32_field = |name: &str| {
            field(name)?
                .as_u32()
                .ok_or_else(|| format!("case spec `{name}` is not a u32"))
        };
        let f64_field = |name: &str| {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("case spec `{name}` is not a number"))
        };
        let usize_field = |name: &str| {
            field(name)?
                .as_usize()
                .ok_or_else(|| format!("case spec `{name}` is not a usize"))
        };
        let path_name = field("path")?
            .as_str()
            .ok_or("case spec `path` is not a string")?;
        let behaviour_text = field("byzantine_behaviour")?
            .as_str()
            .ok_or("case spec `byzantine_behaviour` is not a string")?;
        Ok(CaseSpec {
            index: u32_field("index")?,
            seed: field("seed")?
                .as_u64()
                .ok_or("case spec `seed` is not a u64")?,
            path: ExecPath::from_name(path_name)
                .ok_or_else(|| format!("unknown exec path `{path_name}`"))?,
            population: usize_field("population")?,
            online_fraction: f64_field("online_fraction")?,
            stay_online: f64_field("stay_online")?,
            come_online: f64_field("come_online")?,
            loss: f64_field("loss")?,
            subset_k: usize_field("subset_k")?,
            fanout: usize_field("fanout")?,
            staleness_rounds: u32_field("staleness_rounds")?,
            eager_pull: field("eager_pull")?
                .as_bool()
                .ok_or("case spec `eager_pull` is not a bool")?,
            updates: u32_field("updates")?,
            delete_chance: f64_field("delete_chance")?,
            crash_rate: f64_field("crash_rate")?,
            restart_after: u32_field("restart_after")?,
            byzantine_fraction: f64_field("byzantine_fraction")?,
            byzantine_behaviour: behaviour_from_name(behaviour_text)
                .ok_or_else(|| format!("unknown byzantine behaviour `{behaviour_text}`"))?,
            max_rounds: u32_field("max_rounds")?,
            // Absent in records captured before wire v2 existed.
            wire_v2: match doc.get("wire_v2") {
                None => false,
                Some(v) => v.as_bool().ok_or("case spec `wire_v2` is not a bool")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_config_seed() {
        let config = FuzzConfig::default();
        let a = CaseSpec::generate(&config, 7);
        let b = CaseSpec::generate(&config, 7);
        assert_eq!(a, b);
        let c = CaseSpec::generate(&config, 8);
        assert_ne!(a.seed, c.seed, "distinct indices draw distinct seeds");
        let other = FuzzConfig {
            seed: 9999,
            ..FuzzConfig::default()
        };
        assert_ne!(a.seed, CaseSpec::generate(&other, 7).seed);
    }

    #[test]
    fn spec_json_round_trips_exactly() {
        let config = FuzzConfig {
            byzantine_max_fraction: 0.4,
            ..FuzzConfig::default()
        };
        for case_idx in 0..16 {
            let spec = CaseSpec::generate(&config, case_idx);
            let text = spec.to_json().pretty();
            let doc = crate::json::parse(&text).expect("spec parses");
            let back = CaseSpec::from_json(&doc).expect("spec deserializes");
            assert_eq!(back, spec, "case {case_idx} drifted through JSON");
            assert_eq!(back.to_json().pretty(), text, "re-emit must be identical");
        }
    }

    #[test]
    fn events_are_sorted_and_reproducible() {
        let spec = CaseSpec::generate(&FuzzConfig::default(), 3);
        let events = spec.events();
        assert_eq!(events.len(), spec.updates as usize);
        assert!(events.windows(2).all(|w| w[0].round <= w[1].round));
        assert_eq!(events, spec.events());
    }

    #[test]
    fn a_benign_case_runs_clean_on_both_paths() {
        let config = FuzzConfig {
            cases: 4,
            max_population: 16,
            max_rounds: 120,
            ..FuzzConfig::default()
        };
        let mut saw = (false, false);
        for case_idx in 0..8 {
            let spec = CaseSpec::generate(&config, case_idx);
            match spec.path {
                ExecPath::Engine => saw.0 = true,
                ExecPath::Cluster => saw.1 = true,
            }
            let outcome = spec.run().expect("case runs");
            assert_eq!(
                outcome.divergence, None,
                "benign case {case_idx} ({:?}) diverged",
                spec.path
            );
            assert!(outcome.messages > 0 || outcome.witnesses < 2);
        }
        assert!(saw.0 && saw.1, "both exec paths should be exercised");
    }

    #[test]
    fn wire_v2_json_field_is_emitted_only_when_set() {
        let mut spec = CaseSpec::generate(&FuzzConfig::default(), 2);
        assert!(!spec.to_json().pretty().contains("wire_v2"));
        spec.wire_v2 = true;
        let text = spec.to_json().pretty();
        assert!(text.contains("\"wire_v2\": true"), "{text}");
        let doc = crate::json::parse(&text).expect("spec parses");
        let back = CaseSpec::from_json(&doc).expect("spec deserializes");
        assert_eq!(back, spec);
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn a_wire_v2_case_runs_clean_under_batches_and_delta_pulls() {
        let config = FuzzConfig {
            cases: 4,
            max_population: 16,
            max_rounds: 120,
            wire_v2: true,
            ..FuzzConfig::default()
        };
        let mut ran_cluster = false;
        for case_idx in 0..8 {
            let spec = CaseSpec::generate(&config, case_idx);
            assert!(spec.wire_v2, "config flag must reach the spec");
            if spec.path != ExecPath::Cluster {
                continue;
            }
            ran_cluster = true;
            let outcome = spec.run().expect("case runs");
            assert_eq!(
                outcome.divergence, None,
                "benign wire-v2 case {case_idx} diverged"
            );
        }
        assert!(ran_cluster, "at least one cluster-path case expected");
    }

    #[test]
    fn a_corrupt_frames_adversary_cannot_break_a_wire_v2_cluster() {
        // Corrupted batch frames drop whole; the honest majority must
        // still satisfy the oracle exactly as it does under wire v1.
        let config = FuzzConfig {
            max_population: 20,
            max_rounds: 120,
            ..FuzzConfig::default()
        };
        let mut spec = CaseSpec::generate(&config, 1);
        spec.path = ExecPath::Cluster;
        spec.byzantine_fraction = 0.2;
        spec.byzantine_behaviour = ByzantineBehaviour::CorruptFrames;
        let v1 = spec.run().expect("v1 case runs");
        spec.wire_v2 = true;
        let v2 = spec.run().expect("v2 case runs");
        assert!(v2.tampered > 0, "the adversary must actually tamper");
        assert_eq!(v1.divergence, None, "v1 baseline converges");
        assert_eq!(v2.divergence, None, "wire v2 must absorb the same block");
    }

    #[test]
    fn runs_replay_bit_for_bit() {
        let config = FuzzConfig {
            max_population: 20,
            max_rounds: 80,
            byzantine_max_fraction: 0.3,
            ..FuzzConfig::default()
        };
        let spec = CaseSpec::generate(&config, 1);
        let first = spec.run().expect("first run");
        let second = spec.run().expect("second run");
        assert_eq!(first, second, "a case must replay identically");
    }
}
