//! Byzantine degradation sweep: convergence probability as a function
//! of the Byzantine fraction.
//!
//! For each fraction the sweep forces a fixed fraction of the
//! population Byzantine (same behaviour at every point, views pinned
//! sparse — see [`SWEEP_SUBSET_K`]), runs a block of otherwise-random
//! cluster cases and measures how often the convergence oracle still
//! passes. The resulting curve is the fuzzer's headline artefact: it
//! shows where the paper protocol's redundancy stops absorbing
//! adversarial members.

use rumor_cluster::ByzantineBehaviour;

use crate::case::{behaviour_name, CaseSpec, ExecPath};
use crate::config::{ConfigError, FuzzConfig};
use crate::json::Json;

/// Schema tag stamped into sweep artefacts.
pub const SWEEP_SCHEMA: &str = "rumor-fuzz/sweep/v1";

/// Knowledge-graph out-degree forced onto every sweep case. On a full
/// mesh the protocol's periodic anti-entropy absorbs even large liar
/// blocks (every pull has honest sources in range); the interesting
/// degradation happens on sparse views, where a peer whose whole view
/// is Byzantine has no honest repair path.
pub const SWEEP_SUBSET_K: usize = 3;

/// One measured point of the degradation curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Byzantine fraction forced onto every case at this point.
    pub fraction: f64,
    /// Cases run at this point.
    pub cases: u32,
    /// Cases that passed the convergence oracle.
    pub converged: u32,
    /// `converged / cases`.
    pub convergence_probability: f64,
    /// Mean tampered sends per case.
    pub mean_tampered: f64,
}

/// The full degradation curve for one behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Master seed the sweep derived its cases from.
    pub seed: u64,
    /// The Byzantine behaviour under test.
    pub behaviour: ByzantineBehaviour,
    /// Measured points, in the order the fractions were given.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    /// Serializes the sweep artefact (pretty JSON, trailing newline).
    pub fn to_json(&self) -> String {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::from_text(SWEEP_SCHEMA)),
            ("seed".into(), Json::from_u64(self.seed)),
            (
                "behaviour".into(),
                Json::from_text(behaviour_name(self.behaviour)),
            ),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|point| {
                            Json::Obj(vec![
                                ("fraction".into(), Json::from_f64(point.fraction)),
                                ("cases".into(), Json::from_u32(point.cases)),
                                ("converged".into(), Json::from_u32(point.converged)),
                                (
                                    "convergence_probability".into(),
                                    Json::from_f64(point.convergence_probability),
                                ),
                                ("mean_tampered".into(), Json::from_f64(point.mean_tampered)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let mut text = doc.pretty();
        text.push('\n');
        text
    }
}

/// Runs the degradation sweep: `cases_per_point` cluster cases at each
/// of `fractions`, all members of the Byzantine block running
/// `behaviour`. Case indices are disjoint across points, so every case
/// draws a distinct scenario.
pub fn degradation_sweep(
    config: &FuzzConfig,
    behaviour: ByzantineBehaviour,
    fractions: &[f64],
    cases_per_point: u32,
) -> Result<SweepReport, ConfigError> {
    let config = config.clone().validate()?;
    if cases_per_point == 0 {
        return Err(ConfigError::NoCases);
    }
    for &fraction in fractions {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(ConfigError::ByzantineFraction { value: fraction });
        }
    }
    let mut points = Vec::with_capacity(fractions.len());
    for (point_idx, &fraction) in fractions.iter().enumerate() {
        let mut converged = 0u32;
        let mut tampered_total = 0u64;
        let mut case_idx = 0u32;
        while case_idx < cases_per_point {
            let index = point_idx as u32 * cases_per_point + case_idx;
            let mut spec = CaseSpec::generate(&config, index);
            spec.path = ExecPath::Cluster;
            spec.subset_k = SWEEP_SUBSET_K;
            spec.byzantine_fraction = fraction;
            spec.byzantine_behaviour = behaviour;
            // A case that cannot run counts as non-converged.
            if let Ok(outcome) = spec.run() {
                tampered_total += outcome.tampered;
                if outcome.divergence.is_none() {
                    converged += 1;
                }
            }
            case_idx += 1;
        }
        points.push(SweepPoint {
            fraction,
            cases: cases_per_point,
            converged,
            convergence_probability: f64::from(converged) / f64::from(cases_per_point),
            mean_tampered: tampered_total as f64 / f64::from(cases_per_point),
        });
    }
    Ok(SweepReport {
        seed: config.seed,
        behaviour,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fraction_point_always_converges_and_never_tampers() {
        let config = FuzzConfig {
            max_population: 16,
            max_rounds: 100,
            ..FuzzConfig::default()
        };
        let report = degradation_sweep(&config, ByzantineBehaviour::DigestLie, &[0.0], 4)
            .expect("valid sweep");
        let point = &report.points[0];
        assert_eq!(point.converged, point.cases);
        assert_eq!(point.convergence_probability, 1.0);
        assert_eq!(point.mean_tampered, 0.0);
    }

    #[test]
    fn byzantine_members_actually_tamper() {
        let config = FuzzConfig {
            max_population: 20,
            max_rounds: 80,
            ..FuzzConfig::default()
        };
        let report = degradation_sweep(&config, ByzantineBehaviour::CorruptFrames, &[0.3], 3)
            .expect("valid sweep");
        assert!(
            report.points[0].mean_tampered > 0.0,
            "a 30% CorruptFrames block must tamper with some sends"
        );
    }

    #[test]
    fn bad_fraction_and_zero_block_are_rejected() {
        let config = FuzzConfig::default();
        assert!(degradation_sweep(&config, ByzantineBehaviour::Mixed, &[1.5], 2).is_err());
        assert!(degradation_sweep(&config, ByzantineBehaviour::Mixed, &[0.1], 0).is_err());
    }

    #[test]
    fn sweep_artefact_carries_schema_and_curve() {
        let config = FuzzConfig {
            max_population: 12,
            max_rounds: 60,
            ..FuzzConfig::default()
        };
        let report = degradation_sweep(&config, ByzantineBehaviour::StaleReplay, &[0.0, 0.25], 2)
            .expect("valid sweep");
        let doc = crate::json::parse(&report.to_json()).expect("artefact parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SWEEP_SCHEMA));
        assert_eq!(
            doc.get("behaviour").and_then(Json::as_str),
            Some("stale-replay")
        );
        let curve = doc.get("points").and_then(Json::as_array).expect("points");
        assert_eq!(curve.len(), 2);
        assert!(curve[0].get("convergence_probability").is_some());
    }
}
