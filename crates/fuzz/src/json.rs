//! Minimal hand-rolled JSON value for fuzz artefacts and repro records.
//!
//! The fuzzer's replay guarantee is *bit-for-bit*: serializing a record,
//! parsing it back and serializing again must produce the identical byte
//! string. A `f64`-backed number type cannot promise that for the 64-bit
//! master seeds the records carry, so [`Json::Num`] stores the numeric
//! *literal text* and emits it verbatim; callers parse it to `u64`/`f64`
//! on demand. Object members keep insertion order for the same reason.

use std::fmt::Write as _;

/// An insertion-ordered JSON value with text-preserving numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number stored as its literal text, emitted verbatim.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from a `u64`, stored exactly.
    pub fn from_u64(value: u64) -> Json {
        Json::Num(value.to_string())
    }

    /// A number from a `u32`.
    pub fn from_u32(value: u32) -> Json {
        Json::Num(value.to_string())
    }

    /// A number from a `usize`.
    pub fn from_usize(value: usize) -> Json {
        Json::Num(value.to_string())
    }

    /// A number from an `f64`, via Rust's shortest round-tripping
    /// `Display` form (so re-parsing yields the identical bits).
    pub fn from_f64(value: f64) -> Json {
        Json::Num(format!("{value}"))
    }

    /// A string value.
    pub fn from_text(value: &str) -> Json {
        Json::Str(value.to_owned())
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The literal text if this is a number.
    pub fn num_text(&self) -> Option<&str> {
        match self {
            Json::Num(text) => Some(text),
            _ => None,
        }
    }

    /// Parses the number literal as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.num_text()?.parse().ok()
    }

    /// Parses the number literal as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.num_text()?.parse().ok()
    }

    /// Parses the number literal as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.num_text()?.parse().ok()
    }

    /// Parses the number literal as `u128`.
    pub fn as_u128(&self) -> Option<u128> {
        self.num_text()?.parse().ok()
    }

    /// Parses the number literal as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        self.num_text()?.parse().ok()
    }

    /// The string if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (no trailing newline).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(text) => out.push_str(text),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}");
                    item.write(out, indent + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}");
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and message.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let literal = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    if literal.is_empty() || literal.parse::<f64>().is_err() {
        return Err(format!("invalid number `{literal}` at byte {start}"));
    }
    Ok(Json::Num(literal.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_seed_survives_a_round_trip_bit_for_bit() {
        // Larger than 2^53: a f64-backed number type would corrupt it.
        let seed = 18_446_744_073_709_551_557u64;
        let doc = Json::Obj(vec![("seed".into(), Json::from_u64(seed))]);
        let text = doc.pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back.get("seed").and_then(Json::as_u64), Some(seed));
        assert_eq!(back.pretty(), text, "emit∘parse must be the identity");
    }

    #[test]
    fn f64_display_form_round_trips_exactly() {
        let values = [0.1, 1.0 / 3.0, 0.7284915615252623, 1e-9, 0.0];
        for &v in &values {
            let text = Json::from_f64(v).pretty();
            let back: f64 = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} drifted");
        }
    }

    #[test]
    fn object_order_and_escapes_are_preserved() {
        let doc = Json::Obj(vec![
            ("z".into(), Json::from_text("line\nbreak \"quoted\"")),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = doc.pretty();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
        assert_eq!(parse(&text).expect("parses"), doc);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"open",
            "{} garbage",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
