//! Flooding analysis under Poisson availability (§5.6).
//!
//! §5.6 compares the push phase against "simple flooding (like in
//! Gnutella) and variants": the expected number of attempts needed to
//! locate online replicas when availability follows a Poisson process,
//! the geometric-growth message total of pure flooding, and the
//! fanout-per-online-peer cost of flooding with duplicate avoidance.

/// Poisson probability mass `P(N = k)` for mean `lambda`.
///
/// Computed in log space to stay finite for large means.
///
/// # Examples
///
/// ```
/// use rumor_analysis::poisson_pmf;
/// let p0 = poisson_pmf(2.0, 0);
/// assert!((p0 - (-2.0f64).exp()).abs() < 1e-12);
/// ```
pub fn poisson_pmf(lambda: f64, k: u32) -> f64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    (kf * lambda.ln() - lambda - ln_factorial(k)).exp()
}

fn ln_factorial(k: u32) -> f64 {
    (1..=k).map(|i| (i as f64).ln()).sum()
}

/// Expected number of online peers reached by `attempts` uniformly random
/// probes when `m` of `r` replicas are online: `m · attempts / r` (§5.6).
pub fn expected_online_reached(m: f64, attempts: f64, r: f64) -> f64 {
    assert!(r > 0.0, "population must be positive");
    (m * attempts / r).min(m)
}

/// Expected number of probe attempts required to reach `targets` online
/// replicas when each replica is online independently with probability
/// `p_on` (availability Poisson with mean `p_on · r`).
///
/// Conditioning on the online count `m`, reaching `targets` online
/// replicas takes `targets · r / m` attempts in expectation; the result
/// marginalises over the Poisson distribution of `m` (zero-online
/// outcomes are excluded and the mass renormalised).
pub fn expected_attempts_poisson(targets: f64, r: f64, p_on: f64) -> f64 {
    assert!(r > 0.0, "population must be positive");
    assert!((0.0..=1.0).contains(&p_on), "p_on must be a probability");
    if p_on == 0.0 {
        return f64::INFINITY;
    }
    let lambda = p_on * r;
    // Sum over a window of ±8 standard deviations around the mean.
    let sd = lambda.sqrt();
    let lo = ((lambda - 8.0 * sd).floor().max(1.0)) as u32;
    let hi = ((lambda + 8.0 * sd).ceil().min(r)) as u32;
    let mut weighted = 0.0;
    let mut mass = 0.0;
    for m in lo..=hi {
        let p = poisson_pmf(lambda, m);
        weighted += p * (targets * r / m as f64);
        mass += p;
    }
    if mass <= f64::EPSILON {
        // Degenerate window (tiny lambda): fall back to the naive form.
        targets / p_on
    } else {
        weighted / mass
    }
}

/// Total messages of *pure* flooding: the paper's geometric sum
/// `1 + (R·f_r) + (R·f_r)² + … + (R·f_r)^T` with
/// `T = ⌈ln(R_on) / ln(R·f_r)⌉` rounds to cover the online population
/// (§5.6). Sub-critical fanouts (≤ 1) never cover the population and
/// return infinity.
pub fn pure_flooding_messages(r: f64, f_r: f64, online: f64) -> f64 {
    assert!(r > 0.0 && online > 0.0, "populations must be positive");
    let fanout = r * f_r;
    if fanout <= 1.0 {
        return f64::INFINITY;
    }
    let rounds = (online.ln() / fanout.ln()).ceil().max(1.0) as u32;
    let mut total = 0.0;
    let mut term = 1.0;
    for _ in 0..=rounds {
        total += term;
        term *= fanout;
    }
    total
}

/// Messages per online peer for Gnutella-style flooding *with* duplicate
/// avoidance: every informed online peer forwards exactly once to its
/// fanout, so the cost is the fanout itself (§5.6: "there will be on an
/// average `[fanout]` messages per online peer").
pub fn gnutella_messages_per_online_peer(r: f64, f_r: f64) -> f64 {
    assert!(r > 0.0, "population must be positive");
    r * f_r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let lambda = 5.0;
        let total: f64 = (0..100).map(|k| poisson_pmf(lambda, k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn pmf_mode_near_mean() {
        let lambda = 20.0;
        let p19 = poisson_pmf(lambda, 19);
        let p20 = poisson_pmf(lambda, 20);
        let p35 = poisson_pmf(lambda, 35);
        assert!(p20 >= p35);
        assert!((p19 - p20).abs() / p20 < 0.06, "pmf flat near the mean");
    }

    #[test]
    fn pmf_handles_large_lambda() {
        let p = poisson_pmf(10_000.0, 10_000);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn reached_scales_linearly_then_saturates() {
        assert_eq!(expected_online_reached(100.0, 50.0, 1_000.0), 5.0);
        assert_eq!(expected_online_reached(100.0, 1e9, 1_000.0), 100.0);
    }

    #[test]
    fn attempts_poisson_close_to_naive_for_large_populations() {
        // With many replicas the Poisson concentrates: E ≈ targets / p_on.
        let e = expected_attempts_poisson(10.0, 10_000.0, 0.1);
        let naive = 10.0 / 0.1;
        assert!((e - naive).abs() / naive < 0.05, "got {e}, naive {naive}");
    }

    #[test]
    fn attempts_poisson_infinite_when_nobody_online() {
        assert!(expected_attempts_poisson(1.0, 100.0, 0.0).is_infinite());
    }

    #[test]
    fn attempts_poisson_more_than_naive_for_small_populations() {
        // Jensen: E[1/m] > 1/E[m], so small populations cost extra.
        let e = expected_attempts_poisson(1.0, 50.0, 0.1);
        assert!(e >= 1.0 / 0.1 * 0.9, "sanity: {e}");
    }

    #[test]
    fn pure_flooding_geometric_sum_matches_closed_form() {
        // Fanout 4, 10^4 online: T = ceil(log_4 10^4) = 7,
        // sum_{i=0..7} 4^i = (4^8 - 1) / 3.
        let pure = pure_flooding_messages(10_000.0, 0.0004, 10_000.0);
        assert!((pure - (4f64.powi(8) - 1.0) / 3.0).abs() < 1e-6, "{pure}");
        // Enough messages to cover the target population.
        assert!(pure >= 10_000.0);
    }

    #[test]
    fn pure_flooding_subcritical_never_covers() {
        assert!(pure_flooding_messages(10_000.0, 0.00005, 1_000.0).is_infinite());
    }

    #[test]
    fn pure_flooding_monotone_in_online_population() {
        let small = pure_flooding_messages(10_000.0, 0.0004, 100.0);
        let large = pure_flooding_messages(10_000.0, 0.0004, 10_000.0);
        assert!(small < large);
    }

    #[test]
    fn gnutella_cost_is_fanout() {
        assert_eq!(gnutella_messages_per_online_peer(10_000.0, 0.0004), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn pmf_rejects_negative_lambda() {
        let _ = poisson_pmf(-1.0, 0);
    }
}
