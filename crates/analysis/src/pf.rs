//! Deterministic `PF(t)` schedules used by the analytical model.
//!
//! These mirror `rumor_core::ForwardPolicy`'s deterministic variants (the
//! self-tuning policy depends on runtime signals and is evaluated by
//! simulation, not by the closed-form model).

use serde::{Deserialize, Serialize};

/// A deterministic forwarding-probability schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PfSchedule {
    /// `PF(t) = 1` — plain constrained flooding.
    One,
    /// `PF(t) = p`.
    Constant(f64),
    /// `PF(t) = max(0, 1 − rate·t)`.
    Linear {
        /// Per-round decrement.
        rate: f64,
    },
    /// `PF(t) = base^t`.
    Exponential {
        /// Decay base.
        base: f64,
    },
    /// `PF(t) = scale·base^t + offset` (Fig. 5).
    OffsetExponential {
        /// Multiplier of the decaying term.
        scale: f64,
        /// Decay base.
        base: f64,
        /// Asymptote.
        offset: f64,
    },
    /// Haas et al. GOSSIP1(p, k): 1 for `t < k`, then `p`.
    FloodThenGossip {
        /// Post-flood probability.
        p: f64,
        /// Flooding prefix length.
        k: u32,
    },
}

impl PfSchedule {
    /// Evaluates the schedule at round `t`, clamped to `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_analysis::PfSchedule;
    /// assert_eq!(PfSchedule::One.value(9), 1.0);
    /// assert!((PfSchedule::Exponential { base: 0.9 }.value(2) - 0.81).abs() < 1e-12);
    /// ```
    pub fn value(&self, t: u32) -> f64 {
        let tf = t as f64;
        let p = match *self {
            Self::One => 1.0,
            Self::Constant(p) => p,
            Self::Linear { rate } => 1.0 - rate * tf,
            Self::Exponential { base } => base.powf(tf),
            Self::OffsetExponential {
                scale,
                base,
                offset,
            } => scale * base.powf(tf) + offset,
            Self::FloodThenGossip { p, k } => {
                if t < k {
                    1.0
                } else {
                    p
                }
            }
        };
        p.clamp(0.0, 1.0)
    }

    /// A short human-readable label for plots and tables.
    pub fn label(&self) -> String {
        match *self {
            Self::One => "PF=1".to_owned(),
            Self::Constant(p) => format!("PF={p}"),
            Self::Linear { rate } => format!("PF(t)=1-{rate}t"),
            Self::Exponential { base } => format!("PF(t)={base}^t"),
            Self::OffsetExponential {
                scale,
                base,
                offset,
            } => format!("PF(t)={scale}*{base}^t+{offset}"),
            Self::FloodThenGossip { p, k } => format!("G({p},{k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_schedules() {
        assert_eq!(PfSchedule::One.value(5), 1.0);
        assert_eq!(PfSchedule::Constant(0.8).value(5), 0.8);
        assert!((PfSchedule::Linear { rate: 0.1 }.value(3) - 0.7).abs() < 1e-12);
        assert_eq!(PfSchedule::Linear { rate: 0.1 }.value(20), 0.0);
        assert!((PfSchedule::Exponential { base: 0.5 }.value(3) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn figure_5_schedule() {
        let pf = PfSchedule::OffsetExponential {
            scale: 0.8,
            base: 0.7,
            offset: 0.2,
        };
        assert!((pf.value(0) - 1.0).abs() < 1e-12);
        assert!(pf.value(30) > 0.2 - 1e-9);
    }

    #[test]
    fn haas_schedule_switches() {
        let pf = PfSchedule::FloodThenGossip { p: 0.8, k: 2 };
        assert_eq!(pf.value(1), 1.0);
        assert_eq!(pf.value(2), 0.8);
    }

    #[test]
    fn values_clamped() {
        assert_eq!(PfSchedule::Constant(1.7).value(0), 1.0);
        assert_eq!(PfSchedule::Constant(-0.5).value(0), 0.0);
    }

    #[test]
    fn labels_are_distinct_and_nonempty() {
        let labels: Vec<String> = [
            PfSchedule::One,
            PfSchedule::Constant(0.8),
            PfSchedule::Linear { rate: 0.1 },
            PfSchedule::Exponential { base: 0.9 },
            PfSchedule::FloodThenGossip { p: 0.8, k: 2 },
        ]
        .iter()
        .map(PfSchedule::label)
        .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }
}
