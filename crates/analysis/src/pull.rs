//! Pull-phase probability model (§4.3).

/// Probability that a replica obtains the update within `attempts` pull
/// attempts, when `f_aware` of the `r_on` online replicas (out of `r`
/// total) hold it:
///
/// `1 − (1 − R_on · f_aware / R)^k` (§4.3).
///
/// Each attempt contacts a uniformly random replica, which helps only if
/// it is online *and* aware.
///
/// # Examples
///
/// ```
/// use rumor_analysis::pull_success_probability;
/// // 10% online, all aware: one attempt succeeds 10% of the time.
/// let p1 = pull_success_probability(1_000.0, 10_000.0, 1.0, 1);
/// assert!((p1 - 0.1).abs() < 1e-12);
/// // "a constant number of pull attempts should give the update with
/// // high probability" — 65 attempts ≈ 99.9%.
/// let p65 = pull_success_probability(1_000.0, 10_000.0, 1.0, 65);
/// assert!(p65 > 0.998);
/// ```
///
/// # Panics
///
/// Panics if `r` is not positive or the populations are inconsistent.
pub fn pull_success_probability(r_on: f64, r: f64, f_aware: f64, attempts: u32) -> f64 {
    assert!(r > 0.0, "total population must be positive");
    assert!((0.0..=r).contains(&r_on), "0 <= R_on <= R required");
    let hit = (r_on * f_aware.clamp(0.0, 1.0) / r).clamp(0.0, 1.0);
    1.0 - (1.0 - hit).powi(attempts as i32)
}

/// Number of pull attempts needed to reach `confidence` success
/// probability given a single-attempt hit probability `p_single`.
///
/// Returns `None` when `p_single` is zero (no number of attempts helps).
///
/// # Examples
///
/// ```
/// use rumor_analysis::attempts_for_confidence;
/// // 10% hit rate, 99.9% confidence: the paper's "about 65 attempts".
/// assert_eq!(attempts_for_confidence(0.1, 0.999), Some(66));
/// ```
pub fn attempts_for_confidence(p_single: f64, confidence: f64) -> Option<u32> {
    let p = p_single.clamp(0.0, 1.0);
    let c = confidence.clamp(0.0, 1.0);
    if p == 0.0 {
        return None;
    }
    if p >= 1.0 || c == 0.0 {
        return Some(1);
    }
    Some(((1.0 - c).ln() / (1.0 - p).ln()).ceil().max(1.0) as u32)
}

/// Probability that a replica online *during* the push receives a push in
/// the current round (§4.3's "worst case" refinement): `pushers` peers
/// each address an `f_r` fraction, diluted by the partial-list factor
/// `(1 − l)`:
///
/// `1 − (1 − f_r · (1 − l))^pushers`.
pub fn push_reach_probability(pushers: f64, f_r: f64, list_len: f64) -> f64 {
    let per = (f_r.clamp(0.0, 1.0) * (1.0 - list_len.clamp(0.0, 1.0))).clamp(0.0, 1.0);
    1.0 - (1.0 - per).powf(pushers.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_awareness_never_succeeds() {
        assert_eq!(pull_success_probability(1000.0, 10_000.0, 0.0, 100), 0.0);
    }

    #[test]
    fn probability_increases_with_attempts() {
        let mut prev = 0.0;
        for k in 1..50 {
            let p = pull_success_probability(1000.0, 10_000.0, 0.5, k);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn full_availability_and_awareness_single_attempt() {
        assert!((pull_success_probability(100.0, 100.0, 1.0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn papers_sixty_five_attempts_intuition() {
        // §2: "a serial search will need about 65 attempts" for 99.9%
        // success at 10% availability.
        let attempts = attempts_for_confidence(0.1, 0.999).unwrap();
        assert!((60..=70).contains(&attempts), "got {attempts}");
    }

    #[test]
    fn attempts_edge_cases() {
        assert_eq!(attempts_for_confidence(0.0, 0.9), None);
        assert_eq!(attempts_for_confidence(1.0, 0.9), Some(1));
        assert_eq!(attempts_for_confidence(0.5, 0.0), Some(1));
    }

    #[test]
    fn push_reach_zero_pushers_is_zero() {
        assert_eq!(push_reach_probability(0.0, 0.01, 0.0), 0.0);
    }

    #[test]
    fn push_reach_monotone_in_pushers() {
        let a = push_reach_probability(10.0, 0.01, 0.0);
        let b = push_reach_probability(100.0, 0.01, 0.0);
        assert!(b > a);
    }

    #[test]
    fn longer_list_dilutes_push_reach() {
        let fresh = push_reach_probability(50.0, 0.01, 0.0);
        let late = push_reach_probability(50.0, 0.01, 0.9);
        assert!(late < fresh);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_population() {
        let _ = pull_success_probability(0.0, 0.0, 1.0, 1);
    }
}
