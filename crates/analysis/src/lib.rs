//! The paper's analytical model of the push phase, §4–§5, reimplemented.
//!
//! "For the evaluation of the recursive analytical functions a C-program
//! has been developed" (§5) — this crate is that program, in Rust, plus
//! the pull-phase probability model (§4.3) and the flooding analysis of
//! §5.6. Every figure and table of the paper is generated from these
//! recursions by the `rumor-bench` harness; the discrete simulator in
//! `rumor-sim` validates them independently.
//!
//! # The recursion (§4.2)
//!
//! With `R` replicas, initial online population `R_on(0)`, per-round
//! stay-online probability `σ`, fanout fraction `f_r` and forwarding
//! probability `PF(t)`:
//!
//! ```text
//! R_on(t)      = R_on(0) · σ^t
//! pushers(t)   = new_aware(t−1) · σ · PF(t)
//! M(t)         = pushers(t) · R · f_r · (1 − l'(t−1))      (partial list)
//!              = pushers(t) · R · f_r                      (no list)
//! new_aware(t) = R_on(t) · (1 − f_aware(t)) · (1 − (1−f_r)^pushers(t))
//! l(t)         = 1 − (1−f_r)^(t+1)   truncated at L_thr if configured
//! L_M(t)       = |U| + R · δ · l(t)
//! ```
//!
//! # Examples
//!
//! ```
//! use rumor_analysis::{PfSchedule, PushModel, PushParams};
//!
//! // Fig. 2 setting: R = 10^4, R_on(0) = 1000, σ = 0.9, PF = 1.
//! let params = PushParams::new(10_000.0, 1_000.0, 0.9, 0.01)
//!     .with_pf(PfSchedule::One);
//! let outcome = PushModel::new(params).run();
//! assert!(outcome.final_awareness > 0.99, "rumor reaches the online population");
//! assert!(outcome.messages_per_initial_online() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comparison;
mod flooding;
mod pf;
mod pull;
mod push;

pub use comparison::{compare_schemes, Scheme, SchemeResult};
pub use flooding::{
    expected_attempts_poisson, expected_online_reached, gnutella_messages_per_online_peer,
    poisson_pmf, pure_flooding_messages,
};
pub use pf::PfSchedule;
pub use pull::{attempts_for_confidence, pull_success_probability, push_reach_probability};
pub use push::{PushModel, PushOutcome, PushParams, RoundRow};
