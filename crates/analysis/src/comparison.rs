//! The Table 2 scheme comparison.
//!
//! §5.6 compares, at fixed fanout, (a) Gnutella-style flooding with
//! duplicate avoidance, (b) the same plus the partial flooding list,
//! (c) Haas et al.'s GOSSIP1(p, k), and (d) "our scheme" with a decaying
//! `PF(t)` — reporting total messages per initially-online peer and push
//! rounds. All four reduce to parameterisations of the §4.2 recursion
//! (that genericity is the point of the paper's model).

use crate::pf::PfSchedule;
use crate::push::{PushModel, PushOutcome, PushParams};
use serde::{Deserialize, Serialize};

/// A dissemination scheme expressible in the push model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Flooding with duplicate avoidance, no partial list, `PF = 1`.
    Gnutella,
    /// Flooding with the partial flooding list, `PF = 1`.
    PartialList,
    /// GOSSIP1(p, k): flood `k` rounds then forward with probability `p`
    /// (no partial list — Haas et al. do not use one).
    Haas {
        /// Post-flood forwarding probability.
        p: f64,
        /// Flooding prefix rounds.
        k: u32,
    },
    /// The paper's scheme: partial list plus a decaying `PF(t)`.
    Ours {
        /// The `PF(t)` schedule.
        pf: PfSchedule,
    },
}

impl Scheme {
    /// The descriptive name used in Table 2.
    pub fn name(&self) -> String {
        match self {
            Self::Gnutella => "Gnutella".to_owned(),
            Self::PartialList => "Using Partial List".to_owned(),
            Self::Haas { p, k } => format!("Haas et al.'s G({p},{k})"),
            Self::Ours { pf } => format!("Our Scheme, {}", pf.label()),
        }
    }

    /// Instantiates the §4.2 model for this scheme.
    pub fn params(&self, total: f64, online: f64, sigma: f64, f_r: f64) -> PushParams {
        let base = PushParams::new(total, online, sigma, f_r);
        match *self {
            Self::Gnutella => base.without_partial_list(),
            Self::PartialList => base,
            Self::Haas { p, k } => base
                .without_partial_list()
                .with_pf(PfSchedule::FloodThenGossip { p, k }),
            Self::Ours { pf } => base.with_pf(pf),
        }
    }
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeResult {
    /// Scheme name.
    pub scheme: String,
    /// Total messages per initially-online peer.
    pub messages_per_online: f64,
    /// Push rounds until termination.
    pub rounds: u32,
    /// Final awareness achieved.
    pub final_awareness: f64,
    /// Full model output for further inspection.
    pub outcome: PushOutcome,
}

/// Runs all schemes under identical environmental parameters.
///
/// # Examples
///
/// ```
/// use rumor_analysis::{compare_schemes, PfSchedule, Scheme};
///
/// // Table 2, setting B: R_on/R = 10³/10⁴, fanout R·f_r = 40.
/// let rows = compare_schemes(
///     &[Scheme::Gnutella, Scheme::Ours { pf: PfSchedule::Exponential { base: 0.9 } }],
///     10_000.0, 1_000.0, 1.0, 0.004,
/// );
/// assert!(rows[1].messages_per_online < rows[0].messages_per_online,
///         "our scheme beats Gnutella");
/// ```
pub fn compare_schemes(
    schemes: &[Scheme],
    total: f64,
    online: f64,
    sigma: f64,
    f_r: f64,
) -> Vec<SchemeResult> {
    schemes
        .iter()
        .map(|s| {
            let outcome = PushModel::new(s.params(total, online, sigma, f_r)).run();
            // §5.6: with duplicate avoidance "the total number of messages
            // created per update will be exactly the average fanout
            // multiplied by number of peers online" — the paper's Gnutella
            // row is that closed form; latency still comes from the
            // recursion.
            let messages_per_online = match s {
                Scheme::Gnutella => total * f_r,
                _ => outcome.messages_per_initial_online(),
            };
            SchemeResult {
                scheme: s.name(),
                messages_per_online,
                rounds: outcome.rounds,
                final_awareness: outcome.final_awareness,
                outcome,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's "Our Scheme" PF decay base is illegible in the source
    // scan; 0.95 (setting A) and 0.9 (setting B) best match the printed
    // numbers (DESIGN.md §3).
    fn table2_schemes(base: f64) -> Vec<Scheme> {
        vec![
            Scheme::Gnutella,
            Scheme::PartialList,
            Scheme::Haas { p: 0.8, k: 2 },
            Scheme::Ours {
                pf: PfSchedule::Exponential { base },
            },
        ]
    }

    #[test]
    fn setting_a_ordering_matches_table_2() {
        // R_on/R = 10^4/10^4, σ = 1, fanout R·f_r = 4.
        let rows = compare_schemes(&table2_schemes(0.95), 10_000.0, 10_000.0, 1.0, 0.0004);
        let m: Vec<f64> = rows.iter().map(|r| r.messages_per_online).collect();
        assert!(m[0] > m[1], "partial list beats Gnutella: {m:?}");
        assert!(m[1] > m[2], "Haas beats partial list: {m:?}");
        assert!(m[2] > m[3], "our scheme beats Haas: {m:?}");
        // Everyone informs (nearly all of) the fully online population;
        // the exact-expectation recursion leaves an asymptotic tail the
        // paper's ceiling-capped evaluation snaps to 1.
        let awareness: Vec<f64> = rows.iter().map(|r| r.final_awareness).collect();
        assert!(awareness.iter().all(|&a| a > 0.9), "{awareness:?}");
        // Our scheme pays at most a couple of extra rounds.
        assert!(rows[3].rounds >= rows[0].rounds);
        assert!(rows[3].rounds <= rows[0].rounds + 3);
    }

    #[test]
    fn setting_a_absolute_values_near_paper() {
        let rows = compare_schemes(&table2_schemes(0.95), 10_000.0, 10_000.0, 1.0, 0.0004);
        // Paper: Gnutella 4, partial list 3.92, Haas 3.136, ours 2.215.
        assert!(
            (rows[0].messages_per_online - 4.0).abs() < 1e-9,
            "{}",
            rows[0].messages_per_online
        );
        assert!(
            (rows[1].messages_per_online - 3.92).abs() < 0.15,
            "{}",
            rows[1].messages_per_online
        );
        assert!(
            (rows[2].messages_per_online - 3.136).abs() < 0.4,
            "{}",
            rows[2].messages_per_online
        );
        assert!(
            (rows[3].messages_per_online - 2.215).abs() < 0.7,
            "{}",
            rows[3].messages_per_online
        );
    }

    #[test]
    fn setting_b_ordering_matches_table_2() {
        // R_on/R = 10^3/10^4, σ = 1, per-pusher messages R·f_r = 40
        // (expected effective fanout 4).
        let rows = compare_schemes(&table2_schemes(0.9), 10_000.0, 1_000.0, 1.0, 0.004);
        let m: Vec<f64> = rows.iter().map(|r| r.messages_per_online).collect();
        assert!(m[0] > m[1] && m[1] > m[2] && m[2] > m[3], "{m:?}");
        // Paper: 40, 35.22, 28.49, 16.35.
        assert!((m[0] - 40.0).abs() < 1e-9, "{m:?}");
        assert!((m[1] - 35.22).abs() < 4.0, "{m:?}");
        assert!((m[2] - 28.49).abs() < 4.0, "{m:?}");
        assert!((m[3] - 16.35).abs() / 16.35 < 0.40, "{m:?}");
    }

    #[test]
    fn names_are_table_like() {
        assert_eq!(Scheme::Gnutella.name(), "Gnutella");
        assert!(Scheme::Haas { p: 0.8, k: 2 }.name().contains("G(0.8,2)"));
        assert!(Scheme::Ours {
            pf: PfSchedule::Exponential { base: 0.9 }
        }
        .name()
        .contains("0.9^t"));
    }
}
