//! The push-phase recursion of §4.2.

use crate::pf::PfSchedule;
use serde::{Deserialize, Serialize};

/// Parameters of a push-phase evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PushParams {
    /// Total replicas `R`.
    pub total_replicas: f64,
    /// Initially online replicas `R_on(0)`.
    pub online_initial: f64,
    /// Per-round stay-online probability `σ`.
    pub sigma: f64,
    /// Fanout fraction `f_r`.
    pub f_r: f64,
    /// Forwarding probability schedule `PF(t)`.
    pub pf: PfSchedule,
    /// Whether pushes carry the partial flooding list.
    pub partial_list: bool,
    /// Normalised list bound `L_thr` (§4.2); `None` = unbounded.
    pub list_threshold: Option<f64>,
    /// Update payload size `|U|` in bytes (message-length model).
    pub update_size: f64,
    /// Bytes per replica entry `δ` (message-length model).
    pub delta: f64,
    /// Hard cap on evaluated rounds.
    pub max_rounds: u32,
    /// Awareness fraction at which the push is declared complete.
    pub awareness_target: f64,
    /// Expected new-aware count below which the rumor is declared dead.
    pub min_new_aware: f64,
    /// Awareness below which a terminated push counts as *died* (Fig. 1(a)
    /// regime) rather than saturated-with-a-tail.
    pub died_threshold: f64,
}

impl PushParams {
    /// Creates parameters with the paper's defaults: partial list on,
    /// `PF = 1`, no truncation, 64-byte updates, 4-byte replica entries,
    /// completion at 99.99% awareness.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < online_initial ≤ total_replicas`,
    /// `0 < f_r ≤ 1` and `0 ≤ sigma ≤ 1` — the model's equations are
    /// meaningless outside those ranges.
    pub fn new(total_replicas: f64, online_initial: f64, sigma: f64, f_r: f64) -> Self {
        assert!(
            total_replicas >= 1.0 && online_initial > 0.0 && online_initial <= total_replicas,
            "population must satisfy 0 < R_on(0) <= R"
        );
        assert!(f_r > 0.0 && f_r <= 1.0, "f_r must be in (0, 1]");
        assert!((0.0..=1.0).contains(&sigma), "sigma must be in [0, 1]");
        Self {
            total_replicas,
            online_initial,
            sigma,
            f_r,
            pf: PfSchedule::One,
            partial_list: true,
            list_threshold: None,
            update_size: 64.0,
            delta: 4.0,
            max_rounds: 200,
            awareness_target: 0.9999,
            min_new_aware: 0.5,
            died_threshold: 0.9,
        }
    }

    /// Sets the `PF(t)` schedule.
    #[must_use]
    pub fn with_pf(mut self, pf: PfSchedule) -> Self {
        self.pf = pf;
        self
    }

    /// Disables the partial flooding list (Gnutella-style accounting).
    #[must_use]
    pub fn without_partial_list(mut self) -> Self {
        self.partial_list = false;
        self
    }

    /// Bounds the normalised list length at `l_thr` (§4.2).
    #[must_use]
    pub fn with_list_threshold(mut self, l_thr: f64) -> Self {
        self.list_threshold = Some(l_thr.clamp(0.0, 1.0));
        self
    }
}

/// One row of the model output — one push round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRow {
    /// Round number `t`.
    pub t: u32,
    /// Online population `R_on(t)`.
    pub online: f64,
    /// Replicas that decided to push this round.
    pub pushers: f64,
    /// Messages sent this round, `M(t)` (includes offline targets).
    pub messages: f64,
    /// Cumulative messages through this round.
    pub cum_messages: f64,
    /// New online replicas informed this round.
    pub new_aware: f64,
    /// Aware fraction of the online population *after* this round.
    pub f_aware: f64,
    /// Normalised partial-list length carried by this round's messages.
    pub list_len: f64,
    /// Message length `L_M(t)` in bytes.
    pub message_bytes: f64,
}

/// Result of evaluating the push model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PushOutcome {
    /// Per-round rows, starting at `t = 0`.
    pub rows: Vec<RoundRow>,
    /// Total messages over all rounds.
    pub total_messages: f64,
    /// Number of rounds in which messages were sent.
    pub rounds: u32,
    /// Final aware fraction of the online population.
    pub final_awareness: f64,
    /// `true` when the rumor terminated below `died_threshold` awareness
    /// (the Fig. 1(a) too-few-peers regime).
    pub died: bool,
    /// The parameters that produced this outcome.
    pub params: PushParams,
}

impl PushOutcome {
    /// The paper's headline metric: total messages normalised by the
    /// initial online population (`y` axis of Figs. 1–5).
    pub fn messages_per_initial_online(&self) -> f64 {
        self.total_messages / self.params.online_initial
    }

    /// `(f_aware, cumulative messages / R_on(0))` pairs — the exact series
    /// plotted in the paper's figures.
    pub fn awareness_cost_series(&self) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .map(|r| (r.f_aware, r.cum_messages / self.params.online_initial))
            .collect()
    }
}

/// Evaluator for the §4.2 recursion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PushModel {
    params: PushParams,
}

impl PushModel {
    /// Wraps validated parameters.
    pub fn new(params: PushParams) -> Self {
        Self { params }
    }

    /// Runs the recursion to termination.
    ///
    /// Termination (§4.2's ceiling handling plus practical cut-offs):
    /// awareness reaches `awareness_target`, the expected number of newly
    /// informed replicas falls below `min_new_aware` (rumor died or
    /// saturated), or `max_rounds` elapses.
    pub fn run(&self) -> PushOutcome {
        let p = self.params;
        let r = p.total_replicas;
        let mut rows = Vec::new();

        // The normalised list length actually carried in round-t messages;
        // truncation clamps it (§4.2).
        let clamp_list = |l: f64| p.list_threshold.map_or(l, |thr| l.min(thr));

        // Round 0: the initiator pushes to f_r·R replicas.
        let m0 = r * p.f_r;
        let mut online = p.online_initial;
        let mut new_aware = online * p.f_r;
        let mut f_aware = p.f_r.min(1.0);
        let mut list_len = clamp_list(if p.partial_list { p.f_r } else { 0.0 });
        let mut cum = m0;
        rows.push(RoundRow {
            t: 0,
            online,
            pushers: 1.0,
            messages: m0,
            cum_messages: cum,
            new_aware,
            f_aware,
            list_len,
            message_bytes: p.update_size + r * p.delta * list_len,
        });

        let mut t = 1u32;
        loop {
            if f_aware >= p.awareness_target {
                break;
            }
            if t > p.max_rounds {
                break;
            }
            // Churn between rounds.
            online *= p.sigma;
            if online < 1.0 {
                break;
            }

            let pf = p.pf.value(t);
            let pushers = new_aware * p.sigma * pf;
            if pushers <= f64::EPSILON {
                break;
            }

            // Messages: each pusher addresses R·f_r targets minus the ones
            // its (possibly truncated) list of round t−1 already covers.
            let suppression = if p.partial_list { 1.0 - list_len } else { 1.0 };
            let messages = pushers * r * p.f_r * suppression;

            // Outgoing list of this round: l(t) = l'(t−1) + f_r(1−l'(t−1)).
            if p.partial_list {
                list_len = clamp_list(list_len + p.f_r * (1.0 - list_len));
            }

            // Newly informed online replicas.
            let uninformed = online * (1.0 - f_aware);
            new_aware = uninformed * (1.0 - (1.0 - p.f_r).powf(pushers));
            // Ceiling handling: awareness cannot exceed 1.
            if new_aware > uninformed {
                new_aware = uninformed;
            }
            f_aware = ((f_aware * online + new_aware) / online).min(1.0);

            cum += messages;
            rows.push(RoundRow {
                t,
                online,
                pushers,
                messages,
                cum_messages: cum,
                new_aware,
                f_aware,
                list_len,
                message_bytes: p.update_size + r * p.delta * list_len,
            });

            if new_aware < p.min_new_aware {
                break;
            }
            t += 1;
        }

        let died = f_aware < p.died_threshold;
        PushOutcome {
            rounds: rows.len() as u32,
            total_messages: cum,
            final_awareness: f_aware,
            died,
            rows,
            params: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(params: PushParams) -> PushOutcome {
        PushModel::new(params).run()
    }

    #[test]
    fn round_zero_matches_closed_form() {
        let p = PushParams::new(10_000.0, 1_000.0, 0.9, 0.01);
        let out = run(p);
        let r0 = out.rows[0];
        assert_eq!(r0.messages, 100.0, "M(0) = R·f_r");
        assert_eq!(r0.new_aware, 10.0, "R_on(0)·f_r");
        assert!((r0.f_aware - 0.01).abs() < 1e-12);
        assert!((r0.list_len - 0.01).abs() < 1e-12);
        assert!((r0.message_bytes - (64.0 + 10_000.0 * 4.0 * 0.01)).abs() < 1e-9);
    }

    #[test]
    fn round_one_matches_paper_formula() {
        // M(1) = R_on(0)·f_r·σ·PF(1)·R·f_r·(1−f_r).
        let p = PushParams::new(10_000.0, 1_000.0, 0.9, 0.01);
        let out = run(p);
        let expected = 1_000.0 * 0.01 * 0.9 * 1.0 * 10_000.0 * 0.01 * 0.99;
        assert!(
            (out.rows[1].messages - expected).abs() < 1e-9,
            "got {}, want {expected}",
            out.rows[1].messages
        );
    }

    #[test]
    fn list_length_follows_induction() {
        // l(t) = 1 − (1−f_r)^(t+1) — the induction proved in §4.2.
        let p = PushParams::new(10_000.0, 10_000.0, 1.0, 0.01);
        let out = run(p);
        for row in &out.rows {
            let closed = 1.0 - (1.0 - 0.01f64).powi(row.t as i32 + 1);
            assert!(
                (row.list_len - closed).abs() < 1e-9,
                "t={} got {} want {closed}",
                row.t,
                row.list_len
            );
        }
    }

    #[test]
    fn awareness_is_monotone_and_bounded() {
        let p = PushParams::new(10_000.0, 1_000.0, 0.9, 0.01);
        let out = run(p);
        let mut prev = 0.0;
        for row in &out.rows {
            assert!(row.f_aware >= prev);
            assert!(row.f_aware <= 1.0);
            assert!(row.messages >= 0.0);
            prev = row.f_aware;
        }
    }

    #[test]
    fn healthy_population_reaches_target() {
        let p = PushParams::new(10_000.0, 1_000.0, 0.95, 0.01);
        let out = run(p);
        assert!(!out.died);
        // The exact-expectation recursion has an asymptotic tail: the push
        // informs (nearly) the whole online population, the last sliver is
        // the pull phase's job.
        assert!(out.final_awareness >= 0.95, "got {}", out.final_awareness);
    }

    #[test]
    fn tiny_online_population_dies_out() {
        // Fig. 1(a): 1% online with f_r = 0.01 → effective fanout ≈ 1·σ < 1.
        let p = PushParams::new(10_000.0, 100.0, 0.95, 0.01);
        let out = run(p);
        assert!(
            out.died,
            "rumor must die: awareness {}",
            out.final_awareness
        );
        assert!(out.final_awareness < 0.9);
    }

    #[test]
    fn partial_list_strictly_reduces_messages() {
        let base = PushParams::new(10_000.0, 1_000.0, 0.95, 0.01);
        let with = run(base);
        let without = run(base.without_partial_list());
        assert!(with.total_messages < without.total_messages);
        // Awareness is unaffected by the list (it only trims duplicates).
        assert!((with.final_awareness - without.final_awareness).abs() < 1e-6);
    }

    #[test]
    fn truncated_list_sits_between_none_and_full() {
        let base = PushParams::new(10_000.0, 1_000.0, 1.0, 0.02);
        let full = run(base).total_messages;
        let none = run(base.without_partial_list()).total_messages;
        let trunc = run(base.with_list_threshold(0.05)).total_messages;
        assert!(
            full < trunc,
            "truncation loses suppression: {full} !< {trunc}"
        );
        assert!(
            trunc < none,
            "truncated list still helps: {trunc} !< {none}"
        );
    }

    #[test]
    fn lower_pf_reduces_messages_without_losing_coverage() {
        // Fig. 4's observation.
        let base = PushParams::new(10_000.0, 1_000.0, 0.9, 0.01);
        let always = run(base);
        let decayed = run(base.with_pf(PfSchedule::Exponential { base: 0.9 }));
        assert!(decayed.total_messages < always.total_messages);
        assert!(!decayed.died, "awareness {}", decayed.final_awareness);
        assert!(decayed.rounds >= always.rounds, "latency trade-off");
    }

    #[test]
    fn sigma_one_keeps_population_constant() {
        let p = PushParams::new(1_000.0, 1_000.0, 1.0, 0.01);
        let out = run(p);
        assert!(out.rows.iter().all(|r| (r.online - 1_000.0).abs() < 1e-9));
        assert!(!out.died);
    }

    #[test]
    fn messages_per_initial_online_normalises() {
        let p = PushParams::new(10_000.0, 1_000.0, 0.95, 0.01);
        let out = run(p);
        assert!((out.messages_per_initial_online() - out.total_messages / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn series_is_plottable() {
        let p = PushParams::new(10_000.0, 1_000.0, 0.95, 0.01);
        let out = run(p);
        let series = out.awareness_cost_series();
        assert_eq!(series.len(), out.rows.len());
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0), "x monotone");
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1), "y monotone");
    }

    #[test]
    #[should_panic(expected = "f_r")]
    fn rejects_bad_fanout() {
        let _ = PushParams::new(100.0, 10.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_online_exceeding_total() {
        let _ = PushParams::new(100.0, 200.0, 1.0, 0.1);
    }
}
