//! Link-level fault models: probabilistic loss and partitions.
//!
//! §3: "if two peers may not communicate with each other, they will simply
//! perceive each other to be offline" — so faults compose with churn
//! naturally: a filtered message counts as sent and is lost.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_types::{PeerId, Round};

/// Decides whether a link delivery succeeds.
pub trait LinkFilter {
    /// Returns `true` when a message from `from` to `to` in `round` passes.
    fn allows(&self, from: PeerId, to: PeerId, round: Round, rng: &mut ChaCha8Rng) -> bool;
}

/// No link faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectLinks;

impl LinkFilter for PerfectLinks {
    fn allows(&self, _from: PeerId, _to: PeerId, _round: Round, _rng: &mut ChaCha8Rng) -> bool {
        true
    }
}

/// Drops each message independently with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliLoss {
    p: f64,
}

impl BernoulliLoss {
    /// Creates a loss model; `p` is clamped to `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Self {
            p: p.clamp(0.0, 1.0),
        }
    }

    /// The drop probability.
    pub const fn probability(&self) -> f64 {
        self.p
    }
}

impl LinkFilter for BernoulliLoss {
    fn allows(&self, _from: PeerId, _to: PeerId, _round: Round, rng: &mut ChaCha8Rng) -> bool {
        self.p == 0.0 || !rng.gen_bool(self.p)
    }
}

/// Splits the population into groups; cross-group messages are dropped
/// while the partition is active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    group_of: Vec<u8>,
    from_round: Round,
    until_round: Round,
}

impl Partition {
    /// Creates a partition from a per-peer group assignment, active during
    /// `[from_round, until_round)`.
    ///
    /// Peers beyond `group_of.len()` are treated as group 0.
    pub fn new(group_of: Vec<u8>, from_round: Round, until_round: Round) -> Self {
        Self {
            group_of,
            from_round,
            until_round,
        }
    }

    /// Convenience: splits peers `0..n` into two halves for the given
    /// round window.
    pub fn halves(n: usize, from_round: Round, until_round: Round) -> Self {
        let group_of = (0..n).map(|i| u8::from(i >= n / 2)).collect();
        Self::new(group_of, from_round, until_round)
    }

    fn group(&self, p: PeerId) -> u8 {
        self.group_of.get(p.index()).copied().unwrap_or(0)
    }

    /// Whether the partition is active in `round`.
    pub fn active(&self, round: Round) -> bool {
        round >= self.from_round && round < self.until_round
    }
}

impl LinkFilter for Partition {
    fn allows(&self, from: PeerId, to: PeerId, round: Round, _rng: &mut ChaCha8Rng) -> bool {
        !self.active(round) || self.group(from) == self.group(to)
    }
}

/// Two composed filters: the message passes only if both layers allow
/// it, consulted left to right (so put the filter that consumes no
/// randomness first when ordering matters for replay).
impl<A: LinkFilter, B: LinkFilter> LinkFilter for (A, B) {
    fn allows(&self, from: PeerId, to: PeerId, round: Round, rng: &mut ChaCha8Rng) -> bool {
        self.0.allows(from, to, round, rng) && self.1.allows(from, to, round, rng)
    }
}

/// A stack of filters: a message passes only if every layer allows it.
impl<F: LinkFilter> LinkFilter for Vec<F> {
    fn allows(&self, from: PeerId, to: PeerId, round: Round, rng: &mut ChaCha8Rng) -> bool {
        self.iter().all(|f| f.allows(from, to, round, rng))
    }
}

impl<F: LinkFilter + ?Sized> LinkFilter for Box<F> {
    fn allows(&self, from: PeerId, to: PeerId, round: Round, rng: &mut ChaCha8Rng) -> bool {
        (**self).allows(from, to, round, rng)
    }
}

impl<F: LinkFilter + ?Sized> LinkFilter for &F {
    fn allows(&self, from: PeerId, to: PeerId, round: Round, rng: &mut ChaCha8Rng) -> bool {
        (**self).allows(from, to, round, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(6)
    }

    #[test]
    fn perfect_links_allow_everything() {
        let f = PerfectLinks;
        assert!(f.allows(PeerId::new(0), PeerId::new(1), Round::ZERO, &mut rng()));
    }

    #[test]
    fn loss_zero_and_one() {
        let none = BernoulliLoss::new(0.0);
        let all = BernoulliLoss::new(1.0);
        let mut r = rng();
        assert!(none.allows(PeerId::new(0), PeerId::new(1), Round::ZERO, &mut r));
        assert!(!all.allows(PeerId::new(0), PeerId::new(1), Round::ZERO, &mut r));
    }

    #[test]
    fn loss_probability_is_clamped() {
        assert_eq!(BernoulliLoss::new(3.0).probability(), 1.0);
        assert_eq!(BernoulliLoss::new(-3.0).probability(), 0.0);
    }

    #[test]
    fn loss_rate_statistics() {
        let f = BernoulliLoss::new(0.3);
        let mut r = rng();
        let n = 20_000;
        let passed = (0..n)
            .filter(|_| f.allows(PeerId::new(0), PeerId::new(1), Round::ZERO, &mut r))
            .count();
        let rate = passed as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.02, "pass rate {rate}");
    }

    #[test]
    fn partition_blocks_cross_group_during_window() {
        let p = Partition::halves(4, Round::new(1), Round::new(3));
        let mut r = rng();
        let (a, b) = (PeerId::new(0), PeerId::new(3));
        assert!(p.allows(a, b, Round::new(0), &mut r), "before window");
        assert!(!p.allows(a, b, Round::new(1), &mut r), "inside window");
        assert!(!p.allows(a, b, Round::new(2), &mut r), "inside window");
        assert!(p.allows(a, b, Round::new(3), &mut r), "after window");
        // Same-group traffic is never blocked.
        assert!(p.allows(a, PeerId::new(1), Round::new(1), &mut r));
    }

    #[test]
    fn partition_unknown_peers_default_to_group_zero() {
        let p = Partition::new(vec![0, 1], Round::ZERO, Round::new(10));
        let mut r = rng();
        assert!(p.allows(PeerId::new(0), PeerId::new(99), Round::ZERO, &mut r));
        assert!(!p.allows(PeerId::new(1), PeerId::new(99), Round::ZERO, &mut r));
    }

    #[test]
    fn filter_stack_composes() {
        let stack = vec![BernoulliLoss::new(0.0), BernoulliLoss::new(1.0)];
        assert!(!stack.allows(PeerId::new(0), PeerId::new(1), Round::ZERO, &mut rng()));
    }

    #[test]
    fn filter_pair_composes_heterogeneous_layers() {
        let pair = (
            Partition::halves(4, Round::ZERO, Round::new(5)),
            BernoulliLoss::new(0.0),
        );
        let mut r = rng();
        assert!(!pair.allows(PeerId::new(0), PeerId::new(3), Round::ZERO, &mut r));
        assert!(pair.allows(PeerId::new(0), PeerId::new(1), Round::ZERO, &mut r));
    }

    #[test]
    fn boxed_and_borrowed_filters_delegate() {
        let boxed: Box<dyn LinkFilter> = Box::new(BernoulliLoss::new(1.0));
        assert!(!boxed.allows(PeerId::new(0), PeerId::new(1), Round::ZERO, &mut rng()));
        let by_ref = &PerfectLinks;
        assert!(LinkFilter::allows(
            &by_ref,
            PeerId::new(0),
            PeerId::new(1),
            Round::ZERO,
            &mut rng()
        ));
    }
}
