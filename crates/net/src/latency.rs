//! Message latency models for the event-driven engine.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How long a message spends in flight, in ticks.
///
/// # Examples
///
/// ```
/// use rumor_net::LatencyModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
/// let l = LatencyModel::Uniform { lo: 5, hi: 15 };
/// let d = l.sample(&mut rng);
/// assert!((5..=15).contains(&d));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks`.
    Constant {
        /// Fixed delay.
        ticks: u64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay (inclusive).
        hi: u64,
    },
    /// Exponential with the given mean, shifted by `min` (long tail — the
    /// regime where push rounds of different ages coexist in the network).
    Exponential {
        /// Floor added to every sample.
        min: u64,
        /// Mean of the exponential part.
        mean: f64,
    },
}

impl LatencyModel {
    /// Samples one in-flight delay; always at least 1 tick so that a
    /// message can never be delivered in the instant it was sent.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        let raw = match *self {
            Self::Constant { ticks } => ticks,
            Self::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            Self::Exponential { min, mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                min + (-mean * u.ln()).round() as u64
            }
        };
        raw.max(1)
    }

    /// The mean delay of the model.
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Constant { ticks } => ticks.max(1) as f64,
            Self::Uniform { lo, hi } => ((lo + hi) as f64 / 2.0).max(1.0),
            Self::Exponential { min, mean } => min as f64 + mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(4)
    }

    #[test]
    fn constant_is_constant() {
        let l = LatencyModel::Constant { ticks: 7 };
        let mut r = rng();
        assert!((0..100).all(|_| l.sample(&mut r) == 7));
    }

    #[test]
    fn zero_constant_clamps_to_one() {
        let l = LatencyModel::Constant { ticks: 0 };
        assert_eq!(l.sample(&mut rng()), 1);
    }

    #[test]
    fn uniform_within_bounds() {
        let l = LatencyModel::Uniform { lo: 3, hi: 9 };
        let mut r = rng();
        for _ in 0..1000 {
            let d = l.sample(&mut r);
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn degenerate_uniform() {
        let l = LatencyModel::Uniform { lo: 5, hi: 5 };
        assert_eq!(l.sample(&mut rng()), 5);
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let l = LatencyModel::Exponential { min: 2, mean: 10.0 };
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| l.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 12.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn model_means() {
        assert_eq!(LatencyModel::Constant { ticks: 4 }.mean(), 4.0);
        assert_eq!(LatencyModel::Uniform { lo: 2, hi: 4 }.mean(), 3.0);
        assert_eq!(LatencyModel::Exponential { min: 1, mean: 2.0 }.mean(), 3.0);
    }
}
