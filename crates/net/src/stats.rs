//! Engine-level message accounting.

use rumor_metrics::RoundSeries;
use serde::{Deserialize, Serialize};

/// Message counts kept by the engines.
///
/// The paper's cost metric counts every message *sent*, "including
/// messages to offline replicas" (§4.2); `sent` is therefore the number to
/// normalise by `R_on[0]` when reproducing the figures. The split into
/// delivered / lost-to-offline / lost-to-fault is extra observability the
/// paper's analysis folds into a single number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Messages handed to the engine (the paper's message count).
    pub sent: u64,
    /// Encoded wire bytes of the messages in `sent`, as sized by the
    /// engine's message sizer (zero when none is installed — e.g. for
    /// toy message types without a wire format). One frame per message:
    /// header plus payload, per `rumor-wire`.
    pub bytes_sent: u64,
    /// Messages delivered to an online peer.
    pub delivered: u64,
    /// Messages addressed to a peer that was offline at delivery time.
    pub lost_offline: u64,
    /// Messages dropped by a link fault (loss model or partition).
    pub lost_fault: u64,
    per_round_sent: RoundSeries,
}

impl EngineStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self {
            sent: 0,
            bytes_sent: 0,
            delivered: 0,
            lost_offline: 0,
            lost_fault: 0,
            per_round_sent: RoundSeries::new("messages sent"),
        }
    }

    pub(crate) fn record_sent(&mut self, n: u64) {
        self.sent += n;
    }

    pub(crate) fn record_bytes(&mut self, n: u64) {
        self.bytes_sent += n;
    }

    /// Mean encoded bytes per sent message (0 when nothing was sent or
    /// no sizer is installed).
    pub fn mean_message_bytes(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.sent as f64
        }
    }

    pub(crate) fn close_round(&mut self, round: u32, sent_this_round: u64) {
        self.per_round_sent.record(round, sent_this_round as f64);
    }

    /// Per-round sent-message series (one point per completed round).
    pub fn per_round_sent(&self) -> &RoundSeries {
        &self.per_round_sent
    }

    /// Messages that reached nobody (offline target or link fault).
    pub fn wasted(&self) -> u64 {
        self.lost_offline + self.lost_fault
    }
}

impl Default for EngineStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_sums() {
        let mut s = EngineStats::new();
        s.record_sent(10);
        s.delivered = 4;
        s.lost_offline = 5;
        s.lost_fault = 1;
        assert_eq!(s.sent, 10);
        assert_eq!(s.wasted(), 6);
    }

    #[test]
    fn byte_accounting_and_mean() {
        let mut s = EngineStats::new();
        assert_eq!(s.mean_message_bytes(), 0.0, "no sends, no mean");
        s.record_sent(4);
        s.record_bytes(100);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.mean_message_bytes(), 25.0);
    }

    #[test]
    fn per_round_series_records() {
        let mut s = EngineStats::new();
        s.close_round(0, 3);
        s.close_round(1, 7);
        assert_eq!(s.per_round_sent().points().len(), 2);
        assert_eq!(s.per_round_sent().total(), 10.0);
    }
}
