//! Logical-network substrate: engines that drive protocol nodes.
//!
//! The paper separates the update algorithm from physical connectivity:
//! "the algorithm deals with logical connectivity (knowledge), and is
//! disentangled from the underlying network/physical connectivity" (§1),
//! and its analysis uses "a synchronous model which is a standard model
//! for analysing epidemic algorithms" (§3). Accordingly this crate offers
//! two engines over the same [`Node`] abstraction:
//!
//! * [`SyncEngine`] — lock-step push rounds: a message sent in round `t`
//!   is delivered at the start of round `t+1`; messages addressed to
//!   offline peers are lost (and still counted, as in the paper's
//!   overhead metric).
//! * [`EventEngine`] — a deterministic discrete-event engine with latency
//!   and loss models, demonstrating that rounds "need not be synchronous"
//!   (§4.1): messages of different rounds may coexist in flight.
//!
//! [`topology`] builds the *knowledge graph* — which replicas each peer
//! initially knows — *full* or *partial* (random subset), per §2's
//! assumption that "each replica knows a minimal fraction of the complete
//! set of replicas".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event_engine;
mod latency;
mod link;
mod node;
mod sink;
mod stats;
mod sync_engine;
pub mod topology;

pub use event_engine::{EventEngine, EventEngineConfig};
pub use latency::LatencyModel;
pub use link::{BernoulliLoss, LinkFilter, Partition, PerfectLinks};
pub use node::{Effect, Node};
pub use sink::EffectSink;
pub use stats::EngineStats;
pub use sync_engine::SyncEngine;
