//! The reusable effect buffer node callbacks write into.
//!
//! Returning a fresh `Vec<Effect>` from every callback put one heap
//! allocation (often several, counting growth) on the hot path of every
//! delivered message — at engine scale the harness spent a measurable
//! share of its time in the allocator instead of the protocol. An
//! [`EffectSink`] is the replacement: the engine owns one scratch sink,
//! hands `&mut` to each callback, drains it into its queues, and the
//! backing buffer's capacity is reused for the next callback. Steady-state
//! rounds allocate nothing.

use crate::node::Effect;
use rumor_types::PeerId;

/// A reusable buffer of [`Effect`]s produced by one node callback.
///
/// Engines drain it after every callback, so within a callback the sink
/// only ever holds this invocation's effects; `len()` before/after a
/// helper call is the idiom for "did that helper emit anything".
///
/// Dereferences to `[Effect<M>]` for inspection in tests and tools.
///
/// # Examples
///
/// ```
/// use rumor_net::{Effect, EffectSink};
/// use rumor_types::PeerId;
///
/// let mut sink: EffectSink<u32> = EffectSink::new();
/// sink.send(PeerId::new(1), 9);
/// sink.timer(3, 7);
/// assert_eq!(sink.len(), 2);
/// assert_eq!(sink[0], Effect::send(PeerId::new(1), 9));
/// let drained: Vec<_> = sink.drain().collect();
/// assert_eq!(drained.len(), 2);
/// assert!(sink.is_empty(), "drain leaves the buffer (capacity) behind");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSink<M> {
    effects: Vec<Effect<M>>,
}

impl<M> EffectSink<M> {
    /// Creates an empty sink.
    pub const fn new() -> Self {
        Self {
            effects: Vec::new(),
        }
    }

    /// Creates a sink with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            effects: Vec::with_capacity(capacity),
        }
    }

    /// Queues a send of `msg` to `to`.
    pub fn send(&mut self, to: PeerId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Queues a timer request firing after `delay` engine time units.
    pub fn timer(&mut self, delay: u64, tag: u64) {
        self.effects.push(Effect::Timer { delay, tag });
    }

    /// Queues an already-built effect.
    pub fn push(&mut self, effect: Effect<M>) {
        self.effects.push(effect);
    }

    /// Number of queued effects.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// Whether no effect is queued.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// The queued effects, in emission order.
    pub fn as_slice(&self) -> &[Effect<M>] {
        &self.effects
    }

    /// Removes all queued effects, keeping the allocation.
    pub fn clear(&mut self) {
        self.effects.clear();
    }

    /// Drains the queued effects in emission order, keeping the
    /// allocation for reuse.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Effect<M>> {
        self.effects.drain(..)
    }
}

impl<M> Default for EffectSink<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> std::ops::Deref for EffectSink<M> {
    type Target = [Effect<M>];
    fn deref(&self) -> &[Effect<M>] {
        &self.effects
    }
}

impl<M> Extend<Effect<M>> for EffectSink<M> {
    fn extend<I: IntoIterator<Item = Effect<M>>>(&mut self, iter: I) {
        self.effects.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_timer_queue_in_order() {
        let mut sink: EffectSink<u8> = EffectSink::new();
        sink.send(PeerId::new(2), 5);
        sink.timer(1, 9);
        sink.push(Effect::send(PeerId::new(3), 6));
        assert_eq!(sink.len(), 3);
        assert!(matches!(sink[0], Effect::Send { .. }));
        assert!(matches!(sink[1], Effect::Timer { delay: 1, tag: 9 }));
        assert!(matches!(sink[2], Effect::Send { .. }));
    }

    #[test]
    fn drain_preserves_capacity() {
        let mut sink: EffectSink<u8> = EffectSink::with_capacity(8);
        for i in 0..8 {
            sink.send(PeerId::new(0), i);
        }
        let drained: Vec<_> = sink.drain().collect();
        assert_eq!(drained.len(), 8);
        assert!(sink.is_empty());
        assert!(sink.effects.capacity() >= 8, "allocation retained");
    }

    #[test]
    fn extend_and_clear() {
        let mut sink: EffectSink<u8> = EffectSink::default();
        sink.extend([
            Effect::send(PeerId::new(1), 1),
            Effect::send(PeerId::new(2), 2),
        ]);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.iter().count(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }
}
