//! The synchronous round engine — the paper's analysis model, executable.
//!
//! One push round = one network delay (§4.1): a message sent during round
//! `t` is delivered at the start of round `t+1`. Messages to peers that
//! are offline at delivery time are lost (the pull phase exists precisely
//! to repair this) but still count toward the overhead metric.

use crate::link::LinkFilter;
use crate::node::{Effect, Node};
use crate::stats::EngineStats;
use rand_chacha::ChaCha8Rng;
use rumor_churn::OnlineSet;
use rumor_types::{PeerId, Round};

/// In-flight message: `(from, payload)`.
type Inbox<M> = Vec<(PeerId, M)>;

/// Deterministic lock-step engine over a population of [`Node`]s.
///
/// # Examples
///
/// ```
/// use rumor_net::{Effect, Node, PerfectLinks, SyncEngine};
/// use rumor_churn::OnlineSet;
/// use rumor_types::{PeerId, Round};
/// use rand::SeedableRng;
///
/// struct Relay { id: PeerId }
/// impl Node for Relay {
///     type Msg = u8;
///     fn id(&self) -> PeerId { self.id }
///     fn on_message(&mut self, _f: PeerId, m: u8, _r: Round,
///                   _rng: &mut rand_chacha::ChaCha8Rng) -> Vec<Effect<u8>> {
///         if m > 0 { vec![Effect::send(PeerId::new(0), m - 1)] } else { vec![] }
///     }
/// }
///
/// let mut nodes = vec![Relay { id: PeerId::new(0) }, Relay { id: PeerId::new(1) }];
/// let online = OnlineSet::all_online(2);
/// let mut engine = SyncEngine::new(2);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// engine.inject(PeerId::new(1), vec![Effect::send(PeerId::new(0), 3)]);
/// while !engine.is_quiescent() {
///     engine.step(&mut nodes, &online, &PerfectLinks, &mut rng);
/// }
/// assert_eq!(engine.stats().sent, 4); // 3, 2, 1, 0
/// ```
#[derive(Debug)]
pub struct SyncEngine<M> {
    current: Vec<Inbox<M>>,
    next: Vec<Inbox<M>>,
    timers: Vec<(Round, PeerId, u64)>,
    round: Round,
    prev_online: Option<Vec<bool>>,
    stats: EngineStats,
    sent_this_round: u64,
}

impl<M: Clone> SyncEngine<M> {
    /// Creates an engine for a population of `n` peers.
    pub fn new(n: usize) -> Self {
        Self {
            current: (0..n).map(|_| Vec::new()).collect(),
            next: (0..n).map(|_| Vec::new()).collect(),
            timers: Vec::new(),
            round: Round::ZERO,
            prev_online: None,
            stats: EngineStats::new(),
            sent_this_round: 0,
        }
    }

    /// The round the *next* [`SyncEngine::step`] call will execute.
    pub const fn round(&self) -> Round {
        self.round
    }

    /// Message accounting so far.
    pub const fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of messages queued for delivery in the next round.
    pub fn in_flight(&self) -> usize {
        self.current.iter().map(Vec::len).sum::<usize>()
            + self.next.iter().map(Vec::len).sum::<usize>()
    }

    /// True when no message is in flight and no timer is pending:
    /// stepping further can only trigger `on_round_start` work.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight() == 0 && self.timers.is_empty()
    }

    /// Queues effects produced outside the engine (e.g. the update
    /// initiator's round-0 push, paper §4.2 "Round 0"). Sends are
    /// delivered during the *next* [`SyncEngine::step`] call.
    pub fn inject(&mut self, from: PeerId, effects: Vec<Effect<M>>) {
        self.apply_effects(from, effects, true);
    }

    fn apply_effects(&mut self, from: PeerId, effects: Vec<Effect<M>>, into_current: bool) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    self.stats.record_sent(1);
                    self.sent_this_round += 1;
                    if into_current {
                        self.current[to.index()].push((from, msg));
                    } else {
                        self.next[to.index()].push((from, msg));
                    }
                }
                Effect::Timer { delay, tag } => {
                    self.timers.push((self.round + delay as u32, from, tag));
                }
            }
        }
    }

    /// Executes one full round:
    ///
    /// 1. availability transitions (`on_status_change`),
    /// 2. `on_round_start` for online peers,
    /// 3. due timers (for online peers; timers owned by offline peers are
    ///    dropped — an offline replica does no protocol work),
    /// 4. delivery of last round's messages through the link `filter`,
    /// 5. queueing of all produced sends for the next round.
    pub fn step<N, F>(
        &mut self,
        nodes: &mut [N],
        online: &OnlineSet,
        filter: &F,
        rng: &mut ChaCha8Rng,
    ) where
        N: Node<Msg = M>,
        F: LinkFilter,
    {
        assert_eq!(nodes.len(), self.current.len(), "population size mismatch");
        let round = self.round;

        // 1. Status changes relative to the previous observation.
        match &self.prev_online {
            None => {
                self.prev_online = Some(
                    (0..online.len())
                        .map(|i| online.is_online(PeerId::new(i as u32)))
                        .collect(),
                );
            }
            Some(prev) => {
                let mut transitions = Vec::new();
                for (i, node) in nodes.iter_mut().enumerate() {
                    let peer = PeerId::new(i as u32);
                    let now_online = online.is_online(peer);
                    if prev[i] != now_online {
                        transitions.push((peer, node.on_status_change(now_online, round, rng)));
                    }
                }
                for (peer, effects) in transitions {
                    self.apply_effects(peer, effects, false);
                }
                self.prev_online = Some(
                    (0..online.len())
                        .map(|i| online.is_online(PeerId::new(i as u32)))
                        .collect(),
                );
            }
        }

        // 2. Round start for online peers.
        let mut round_start_effects = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let peer = PeerId::new(i as u32);
            if online.is_online(peer) {
                round_start_effects.push((peer, node.on_round_start(round, rng)));
            }
        }
        for (peer, effects) in round_start_effects {
            self.apply_effects(peer, effects, false);
        }

        // 3. Due timers, in scheduling order.
        let mut due = Vec::new();
        self.timers.retain(|&(fire, peer, tag)| {
            if fire <= round {
                due.push((peer, tag));
                false
            } else {
                true
            }
        });
        for (peer, tag) in due {
            if online.is_online(peer) {
                let effects = nodes[peer.index()].on_timer(tag, round, rng);
                self.apply_effects(peer, effects, false);
            }
        }

        // 4. Deliver the current inboxes.
        let inboxes = std::mem::take(&mut self.current);
        for (i, inbox) in inboxes.into_iter().enumerate() {
            let to = PeerId::new(i as u32);
            for (from, msg) in inbox {
                if !online.is_online(to) {
                    self.stats.lost_offline += 1;
                    continue;
                }
                if !filter.allows(from, to, round, rng) {
                    self.stats.lost_fault += 1;
                    continue;
                }
                self.stats.delivered += 1;
                let effects = nodes[i].on_message(from, msg, round, rng);
                self.apply_effects(to, effects, false);
            }
        }
        self.current = (0..nodes.len()).map(|_| Vec::new()).collect();

        // 5. Promote next-round queue and close the round.
        std::mem::swap(&mut self.current, &mut self.next);
        self.stats.close_round(round.as_u32(), self.sent_this_round);
        self.sent_this_round = 0;
        self.round = round.next();
    }

    /// Runs until quiescent or `max_rounds` is hit; returns rounds run.
    pub fn run_to_quiescence<N, F>(
        &mut self,
        nodes: &mut [N],
        online: &OnlineSet,
        filter: &F,
        rng: &mut ChaCha8Rng,
        max_rounds: u32,
    ) -> u32
    where
        N: Node<Msg = M>,
        F: LinkFilter,
    {
        let start = self.round;
        while !self.is_quiescent() && self.round - start < max_rounds {
            self.step(nodes, online, filter, rng);
        }
        self.round - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{BernoulliLoss, PerfectLinks};
    use rand::SeedableRng;
    use rumor_types::Round;

    /// Counts deliveries; forwards each message once to a fixed target.
    struct Forwarder {
        id: PeerId,
        to: Option<PeerId>,
        received: u32,
        status_changes: Vec<bool>,
        timer_fired: Vec<u64>,
    }

    impl Forwarder {
        fn new(id: u32, to: Option<u32>) -> Self {
            Self {
                id: PeerId::new(id),
                to: to.map(PeerId::new),
                received: 0,
                status_changes: Vec::new(),
                timer_fired: Vec::new(),
            }
        }
    }

    impl Node for Forwarder {
        type Msg = u32;
        fn id(&self) -> PeerId {
            self.id
        }
        fn on_message(
            &mut self,
            _from: PeerId,
            msg: u32,
            _round: Round,
            _rng: &mut ChaCha8Rng,
        ) -> Vec<Effect<u32>> {
            self.received += 1;
            self.to.map(|t| Effect::send(t, msg)).into_iter().collect()
        }
        fn on_status_change(
            &mut self,
            online: bool,
            _round: Round,
            _rng: &mut ChaCha8Rng,
        ) -> Vec<Effect<u32>> {
            self.status_changes.push(online);
            Vec::new()
        }
        fn on_timer(&mut self, tag: u64, _round: Round, _rng: &mut ChaCha8Rng) -> Vec<Effect<u32>> {
            self.timer_fired.push(tag);
            Vec::new()
        }
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(8)
    }

    #[test]
    fn message_takes_one_round() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        assert_eq!(nodes[1].received, 0);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[1].received, 1, "delivered at start of next round");
        assert_eq!(engine.stats().sent, 1);
        assert_eq!(engine.stats().delivered, 1);
    }

    #[test]
    fn chain_forwarding_costs_one_round_per_hop() {
        // 0 -> 1 -> 2: two hops, two rounds after injection.
        let mut nodes = vec![
            Forwarder::new(0, None),
            Forwarder::new(1, Some(2)),
            Forwarder::new(2, None),
        ];
        let online = OnlineSet::all_online(3);
        let mut engine = SyncEngine::new(3);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 9)]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[2].received, 0);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[2].received, 1);
        assert!(engine.is_quiescent());
    }

    #[test]
    fn offline_target_loses_message_but_counts_send() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let online = OnlineSet::with_online_count(2, 1); // peer 1 offline
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[1].received, 0);
        assert_eq!(
            engine.stats().sent,
            1,
            "paper counts sends to offline peers"
        );
        assert_eq!(engine.stats().lost_offline, 1);
    }

    #[test]
    fn link_loss_is_counted_separately() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        engine.step(&mut nodes, &online, &BernoulliLoss::new(1.0), &mut rng());
        assert_eq!(engine.stats().lost_fault, 1);
        assert_eq!(nodes[1].received, 0);
    }

    #[test]
    fn status_changes_fire_once_per_transition() {
        let mut nodes = vec![Forwarder::new(0, None)];
        let mut online = OnlineSet::all_online(1);
        let mut engine = SyncEngine::new(1);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert!(
            nodes[0].status_changes.is_empty(),
            "initial state is not a transition"
        );
        online.set_online(PeerId::new(0), false);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        online.set_online(PeerId::new(0), true);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[0].status_changes, vec![false, true]);
    }

    #[test]
    fn timers_fire_for_online_peers_only() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let mut online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::Timer { delay: 1, tag: 7 }]);
        engine.inject(PeerId::new(1), vec![Effect::Timer { delay: 1, tag: 8 }]);
        online.set_online(PeerId::new(1), false);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng()); // round 0
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng()); // round 1: timers due
        assert_eq!(nodes[0].timer_fired, vec![7]);
        assert!(
            nodes[1].timer_fired.is_empty(),
            "offline peer's timer dropped"
        );
        assert!(engine.is_quiescent());
    }

    #[test]
    fn per_round_series_tracks_rounds() {
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, Some(0))];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 1)]);
        for _ in 0..4 {
            engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        }
        // Ping-pong forever: one send per round.
        assert_eq!(engine.stats().per_round_sent().points().len(), 4);
        assert_eq!(engine.stats().sent, 5); // inject + 4 forwards
    }

    #[test]
    fn run_to_quiescence_respects_cap() {
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, Some(0))];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 1)]);
        let rounds = engine.run_to_quiescence(&mut nodes, &online, &PerfectLinks, &mut rng(), 10);
        assert_eq!(rounds, 10, "ping-pong never quiesces; cap applies");
    }
}
