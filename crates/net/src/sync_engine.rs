//! The synchronous round engine — the paper's analysis model, executable.
//!
//! One push round = one network delay (§4.1): a message sent during round
//! `t` is delivered at the start of round `t+1`. Messages to peers that
//! are offline at delivery time are lost (the pull phase exists precisely
//! to repair this) but still count toward the overhead metric.
//!
//! The engine allocates only at construction: per-peer inboxes are
//! recycled across rounds (drain in place, capacity retained), node
//! callbacks write into one reusable [`EffectSink`], the availability
//! snapshot is updated in place, timers live in a [`BinaryHeap`] keyed by
//! `(round, seq)`, and quiescence is an O(1) counter check.

use crate::link::LinkFilter;
use crate::node::{Effect, Node};
use crate::sink::EffectSink;
use crate::stats::EngineStats;
use rand_chacha::ChaCha8Rng;
use rumor_churn::OnlineSet;
use rumor_obs::{EventKind, MsgKind, NopTracer, Tracer, CONDUCTOR};
use rumor_types::{PeerId, Round};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// In-flight message: `(from, payload)`.
type Inbox<M> = Vec<(PeerId, M)>;

/// A pending timer, ordered by `(fire, seq)` so that the heap pops due
/// timers in exactly the order the historical insertion-ordered scan
/// fired them: all timers due in one round share that round as their
/// effective fire round, and `seq` is monotone in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    fire: Round,
    seq: u64,
    peer: PeerId,
    tag: u64,
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (fire, seq) pops
        // first.
        (other.fire, other.seq).cmp(&(self.fire, self.seq))
    }
}

/// Deterministic lock-step engine over a population of [`Node`]s.
///
/// # Examples
///
/// ```
/// use rumor_net::{Effect, EffectSink, Node, PerfectLinks, SyncEngine};
/// use rumor_churn::OnlineSet;
/// use rumor_types::{PeerId, Round};
/// use rand::SeedableRng;
///
/// struct Relay { id: PeerId }
/// impl Node for Relay {
///     type Msg = u8;
///     fn id(&self) -> PeerId { self.id }
///     fn on_message(&mut self, _f: PeerId, m: u8, _r: Round,
///                   _rng: &mut rand_chacha::ChaCha8Rng, out: &mut EffectSink<u8>) {
///         if m > 0 { out.send(PeerId::new(0), m - 1); }
///     }
/// }
///
/// let mut nodes = vec![Relay { id: PeerId::new(0) }, Relay { id: PeerId::new(1) }];
/// let online = OnlineSet::all_online(2);
/// let mut engine = SyncEngine::new(2);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// engine.inject(PeerId::new(1), vec![Effect::send(PeerId::new(0), 3)]);
/// while !engine.is_quiescent() {
///     engine.step(&mut nodes, &online, &PerfectLinks, &mut rng);
/// }
/// assert_eq!(engine.stats().sent, 4); // 3, 2, 1, 0
/// ```
#[derive(Debug)]
pub struct SyncEngine<M, T = NopTracer> {
    current: Vec<Inbox<M>>,
    next: Vec<Inbox<M>>,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    /// Earliest round a newly queued timer may fire: the next timer scan
    /// that could observe it. Preserves the historical insertion-ordered
    /// Vec-scan semantics exactly (including zero-delay timers queued
    /// after a round's scan, which fire the following round).
    timer_barrier: Round,
    round: Round,
    prev_online: Vec<bool>,
    prev_online_primed: bool,
    stats: EngineStats,
    sent_this_round: u64,
    /// Messages queued for delivery (O(1) quiescence check).
    in_flight: usize,
    /// Optional wire sizer: encoded frame bytes per message, recorded
    /// into [`EngineStats::bytes_sent`] at send time.
    sizer: Option<fn(&M) -> usize>,
    /// Optional message classifier for trace events; consulted only when
    /// the tracer is enabled, never consumes randomness.
    kinder: Option<fn(&M) -> MsgKind>,
    /// Structured-event sink. The default [`NopTracer`] monomorphizes to
    /// nothing — the untraced engine is bit- and cost-identical to the
    /// pre-tracing one.
    tracer: T,
    /// Scratch sink node callbacks write into; drained after each call.
    sink: EffectSink<M>,
    /// Scratch inbox swapped against each peer slot during delivery.
    delivery_scratch: Inbox<M>,
    /// Scratch list of due timers, reused across rounds.
    due_scratch: Vec<(PeerId, u64)>,
}

impl<M: Clone> SyncEngine<M> {
    /// Creates an untraced engine for a population of `n` peers.
    pub fn new(n: usize) -> Self {
        Self::with_tracer(n, NopTracer)
    }
}

impl<M: Clone, T: Tracer> SyncEngine<M, T> {
    /// Creates an engine for a population of `n` peers capturing
    /// structured events into `tracer`.
    pub fn with_tracer(n: usize, tracer: T) -> Self {
        Self {
            current: (0..n).map(|_| Vec::new()).collect(),
            next: (0..n).map(|_| Vec::new()).collect(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            timer_barrier: Round::ZERO,
            round: Round::ZERO,
            prev_online: Vec::with_capacity(n),
            prev_online_primed: false,
            stats: EngineStats::new(),
            sent_this_round: 0,
            in_flight: 0,
            sizer: None,
            kinder: None,
            tracer,
            sink: EffectSink::new(),
            delivery_scratch: Vec::new(),
            due_scratch: Vec::new(),
        }
    }

    /// The mounted tracer.
    pub const fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Mutable access to the mounted tracer (e.g. to drain a
    /// [`rumor_obs::MemTracer`] mid-run).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consumes the engine, returning the tracer with its capture.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// The round the *next* [`SyncEngine::step`] call will execute.
    pub const fn round(&self) -> Round {
        self.round
    }

    /// Message accounting so far.
    pub const fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Installs (or clears) the message sizer: a pure function mapping a
    /// message to its encoded wire-frame size, typically
    /// `rumor_wire::frame_len::<M>`. When set, every send additionally
    /// records its byte count into [`EngineStats::bytes_sent`], so
    /// protocol comparisons can report bandwidth next to message counts.
    /// Sizing consumes no randomness and never alters behaviour.
    pub fn set_msg_sizer(&mut self, sizer: Option<fn(&M) -> usize>) {
        self.sizer = sizer;
    }

    /// Installs (or clears) the trace message classifier: a pure
    /// function mapping a message to its coarse [`MsgKind`] for
    /// send/deliver trace events. Consulted only while the tracer is
    /// enabled; classification consumes no randomness and never alters
    /// behaviour. Without one, traced messages stamp
    /// [`MsgKind::Other`].
    pub fn set_msg_kind(&mut self, kinder: Option<fn(&M) -> MsgKind>) {
        self.kinder = kinder;
    }

    /// Number of messages queued for delivery (maintained incrementally;
    /// O(1)).
    pub const fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when no message is in flight and no timer is pending:
    /// stepping further can only trigger `on_round_start` work. O(1).
    pub fn is_quiescent(&self) -> bool {
        self.in_flight == 0 && self.timers.is_empty()
    }

    /// Queues effects produced outside the engine (e.g. the update
    /// initiator's round-0 push, paper §4.2 "Round 0"). Sends are
    /// delivered during the *next* [`SyncEngine::step`] call. Accepts any
    /// effect iterator — a literal `Vec`, or an
    /// [`EffectSink::drain`](crate::EffectSink::drain).
    pub fn inject(&mut self, from: PeerId, effects: impl IntoIterator<Item = Effect<M>>) {
        for effect in effects {
            self.apply_effect(from, effect, true);
        }
    }

    fn apply_effect(&mut self, from: PeerId, effect: Effect<M>, into_current: bool) {
        match effect {
            Effect::Send { to, msg } => {
                self.stats.record_sent(1);
                let mut frame_bytes = 0u64;
                if let Some(size_of) = self.sizer {
                    frame_bytes = size_of(&msg) as u64;
                    self.stats.record_bytes(frame_bytes);
                }
                if self.tracer.is_enabled() {
                    let kind = self
                        .kinder
                        .map_or(MsgKind::Other, |classify| classify(&msg));
                    self.tracer.record(
                        self.round.as_u32(),
                        from.as_u32(),
                        EventKind::Send {
                            to: to.as_u32(),
                            kind,
                            bytes: frame_bytes.min(u64::from(u32::MAX)) as u32,
                        },
                    );
                }
                self.sent_this_round += 1;
                self.in_flight += 1;
                if into_current {
                    self.current[to.index()].push((from, msg));
                } else {
                    self.next[to.index()].push((from, msg));
                }
            }
            Effect::Timer { delay, tag } => {
                let fire = (self.round + delay as u32).max(self.timer_barrier);
                self.timer_seq += 1;
                self.timers.push(TimerEntry {
                    fire,
                    seq: self.timer_seq,
                    peer: from,
                    tag,
                });
            }
        }
    }

    /// Drains `sink` into the engine queues, attributing every effect to
    /// `from`.
    fn apply_sink(&mut self, from: PeerId, sink: &mut EffectSink<M>, into_current: bool) {
        for effect in sink.drain() {
            self.apply_effect(from, effect, into_current);
        }
    }

    /// Executes one full round:
    ///
    /// 1. availability transitions (`on_status_change`),
    /// 2. `on_round_start` for online peers,
    /// 3. due timers (for online peers; timers owned by offline peers are
    ///    dropped — an offline replica does no protocol work),
    /// 4. delivery of last round's messages through the link `filter`,
    /// 5. queueing of all produced sends for the next round.
    pub fn step<N, F>(
        &mut self,
        nodes: &mut [N],
        online: &OnlineSet,
        filter: &F,
        rng: &mut ChaCha8Rng,
    ) where
        N: Node<Msg = M>,
        F: LinkFilter,
    {
        assert_eq!(nodes.len(), self.current.len(), "population size mismatch");
        let round = self.round;
        if self.tracer.is_enabled() {
            self.tracer
                .record(round.as_u32(), CONDUCTOR, EventKind::RoundStart);
        }
        let mut sink = std::mem::take(&mut self.sink);

        // 1. Status changes relative to the previous observation, with
        //    the snapshot updated in place (no per-round collects).
        if self.prev_online_primed {
            for (i, node) in nodes.iter_mut().enumerate() {
                let peer = PeerId::new(i as u32);
                let now_online = online.is_online(peer);
                if self.prev_online[i] != now_online {
                    self.prev_online[i] = now_online;
                    if self.tracer.is_enabled() {
                        self.tracer.record(
                            round.as_u32(),
                            peer.as_u32(),
                            EventKind::Status { online: now_online },
                        );
                    }
                    node.on_status_change(now_online, round, rng, &mut sink);
                    self.apply_sink(peer, &mut sink, false);
                }
            }
        } else {
            // The initial observation is not a transition.
            self.prev_online.clear();
            self.prev_online
                .extend((0..online.len()).map(|i| online.is_online(PeerId::new(i as u32))));
            self.prev_online_primed = true;
        }

        // 2. Round start for online peers.
        for (i, node) in nodes.iter_mut().enumerate() {
            let peer = PeerId::new(i as u32);
            if online.is_online(peer) {
                node.on_round_start(round, rng, &mut sink);
                self.apply_sink(peer, &mut sink, false);
            }
        }

        // 3. Due timers, in scheduling order. Collect the whole due set
        //    before firing so timers queued by `on_timer` itself wait for
        //    the next round, exactly as under the historical Vec scan.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        while let Some(head) = self.timers.peek() {
            if head.fire > round {
                break;
            }
            let entry = self.timers.pop().expect("peeked");
            due.push((entry.peer, entry.tag));
        }
        self.timer_barrier = round.next();
        for &(peer, tag) in &due {
            if online.is_online(peer) {
                if self.tracer.is_enabled() {
                    self.tracer
                        .record(round.as_u32(), peer.as_u32(), EventKind::TimerFire { tag });
                }
                nodes[peer.index()].on_timer(tag, round, rng, &mut sink);
                self.apply_sink(peer, &mut sink, false);
            }
        }
        self.due_scratch = due;

        // 4. Deliver the current inboxes, draining each in place so its
        //    buffer is reused next round. Indexed loop: the body needs
        //    `&mut self` for `apply_sink` while the slot is swapped out.
        let mut inbox = std::mem::take(&mut self.delivery_scratch);
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.current.len() {
            std::mem::swap(&mut inbox, &mut self.current[i]);
            let to = PeerId::new(i as u32);
            for (from, msg) in inbox.drain(..) {
                self.in_flight -= 1;
                if !online.is_online(to) {
                    self.stats.lost_offline += 1;
                    if self.tracer.is_enabled() {
                        self.tracer.record(
                            round.as_u32(),
                            to.as_u32(),
                            EventKind::DropOffline {
                                from: from.as_u32(),
                            },
                        );
                    }
                    continue;
                }
                if !filter.allows(from, to, round, rng) {
                    self.stats.lost_fault += 1;
                    if self.tracer.is_enabled() {
                        self.tracer.record(
                            round.as_u32(),
                            to.as_u32(),
                            EventKind::DropLoss {
                                from: from.as_u32(),
                            },
                        );
                    }
                    continue;
                }
                self.stats.delivered += 1;
                if self.tracer.is_enabled() {
                    let kind = self
                        .kinder
                        .map_or(MsgKind::Other, |classify| classify(&msg));
                    self.tracer.record(
                        round.as_u32(),
                        to.as_u32(),
                        EventKind::Deliver {
                            from: from.as_u32(),
                            kind,
                        },
                    );
                }
                nodes[i].on_message(from, msg, round, rng, &mut sink);
                self.apply_sink(to, &mut sink, false);
            }
            std::mem::swap(&mut inbox, &mut self.current[i]);
        }
        self.delivery_scratch = inbox;

        // 5. Promote next-round queue and close the round.
        std::mem::swap(&mut self.current, &mut self.next);
        self.stats.close_round(round.as_u32(), self.sent_this_round);
        if self.tracer.is_enabled() {
            self.tracer.record(
                round.as_u32(),
                CONDUCTOR,
                EventKind::RoundEnd {
                    sent: self.sent_this_round,
                },
            );
        }
        self.sent_this_round = 0;
        self.round = round.next();
        self.sink = sink;
    }

    /// Runs until quiescent or `max_rounds` is hit; returns rounds run.
    pub fn run_to_quiescence<N, F>(
        &mut self,
        nodes: &mut [N],
        online: &OnlineSet,
        filter: &F,
        rng: &mut ChaCha8Rng,
        max_rounds: u32,
    ) -> u32
    where
        N: Node<Msg = M>,
        F: LinkFilter,
    {
        let start = self.round;
        while !self.is_quiescent() && self.round - start < max_rounds {
            self.step(nodes, online, filter, rng);
        }
        self.round - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{BernoulliLoss, PerfectLinks};
    use rand::SeedableRng;
    use rumor_types::Round;

    /// Counts deliveries; forwards each message once to a fixed target.
    struct Forwarder {
        id: PeerId,
        to: Option<PeerId>,
        received: Vec<PeerId>,
        status_changes: Vec<bool>,
        timer_fired: Vec<u64>,
        /// Send this on every status change (ordering probes).
        announce_to: Option<PeerId>,
    }

    impl Forwarder {
        fn new(id: u32, to: Option<u32>) -> Self {
            Self {
                id: PeerId::new(id),
                to: to.map(PeerId::new),
                received: Vec::new(),
                status_changes: Vec::new(),
                timer_fired: Vec::new(),
                announce_to: None,
            }
        }
    }

    impl Node for Forwarder {
        type Msg = u32;
        fn id(&self) -> PeerId {
            self.id
        }
        fn on_message(
            &mut self,
            from: PeerId,
            msg: u32,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            out: &mut EffectSink<u32>,
        ) {
            self.received.push(from);
            let _ = msg;
            if let Some(t) = self.to {
                out.send(t, msg);
            }
        }
        fn on_status_change(
            &mut self,
            online: bool,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            out: &mut EffectSink<u32>,
        ) {
            self.status_changes.push(online);
            if let Some(t) = self.announce_to {
                out.send(t, self.id.as_u32());
            }
        }
        fn on_timer(
            &mut self,
            tag: u64,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            _out: &mut EffectSink<u32>,
        ) {
            self.timer_fired.push(tag);
        }
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(8)
    }

    #[test]
    fn message_takes_one_round() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        assert_eq!(nodes[1].received.len(), 0);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(
            nodes[1].received.len(),
            1,
            "delivered at start of next round"
        );
        assert_eq!(engine.stats().sent, 1);
        assert_eq!(engine.stats().delivered, 1);
    }

    #[test]
    fn chain_forwarding_costs_one_round_per_hop() {
        // 0 -> 1 -> 2: two hops, two rounds after injection.
        let mut nodes = vec![
            Forwarder::new(0, None),
            Forwarder::new(1, Some(2)),
            Forwarder::new(2, None),
        ];
        let online = OnlineSet::all_online(3);
        let mut engine = SyncEngine::new(3);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 9)]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[2].received.len(), 0);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[2].received.len(), 1);
        assert!(engine.is_quiescent());
    }

    #[test]
    fn offline_target_loses_message_but_counts_send() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let online = OnlineSet::with_online_count(2, 1); // peer 1 offline
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[1].received.len(), 0);
        assert_eq!(
            engine.stats().sent,
            1,
            "paper counts sends to offline peers"
        );
        assert_eq!(engine.stats().lost_offline, 1);
    }

    #[test]
    fn link_loss_is_counted_separately() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        engine.step(&mut nodes, &online, &BernoulliLoss::new(1.0), &mut rng());
        assert_eq!(engine.stats().lost_fault, 1);
        assert_eq!(nodes[1].received.len(), 0);
    }

    #[test]
    fn status_changes_fire_once_per_transition() {
        let mut nodes = vec![Forwarder::new(0, None)];
        let mut online = OnlineSet::all_online(1);
        let mut engine = SyncEngine::new(1);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert!(
            nodes[0].status_changes.is_empty(),
            "initial state is not a transition"
        );
        online.set_online(PeerId::new(0), false);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        online.set_online(PeerId::new(0), true);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[0].status_changes, vec![false, true]);
    }

    #[test]
    fn status_change_effects_fire_in_node_order() {
        // Regression for the in-place `prev_online` snapshot: several
        // peers transitioning in the same round must observe their
        // callbacks (and the effects those emit) in ascending node order,
        // exactly as the historical collect-then-apply staging did.
        let mut nodes = vec![
            Forwarder::new(0, None),
            Forwarder::new(1, None),
            Forwarder::new(2, None),
        ];
        nodes[1].announce_to = Some(PeerId::new(0));
        nodes[2].announce_to = Some(PeerId::new(0));
        let mut online = OnlineSet::all_online(3);
        let mut engine = SyncEngine::new(3);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        // Flip both (higher index first, to prove ordering comes from the
        // scan, not the mutation order).
        online.set_online(PeerId::new(2), false);
        online.set_online(PeerId::new(1), false);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(
            nodes[0].received,
            vec![PeerId::new(1), PeerId::new(2)],
            "announcements delivered in node order"
        );
        // And the snapshot was updated in place: a quiet follow-up round
        // reports no further transitions.
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[1].status_changes, vec![false]);
        assert_eq!(nodes[2].status_changes, vec![false]);
    }

    #[test]
    fn timers_fire_for_online_peers_only() {
        let mut nodes = vec![Forwarder::new(0, None), Forwarder::new(1, None)];
        let mut online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::Timer { delay: 1, tag: 7 }]);
        engine.inject(PeerId::new(1), vec![Effect::Timer { delay: 1, tag: 8 }]);
        online.set_online(PeerId::new(1), false);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng()); // round 0
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng()); // round 1: timers due
        assert_eq!(nodes[0].timer_fired, vec![7]);
        assert!(
            nodes[1].timer_fired.is_empty(),
            "offline peer's timer dropped"
        );
        assert!(engine.is_quiescent());
    }

    #[test]
    fn timers_with_one_fire_round_pop_in_insertion_order() {
        // Three timers land on the same effective round through different
        // paths (long delay armed early, short delay armed late): the
        // heap must fire them in insertion order, matching the historical
        // Vec scan.
        let mut nodes = vec![Forwarder::new(0, None)];
        let online = OnlineSet::all_online(1);
        let mut engine = SyncEngine::new(1);
        engine.inject(PeerId::new(0), vec![Effect::Timer { delay: 2, tag: 1 }]);
        engine.inject(PeerId::new(0), vec![Effect::Timer { delay: 2, tag: 2 }]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng()); // round 0
        engine.inject(PeerId::new(0), vec![Effect::Timer { delay: 1, tag: 3 }]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng()); // round 1
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng()); // round 2: all due
        assert_eq!(nodes[0].timer_fired, vec![1, 2, 3]);
    }

    #[test]
    fn zero_delay_timer_queued_by_inject_fires_next_step() {
        let mut nodes = vec![Forwarder::new(0, None)];
        let online = OnlineSet::all_online(1);
        let mut engine = SyncEngine::new(1);
        engine.inject(PeerId::new(0), vec![Effect::Timer { delay: 0, tag: 4 }]);
        assert!(!engine.is_quiescent(), "pending timer blocks quiescence");
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(nodes[0].timer_fired, vec![4]);
        assert!(engine.is_quiescent());
    }

    #[test]
    fn per_round_series_tracks_rounds() {
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, Some(0))];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 1)]);
        for _ in 0..4 {
            engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        }
        // Ping-pong forever: one send per round.
        assert_eq!(engine.stats().per_round_sent().points().len(), 4);
        assert_eq!(engine.stats().sent, 5); // inject + 4 forwards
    }

    #[test]
    fn in_flight_counter_tracks_queue_exactly() {
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, None)];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        assert_eq!(engine.in_flight(), 0);
        engine.inject(PeerId::new(1), vec![Effect::send(PeerId::new(0), 1)]);
        engine.inject(PeerId::new(1), vec![Effect::send(PeerId::new(0), 2)]);
        assert_eq!(engine.in_flight(), 2);
        // Both deliveries forward to peer 1: two consumed, two queued.
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(engine.in_flight(), 2);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(engine.in_flight(), 0);
        assert!(engine.is_quiescent());
    }

    #[test]
    fn msg_sizer_records_bytes_per_send() {
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, None)];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.set_msg_sizer(Some(|_m: &u32| 10));
        engine.inject(PeerId::new(1), vec![Effect::send(PeerId::new(0), 1)]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        // inject + the forward produced by delivery: 2 sends × 10 bytes.
        assert_eq!(engine.stats().sent, 2);
        assert_eq!(engine.stats().bytes_sent, 20);
        assert_eq!(engine.stats().mean_message_bytes(), 10.0);
        engine.set_msg_sizer(None);
        engine.inject(PeerId::new(1), vec![Effect::send(PeerId::new(0), 1)]);
        assert_eq!(
            engine.stats().bytes_sent,
            20,
            "cleared sizer stops accounting"
        );
    }

    #[test]
    fn traced_engine_captures_sends_and_deliveries_without_drift() {
        use rumor_obs::MemTracer;
        // Untraced reference run.
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, None)];
        let online = OnlineSet::all_online(2);
        let mut plain = SyncEngine::new(2);
        plain.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        plain.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        let reference = plain.stats().clone();

        // Same run, traced: identical statistics, events captured.
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, None)];
        let mut engine = SyncEngine::with_tracer(2, MemTracer::new());
        engine.set_msg_sizer(Some(|_m: &u32| 10));
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 5)]);
        engine.step(&mut nodes, &online, &PerfectLinks, &mut rng());
        assert_eq!(engine.stats().sent, reference.sent);
        assert_eq!(engine.stats().delivered, reference.delivered);
        let events = engine.tracer_mut().take();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec!["send", "round_start", "deliver", "round_end"],
            "inject send, then the round frame around the delivery"
        );
        let send = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Send { .. }))
            .unwrap();
        assert!(matches!(send.kind, EventKind::Send { bytes: 10, .. }));
    }

    #[test]
    fn run_to_quiescence_respects_cap() {
        let mut nodes = vec![Forwarder::new(0, Some(1)), Forwarder::new(1, Some(0))];
        let online = OnlineSet::all_online(2);
        let mut engine = SyncEngine::new(2);
        engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), 1)]);
        let rounds = engine.run_to_quiescence(&mut nodes, &online, &PerfectLinks, &mut rng(), 10);
        assert_eq!(rounds, 10, "ping-pong never quiesces; cap applies");
    }
}
