//! The protocol-node abstraction shared by both engines.

use crate::sink::EffectSink;
use rand_chacha::ChaCha8Rng;
use rumor_types::{PeerId, Round};

/// An effect a node asks its engine to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect<M> {
    /// Send `msg` to another peer (one paper "message": the unit the
    /// paper's overhead metric counts, whether or not the target is
    /// online).
    Send {
        /// Destination replica.
        to: PeerId,
        /// Payload.
        msg: M,
    },
    /// Ask for [`Node::on_timer`] to fire after `delay` rounds (sync
    /// engine) or `delay` ticks (event engine).
    Timer {
        /// Delay until the timer fires, in engine time units.
        delay: u64,
        /// Opaque tag handed back on expiry.
        tag: u64,
    },
}

impl<M> Effect<M> {
    /// Convenience constructor for a send effect.
    pub fn send(to: PeerId, msg: M) -> Self {
        Self::Send { to, msg }
    }
}

/// A deterministic protocol state machine drivable by [`SyncEngine`] and
/// [`EventEngine`].
///
/// All methods receive the engine's RNG so that a node's random choices
/// (fanout target selection, forwarding coin flips) replay under a fixed
/// experiment seed, and a reusable [`EffectSink`] to write their effects
/// into — the engine drains it after each callback, so steady-state
/// rounds never allocate for effect plumbing.
///
/// [`SyncEngine`]: crate::SyncEngine
/// [`EventEngine`]: crate::EventEngine
pub trait Node {
    /// The message type exchanged between nodes of this protocol.
    type Msg: Clone;

    /// This node's identity.
    fn id(&self) -> PeerId;

    /// A message arrived (the node is necessarily online). Response
    /// effects are written into `out`.
    fn on_message(
        &mut self,
        from: PeerId,
        msg: Self::Msg,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Self::Msg>,
    );

    /// Called at the start of each round while the node is online.
    ///
    /// Protocols use this for periodic work such as lazy pull checks.
    fn on_round_start(
        &mut self,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Self::Msg>,
    ) {
        let _ = (round, rng, out);
    }

    /// Availability transition: `online == true` means the node just came
    /// (back) online — in the paper this is where the pull phase triggers
    /// ("IF online_again … Contact online replicas").
    fn on_status_change(
        &mut self,
        online: bool,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Self::Msg>,
    ) {
        let _ = (online, round, rng, out);
    }

    /// A previously requested timer fired.
    fn on_timer(
        &mut self,
        tag: u64,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<Self::Msg>,
    ) {
        let _ = (tag, round, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo(PeerId);

    impl Node for Echo {
        type Msg = u32;
        fn id(&self) -> PeerId {
            self.0
        }
        fn on_message(
            &mut self,
            from: PeerId,
            msg: u32,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            out: &mut EffectSink<u32>,
        ) {
            out.send(from, msg + 1);
        }
    }

    #[test]
    fn default_hooks_are_inert() {
        use rand::SeedableRng;
        let mut node = Echo(PeerId::new(0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut out = EffectSink::new();
        node.on_round_start(Round::ZERO, &mut rng, &mut out);
        node.on_status_change(true, Round::ZERO, &mut rng, &mut out);
        node.on_timer(0, Round::ZERO, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn effect_send_constructor() {
        let e: Effect<u32> = Effect::send(PeerId::new(2), 9);
        assert_eq!(
            e,
            Effect::Send {
                to: PeerId::new(2),
                msg: 9
            }
        );
    }

    #[test]
    fn on_message_writes_into_sink() {
        use rand::SeedableRng;
        let mut node = Echo(PeerId::new(0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut out = EffectSink::new();
        node.on_message(PeerId::new(4), 7, Round::ZERO, &mut rng, &mut out);
        assert_eq!(out.as_slice(), &[Effect::send(PeerId::new(4), 8)]);
    }
}
