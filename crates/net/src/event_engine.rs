//! Deterministic discrete-event engine: the asynchronous counterpart of
//! [`SyncEngine`](crate::SyncEngine).
//!
//! §4.1: "It is indeed possible that because of variation in network
//! latency, messages of different push rounds live in the network at the
//! same instant of time." This engine realises that regime — messages
//! carry sampled latencies, churn follows continuous on/off dwell times —
//! while staying bit-for-bit reproducible under a fixed seed.

use crate::latency::LatencyModel;
use crate::node::{Effect, Node};
use crate::sink::EffectSink;
use crate::stats::EngineStats;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_churn::{OnOffProcess, OnlineSet};
use rumor_types::{PeerId, Round, Tick};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of the event engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventEngineConfig {
    /// In-flight delay distribution.
    pub latency: LatencyModel,
    /// Independent message-drop probability.
    pub loss: f64,
    /// Ticks that constitute one nominal "round" (used to translate ticks
    /// into the `Round` values nodes reason about).
    pub ticks_per_round: u64,
}

impl Default for EventEngineConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::Constant { ticks: 10 },
            loss: 0.0,
            ticks_per_round: 10,
        }
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: PeerId, to: PeerId, msg: M },
    Status { peer: PeerId, online: bool },
    Timer { peer: PeerId, tag: u64 },
}

#[derive(Debug)]
struct Scheduled<M> {
    at: Tick,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (at, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulator over [`Node`]s.
///
/// # Examples
///
/// ```
/// use rumor_net::{Effect, EventEngine, EventEngineConfig, Node};
/// use rumor_churn::OnlineSet;
/// use rumor_types::{PeerId, Round, Tick};
/// use rand::SeedableRng;
///
/// struct Sink { id: PeerId, got: u32 }
/// impl Node for Sink {
///     type Msg = ();
///     fn id(&self) -> PeerId { self.id }
///     fn on_message(&mut self, _f: PeerId, _m: (), _r: Round,
///                   _rng: &mut rand_chacha::ChaCha8Rng,
///                   _out: &mut rumor_net::EffectSink<()>) {
///         self.got += 1;
///     }
/// }
///
/// let mut nodes = vec![Sink { id: PeerId::new(0), got: 0 },
///                      Sink { id: PeerId::new(1), got: 0 }];
/// let mut online = OnlineSet::all_online(2);
/// let mut engine = EventEngine::new(EventEngineConfig::default(), 2);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// engine.inject(PeerId::new(0), vec![Effect::send(PeerId::new(1), ())], &mut rng);
/// engine.run(&mut nodes, &mut online, None, Tick::new(100), &mut rng);
/// assert_eq!(nodes[1].got, 1);
/// ```
#[derive(Debug)]
pub struct EventEngine<M> {
    cfg: EventEngineConfig,
    queue: BinaryHeap<Scheduled<M>>,
    now: Tick,
    seq: u64,
    stats: EngineStats,
    population: usize,
    sent_this_round: u64,
    closed_rounds: u32,
    /// Scratch sink node callbacks write into; drained after each call.
    sink: EffectSink<M>,
}

impl<M: Clone> EventEngine<M> {
    /// Creates an engine for `population` peers.
    pub fn new(cfg: EventEngineConfig, population: usize) -> Self {
        Self {
            cfg,
            queue: BinaryHeap::new(),
            now: Tick::ZERO,
            seq: 0,
            stats: EngineStats::new(),
            population,
            sent_this_round: 0,
            closed_rounds: 0,
            sink: EffectSink::new(),
        }
    }

    /// Current simulation time.
    pub const fn now(&self) -> Tick {
        self.now
    }

    /// Message accounting so far.
    pub const fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of queued events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The nominal round corresponding to the current tick.
    pub fn current_round(&self) -> Round {
        Round::new((self.now.as_u64() / self.cfg.ticks_per_round) as u32)
    }

    fn push_event(&mut self, at: Tick, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
    }

    /// Queues effects originating at `from` at the current time. Accepts
    /// any effect iterator — a literal `Vec`, or an
    /// [`EffectSink::drain`](crate::EffectSink::drain).
    pub fn inject(
        &mut self,
        from: PeerId,
        effects: impl IntoIterator<Item = Effect<M>>,
        rng: &mut ChaCha8Rng,
    ) {
        for effect in effects {
            self.apply_effect(from, effect, rng);
        }
    }

    fn apply_effect(&mut self, from: PeerId, effect: Effect<M>, rng: &mut ChaCha8Rng) {
        match effect {
            Effect::Send { to, msg } => {
                self.stats.record_sent(1);
                self.sent_this_round += 1;
                let delay = self.cfg.latency.sample(rng);
                let at = self.now.advance(delay);
                self.push_event(at, EventKind::Deliver { from, to, msg });
            }
            Effect::Timer { delay, tag } => {
                let at = self.now.advance(delay.max(1));
                self.push_event(at, EventKind::Timer { peer: from, tag });
            }
        }
    }

    /// Drains `sink`, attributing every effect to `from`.
    fn apply_sink(&mut self, from: PeerId, sink: &mut EffectSink<M>, rng: &mut ChaCha8Rng) {
        for effect in sink.drain() {
            self.apply_effect(from, effect, rng);
        }
    }

    /// Seeds availability transitions for every peer from a continuous
    /// on/off process. Call once before [`EventEngine::run`] when churn is
    /// desired; without it the initial `OnlineSet` stays frozen.
    pub fn schedule_churn(
        &mut self,
        online: &OnlineSet,
        process: &OnOffProcess,
        rng: &mut ChaCha8Rng,
    ) {
        for (peer, is_on) in online.iter() {
            let dwell = if is_on {
                process.sample_online_dwell(rng)
            } else {
                process.sample_offline_dwell(rng)
            };
            let at = self.now.advance(dwell.ceil().max(1.0) as u64);
            self.push_event(
                at,
                EventKind::Status {
                    peer,
                    online: !is_on,
                },
            );
        }
    }

    /// Processes events until `until` (inclusive) or until the queue is
    /// empty. Returns the number of events processed.
    pub fn run<N>(
        &mut self,
        nodes: &mut [N],
        online: &mut OnlineSet,
        churn: Option<&OnOffProcess>,
        until: Tick,
        rng: &mut ChaCha8Rng,
    ) -> u64
    where
        N: Node<Msg = M>,
    {
        assert_eq!(nodes.len(), self.population, "population size mismatch");
        let mut processed = 0;
        let mut sink = std::mem::take(&mut self.sink);
        while let Some(head) = self.queue.peek() {
            if head.at > until {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.advance_clock(ev.at);
            processed += 1;
            let round = self.current_round();
            match ev.kind {
                EventKind::Deliver { from, to, msg } => {
                    if !online.is_online(to) {
                        self.stats.lost_offline += 1;
                        continue;
                    }
                    if self.cfg.loss > 0.0 && rng.gen_bool(self.cfg.loss) {
                        self.stats.lost_fault += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    nodes[to.index()].on_message(from, msg, round, rng, &mut sink);
                    self.apply_sink(to, &mut sink, rng);
                }
                EventKind::Status {
                    peer,
                    online: goes_online,
                } => {
                    online.set_online(peer, goes_online);
                    nodes[peer.index()].on_status_change(goes_online, round, rng, &mut sink);
                    self.apply_sink(peer, &mut sink, rng);
                    if let Some(process) = churn {
                        let dwell = if goes_online {
                            process.sample_online_dwell(rng)
                        } else {
                            process.sample_offline_dwell(rng)
                        };
                        let at = self.now.advance(dwell.ceil().max(1.0) as u64);
                        self.push_event(
                            at,
                            EventKind::Status {
                                peer,
                                online: !goes_online,
                            },
                        );
                    }
                }
                EventKind::Timer { peer, tag } => {
                    if online.is_online(peer) {
                        nodes[peer.index()].on_timer(tag, round, rng, &mut sink);
                        self.apply_sink(peer, &mut sink, rng);
                    }
                }
            }
        }
        self.sink = sink;
        if self.now < until {
            self.advance_clock(until);
        }
        processed
    }

    fn advance_clock(&mut self, to: Tick) {
        // Close any nominal rounds the clock skips past, so the per-round
        // series stays comparable with the synchronous engine.
        let target_round = (to.as_u64() / self.cfg.ticks_per_round) as u32;
        while self.closed_rounds < target_round {
            self.stats
                .close_round(self.closed_rounds, self.sent_this_round);
            self.sent_this_round = 0;
            self.closed_rounds += 1;
        }
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Sink {
        id: PeerId,
        got: Vec<u32>,
        timer_tags: Vec<u64>,
        transitions: u32,
    }

    impl Sink {
        fn new(id: u32) -> Self {
            Self {
                id: PeerId::new(id),
                got: Vec::new(),
                timer_tags: Vec::new(),
                transitions: 0,
            }
        }
    }

    impl Node for Sink {
        type Msg = u32;
        fn id(&self) -> PeerId {
            self.id
        }
        fn on_message(
            &mut self,
            _from: PeerId,
            msg: u32,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            _out: &mut EffectSink<u32>,
        ) {
            self.got.push(msg);
        }
        fn on_status_change(
            &mut self,
            _online: bool,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            _out: &mut EffectSink<u32>,
        ) {
            self.transitions += 1;
        }
        fn on_timer(
            &mut self,
            tag: u64,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            _out: &mut EffectSink<u32>,
        ) {
            self.timer_tags.push(tag);
        }
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(10)
    }

    #[test]
    fn delivers_with_constant_latency() {
        let mut nodes = vec![Sink::new(0), Sink::new(1)];
        let mut online = OnlineSet::all_online(2);
        let mut engine = EventEngine::new(EventEngineConfig::default(), 2);
        let mut r = rng();
        engine.inject(
            PeerId::new(0),
            vec![Effect::send(PeerId::new(1), 42)],
            &mut r,
        );
        engine.run(&mut nodes, &mut online, None, Tick::new(9), &mut r);
        assert!(nodes[1].got.is_empty(), "latency is 10 ticks");
        engine.run(&mut nodes, &mut online, None, Tick::new(10), &mut r);
        assert_eq!(nodes[1].got, vec![42]);
    }

    #[test]
    fn loss_drops_messages() {
        let cfg = EventEngineConfig {
            loss: 1.0,
            ..EventEngineConfig::default()
        };
        let mut nodes = vec![Sink::new(0), Sink::new(1)];
        let mut online = OnlineSet::all_online(2);
        let mut engine = EventEngine::new(cfg, 2);
        let mut r = rng();
        engine.inject(
            PeerId::new(0),
            vec![Effect::send(PeerId::new(1), 1)],
            &mut r,
        );
        engine.run(&mut nodes, &mut online, None, Tick::new(100), &mut r);
        assert!(nodes[1].got.is_empty());
        assert_eq!(engine.stats().lost_fault, 1);
    }

    #[test]
    fn timer_fires_at_requested_delay() {
        let mut nodes = vec![Sink::new(0)];
        let mut online = OnlineSet::all_online(1);
        let mut engine = EventEngine::new(EventEngineConfig::default(), 1);
        let mut r = rng();
        engine.inject(
            PeerId::new(0),
            vec![Effect::Timer { delay: 25, tag: 3 }],
            &mut r,
        );
        engine.run(&mut nodes, &mut online, None, Tick::new(24), &mut r);
        assert!(nodes[0].timer_tags.is_empty());
        engine.run(&mut nodes, &mut online, None, Tick::new(25), &mut r);
        assert_eq!(nodes[0].timer_tags, vec![3]);
    }

    #[test]
    fn churn_produces_transitions() {
        let mut nodes: Vec<Sink> = (0..20).map(Sink::new).collect();
        let mut online = OnlineSet::all_online(20);
        let mut engine = EventEngine::new(EventEngineConfig::default(), 20);
        let process = OnOffProcess::new(20.0, 20.0).unwrap();
        let mut r = rng();
        engine.schedule_churn(&online, &process, &mut r);
        engine.run(
            &mut nodes,
            &mut online,
            Some(&process),
            Tick::new(1000),
            &mut r,
        );
        let total: u32 = nodes.iter().map(|n| n.transitions).sum();
        assert!(
            total > 20,
            "expected ongoing churn, saw {total} transitions"
        );
        assert!(
            online.online_count() > 0 && online.online_count() < 20,
            "availability should hover mid-range"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut nodes = vec![Sink::new(0), Sink::new(1)];
            let mut online = OnlineSet::all_online(2);
            let cfg = EventEngineConfig {
                latency: LatencyModel::Uniform { lo: 1, hi: 50 },
                ..EventEngineConfig::default()
            };
            let mut engine = EventEngine::new(cfg, 2);
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            for i in 0..10 {
                engine.inject(
                    PeerId::new(0),
                    vec![Effect::send(PeerId::new(1), i)],
                    &mut r,
                );
            }
            engine.run(&mut nodes, &mut online, None, Tick::new(100), &mut r);
            nodes[1].got.clone()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn rounds_close_as_time_passes() {
        let mut nodes = vec![Sink::new(0), Sink::new(1)];
        let mut online = OnlineSet::all_online(2);
        let mut engine = EventEngine::new(EventEngineConfig::default(), 2);
        let mut r = rng();
        engine.inject(
            PeerId::new(0),
            vec![Effect::send(PeerId::new(1), 1)],
            &mut r,
        );
        engine.run(&mut nodes, &mut online, None, Tick::new(55), &mut r);
        // 55 ticks / 10 ticks-per-round => 5 closed rounds.
        assert_eq!(engine.stats().per_round_sent().points().len(), 5);
        assert_eq!(engine.current_round(), Round::new(5));
    }
}
