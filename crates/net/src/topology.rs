//! Knowledge-graph construction: which replicas each peer initially knows.
//!
//! §2: "the replicas within a logical partition of the data space are
//! connected among each other and each replica knows a minimal fraction of
//! the complete set of replicas", with "the connectivity among replicas…
//! high and the connectivity graph is random". These helpers generate
//! exactly those random knowledge graphs.

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use std::collections::VecDeque;

/// Full knowledge: every peer knows every other peer.
///
/// # Examples
///
/// ```
/// let adj = rumor_net::topology::full(3);
/// assert_eq!(adj[0].len(), 2);
/// ```
pub fn full(n: usize) -> Vec<Vec<PeerId>> {
    (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| PeerId::new(j as u32))
                .collect()
        })
        .collect()
}

/// Partial knowledge: every peer knows `k` distinct peers drawn uniformly
/// at random (self excluded).
///
/// # Panics
///
/// Panics if `k >= n` (a peer cannot know more peers than exist besides
/// itself).
pub fn random_subsets(n: usize, k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<PeerId>> {
    assert!(k < n, "k must be smaller than the population");
    let everyone: Vec<u32> = (0..n as u32).collect();
    (0..n)
        .map(|i| {
            let mut pool: Vec<u32> = everyone
                .iter()
                .copied()
                .filter(|&j| j != i as u32)
                .collect();
            pool.shuffle(rng);
            pool.truncate(k);
            pool.sort_unstable();
            pool.into_iter().map(PeerId::new).collect()
        })
        .collect()
}

/// Whether the knowledge graph is connected when edges are taken as
/// undirected (A knowing B suffices for the rumor to cross in either
/// direction eventually, because B learns A from the partial list).
pub fn is_connected(adj: &[Vec<PeerId>]) -> bool {
    let n = adj.len();
    if n == 0 {
        return true;
    }
    // Build undirected adjacency.
    let mut und: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, known) in adj.iter().enumerate() {
        for p in known {
            und[i].push(p.index());
            und[p.index()].push(i);
        }
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = queue.pop_front() {
        for &v in &und[u] {
            if !seen[v] {
                seen[v] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count == n
}

/// Mean out-degree of a knowledge graph.
pub fn mean_degree(adj: &[Vec<PeerId>]) -> f64 {
    if adj.is_empty() {
        return 0.0;
    }
    adj.iter().map(Vec::len).sum::<usize>() as f64 / adj.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(12)
    }

    #[test]
    fn full_graph_shape() {
        let adj = full(5);
        assert_eq!(adj.len(), 5);
        assert!(adj.iter().all(|a| a.len() == 4));
        assert!(is_connected(&adj));
        assert_eq!(mean_degree(&adj), 4.0);
    }

    #[test]
    fn full_graph_excludes_self() {
        let adj = full(4);
        for (i, known) in adj.iter().enumerate() {
            assert!(known.iter().all(|p| p.index() != i));
        }
    }

    #[test]
    fn random_subsets_have_exact_degree() {
        let adj = random_subsets(100, 7, &mut rng());
        assert!(adj.iter().all(|a| a.len() == 7));
        assert_eq!(mean_degree(&adj), 7.0);
    }

    #[test]
    fn random_subsets_exclude_self_and_duplicates() {
        let adj = random_subsets(50, 10, &mut rng());
        for (i, known) in adj.iter().enumerate() {
            let mut uniq = known.clone();
            uniq.dedup();
            assert_eq!(uniq.len(), known.len(), "duplicates at {i}");
            assert!(known.iter().all(|p| p.index() != i), "self-loop at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "smaller than the population")]
    fn random_subsets_reject_k_too_large() {
        let _ = random_subsets(5, 5, &mut rng());
    }

    #[test]
    fn random_graph_with_log_degree_is_connected() {
        // k ≈ 2 ln n keeps a random digraph connected with overwhelming
        // probability — the paper's "high connectivity" assumption.
        let adj = random_subsets(500, 13, &mut rng());
        assert!(is_connected(&adj));
    }

    #[test]
    fn disconnected_graph_detected() {
        // Two islands: {0,1} and {2,3}.
        let adj = vec![
            vec![PeerId::new(1)],
            vec![PeerId::new(0)],
            vec![PeerId::new(3)],
            vec![PeerId::new(2)],
        ];
        assert!(!is_connected(&adj));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&[]));
        assert_eq!(mean_degree(&[]), 0.0);
    }
}
