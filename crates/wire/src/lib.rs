//! `rumor-wire` — the versioned, length-prefixed binary wire codec for
//! the update protocol's message sets.
//!
//! The paper's message-length analysis (§4.2) is stated in bytes —
//! `L_M(t) = |U| + R · δ · l(t)` — and systems it compares against (CUP,
//! DHT replication stores) measure propagation cost in bytes on the
//! wire, not abstract message counts. This crate pins down that wire
//! format: every message travels as a [`Frame`] — a 6-byte header
//! carrying the codec [`WIRE_VERSION`], a message-kind discriminant and
//! an explicit payload length — followed by a big-endian payload.
//!
//! The crate deliberately knows nothing about any concrete message set.
//! It defines the [`Encode`]/[`Decode`] trait pair and the framing
//! functions; `rumor-core` implements them for the paper protocol's
//! messages (updates, tombstones, digests, partial replica lists) and
//! `rumor-baselines` for the flooding and Demers message sets. The
//! live threaded runtime in `rumor-cluster` round-trips every message
//! through this codec, and the engines' wire-size accounting uses
//! [`frame_len`] to report bandwidth next to message counts.
//!
//! Two codec versions coexist. Wire v1 frames one message per frame;
//! wire v2 ([`WireVersion::V2`]) adds per-peer batch frames
//! ([`BatchEncoder`], one header amortised over many sub-frames),
//! v2-only message kinds (delta pulls in `rumor-core`) and a zero-copy
//! decode path ([`Decode::decode_payload_bytes`],
//! [`decode_frame_v2`]) that slices payload fields straight out of the
//! receive buffer. The v1 decoder ([`decode_frame`]) rejects every v2
//! frame and kind; the v2 decoder accepts both versions but enforces
//! version↔kind consistency so header forgeries stay undecodable.
//!
//! Decoding is strict — truncated input, foreign versions, unknown
//! kinds, length mismatches and trailing bytes are all distinct
//! [`WireError`]s, never panics (see [`Reader`]). The flip side of that
//! strictness is testable: [`FrameCorruption`] and [`garbage_frame`]
//! construct deliberately malformed frames (header flips, truncations,
//! version and length forgeries) for the Byzantine fault injector and
//! the codec's own rejection suites — frame surgery stays in this crate
//! so nobody else ever touches header bytes.
//!
//! # Examples
//!
//! ```
//! use bytes::{BufMut, BytesMut};
//! use rumor_wire::{decode_frame, encode_frame, Decode, Encode, Reader, WireError};
//!
//! #[derive(Debug, PartialEq)]
//! struct Hello { seq: u32 }
//!
//! impl Encode for Hello {
//!     fn kind(&self) -> u8 { 1 }
//!     fn payload_len(&self) -> usize { 4 }
//!     fn encode_payload(&self, buf: &mut BytesMut) { buf.put_u32(self.seq); }
//! }
//! impl Decode for Hello {
//!     fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
//!         if kind != 1 { return Err(WireError::UnknownKind { kind }); }
//!         let mut r = Reader::new(payload);
//!         let msg = Hello { seq: r.u32()? };
//!         r.finish()?;
//!         Ok(msg)
//!     }
//! }
//!
//! let frame = encode_frame(&Hello { seq: 9 });
//! assert_eq!(decode_frame::<Hello>(&frame)?, Hello { seq: 9 });
//! # Ok::<(), WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod corrupt;
mod error;
mod frame;
mod reader;

pub use batch::{batch_frame_len, decode_frame_v2, BatchEncoder, BATCH_SUBHEADER_BYTES};
pub use corrupt::{garbage_frame, FrameCorruption};
pub use error::WireError;
pub use frame::{
    decode_frame, encode_frame, encode_frame_into, frame_len, Decode, Encode, Frame, WireVersion,
    FRAME_HEADER_BYTES, KIND_BATCH, WIRE_VERSION, WIRE_VERSION_V2,
};
pub use reader::Reader;

// Re-exported because the zero-copy decode surface
// ([`decode_frame_v2`], [`Decode::decode_payload_bytes`]) speaks in
// `Bytes` views; callers should not need a direct `bytes` dependency.
pub use bytes::Bytes;
