//! The frame header and the [`Encode`]/[`Decode`] trait pair.

use crate::error::WireError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// The codec version every v1 frame carries.
pub const WIRE_VERSION: u8 = 1;

/// The codec version wire-v2 frames carry ([`KIND_BATCH`] batches and
/// message kinds whose [`Decode::kind_version`] is [`WireVersion::V2`]).
pub const WIRE_VERSION_V2: u8 = 2;

/// Size of the frame header: version (1) + kind (1) + payload length (4).
pub const FRAME_HEADER_BYTES: usize = 6;

/// Frame kind reserved for wire-v2 batch frames. Deliberately far above
/// the small tag ranges the message sets use so it can never collide
/// with a protocol message kind.
pub const KIND_BATCH: u8 = 0x7F;

/// The codec versions this crate can emit and decode.
///
/// This enum is the sanctioned cross-crate handle on versioning: other
/// crates select a version through it (builder knobs, [`Encode::wire_version`],
/// [`Decode::kind_version`]) while the raw header bytes ([`WIRE_VERSION`],
/// [`WIRE_VERSION_V2`]) stay constructible only inside `rumor-wire`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireVersion {
    /// The original one-message-per-frame codec.
    #[default]
    V1,
    /// Wire v2: batch frames, delta-pull kinds, zero-copy decode.
    V2,
}

impl WireVersion {
    /// The version byte this codec version writes into frame headers.
    pub fn byte(self) -> u8 {
        match self {
            Self::V1 => WIRE_VERSION,
            Self::V2 => WIRE_VERSION_V2,
        }
    }
}

/// The fixed header preceding every payload on the wire:
/// `version: u8, kind: u8, payload_len: u32` (big-endian).
///
/// The version byte makes the format evolvable (a decoder rejects frames
/// from a future codec instead of misreading them), the kind byte selects
/// the message variant, and the explicit payload length lets stream
/// transports delimit frames without understanding the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Codec version ([`WIRE_VERSION`] for frames produced here).
    pub version: u8,
    /// Message-kind discriminant (protocol-specific).
    pub kind: u8,
    /// Payload byte count following the header.
    pub payload_len: u32,
}

impl Frame {
    /// Builds a current-version header for a payload of `payload_len`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes.
    pub fn new(kind: u8, payload_len: usize) -> Self {
        Self::versioned(WireVersion::V1, kind, payload_len)
    }

    /// Builds a header for the given codec version.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes.
    pub fn versioned(version: WireVersion, kind: u8, payload_len: usize) -> Self {
        assert!(
            u32::try_from(payload_len).is_ok(),
            "payload of {payload_len} bytes exceeds the u32 frame limit"
        );
        Self {
            version: version.byte(),
            kind,
            payload_len: payload_len as u32,
        }
    }

    /// Appends the 6 header bytes to `buf`.
    pub fn put(&self, buf: &mut BytesMut) {
        buf.put_u8(self.version);
        buf.put_u8(self.kind);
        buf.put_u32(self.payload_len);
    }

    /// Splits `bytes` into a validated header and its payload slice.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] when the header is incomplete,
    /// [`WireError::BadVersion`] for a foreign codec version, and
    /// [`WireError::LengthMismatch`] when the declared payload length does
    /// not match the bytes present (both truncation and trailing junk).
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), WireError> {
        let (frame, payload) = Self::parse_any(bytes)?;
        if frame.version != WIRE_VERSION {
            return Err(WireError::BadVersion {
                found: frame.version,
            });
        }
        Ok((frame, payload))
    }

    /// Like [`Frame::parse`] but accepting every supported codec version
    /// (v1 and v2). Callers must still check version↔kind consistency —
    /// [`decode_frame_v2`](crate::decode_frame_v2) does.
    pub(crate) fn parse_any(mut bytes: &[u8]) -> Result<(Self, &[u8]), WireError> {
        if bytes.len() < FRAME_HEADER_BYTES {
            return Err(WireError::Truncated {
                needed: FRAME_HEADER_BYTES,
                have: bytes.len(),
            });
        }
        let buf = &mut bytes;
        let version = buf.get_u8();
        if version != WIRE_VERSION && version != WIRE_VERSION_V2 {
            return Err(WireError::BadVersion { found: version });
        }
        let kind = buf.get_u8();
        let payload_len = buf.get_u32();
        if buf.len() != payload_len as usize {
            return Err(WireError::LengthMismatch {
                declared: payload_len as usize,
                actual: buf.len(),
            });
        }
        Ok((
            Self {
                version,
                kind,
                payload_len,
            },
            buf,
        ))
    }
}

/// A message that can be serialised into a framed payload.
///
/// Implementations live next to the message types (`rumor-core` for the
/// paper protocol, `rumor-baselines` for the comparison schemes); this
/// crate only defines the format contract. `payload_len` must equal the
/// bytes `encode_payload` writes — [`encode_frame`] debug-asserts it.
pub trait Encode {
    /// The message-kind discriminant stored in the frame header.
    fn kind(&self) -> u8;

    /// Exact payload size in bytes, computed without allocating.
    fn payload_len(&self) -> usize;

    /// Appends the payload bytes (header excluded) to `buf`.
    fn encode_payload(&self, buf: &mut BytesMut);

    /// The codec version this message's frame header carries.
    ///
    /// Defaults to [`WireVersion::V1`] so existing message sets emit
    /// byte-identical frames; wire-v2-only kinds (delta pulls) override
    /// this to [`WireVersion::V2`].
    fn wire_version(&self) -> WireVersion {
        WireVersion::V1
    }
}

/// A message decodable from a framed payload.
pub trait Decode: Sized {
    /// Reconstructs the message from the frame's kind byte and payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnknownKind`] for an unrecognised kind and a
    /// decode error for truncated, oversize or invariant-violating
    /// payloads.
    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError>;

    /// The codec version a given kind byte belongs to.
    ///
    /// The v1 decode path ([`decode_frame`]) rejects kinds that are not
    /// [`WireVersion::V1`], and the v2 path
    /// ([`decode_frame_v2`](crate::decode_frame_v2)) enforces that the
    /// header's version byte matches the kind's version — so a v1 frame
    /// whose version byte was forged to 2 (or vice versa) never decodes.
    fn kind_version(kind: u8) -> WireVersion {
        let _ = kind;
        WireVersion::V1
    }

    /// Zero-copy variant of [`Decode::decode_payload`]: the payload
    /// arrives as a [`Bytes`] view of the receive buffer, so
    /// implementations can slice variable-length fields (values, blobs)
    /// out of it via [`Bytes::slice_ref`] instead of copying into owned
    /// `Vec`s. The default falls back to the borrowed-slice path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Decode::decode_payload`].
    fn decode_payload_bytes(kind: u8, payload: &Bytes) -> Result<Self, WireError> {
        Self::decode_payload(kind, payload)
    }
}

/// Total on-wire size of `msg`'s frame (header + payload) — the byte
/// count the wire-size accounting records per sent message.
pub fn frame_len<M: Encode + ?Sized>(msg: &M) -> usize {
    FRAME_HEADER_BYTES + msg.payload_len()
}

/// Appends `msg`'s complete frame (header + payload) to `buf`.
pub fn encode_frame_into<M: Encode + ?Sized>(msg: &M, buf: &mut BytesMut) {
    let before = buf.len();
    let payload_len = msg.payload_len();
    Frame::versioned(msg.wire_version(), msg.kind(), payload_len).put(buf);
    msg.encode_payload(buf);
    debug_assert_eq!(
        buf.len() - before,
        FRAME_HEADER_BYTES + payload_len,
        "Encode::payload_len disagrees with Encode::encode_payload"
    );
}

/// Serialises `msg` into a freshly allocated frame.
pub fn encode_frame<M: Encode + ?Sized>(msg: &M) -> Bytes {
    let mut buf = BytesMut::with_capacity(frame_len(msg));
    encode_frame_into(msg, &mut buf);
    buf.freeze()
}

/// Deserialises one complete v1 frame.
///
/// This is the strict v1 decoder: a wire-v2 version byte is rejected
/// with [`WireError::BadVersion`], and a v2-only kind smuggled behind a
/// v1 version byte is rejected with [`WireError::UnknownKind`] — to a
/// v1 peer those kinds do not exist.
///
/// # Errors
///
/// Returns a [`WireError`] on header truncation, foreign version,
/// length mismatch, unknown kind or a malformed payload.
pub fn decode_frame<M: Decode>(bytes: &[u8]) -> Result<M, WireError> {
    let (frame, payload) = Frame::parse(bytes)?;
    if M::kind_version(frame.kind) != WireVersion::V1 {
        return Err(WireError::UnknownKind { kind: frame.kind });
    }
    M::decode_payload(frame.kind, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::Reader;

    /// A tiny two-variant message set exercising the full contract.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum TestMsg {
        Ping(u32),
        Blob(Vec<u8>),
    }

    impl Encode for TestMsg {
        fn kind(&self) -> u8 {
            match self {
                Self::Ping(_) => 1,
                Self::Blob(_) => 2,
            }
        }
        fn payload_len(&self) -> usize {
            match self {
                Self::Ping(_) => 4,
                Self::Blob(b) => 4 + b.len(),
            }
        }
        fn encode_payload(&self, buf: &mut BytesMut) {
            match self {
                Self::Ping(n) => buf.put_u32(*n),
                Self::Blob(b) => {
                    buf.put_u32(b.len() as u32);
                    buf.put_slice(b);
                }
            }
        }
    }

    impl Decode for TestMsg {
        fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
            let mut r = Reader::new(payload);
            let msg = match kind {
                1 => Self::Ping(r.u32()?),
                2 => {
                    let n = r.u32()? as usize;
                    Self::Blob(r.bytes(n)?.to_vec())
                }
                other => return Err(WireError::UnknownKind { kind: other }),
            };
            r.finish()?;
            Ok(msg)
        }
    }

    #[test]
    fn roundtrip_through_frame() {
        for msg in [TestMsg::Ping(7), TestMsg::Blob(vec![1, 2, 3])] {
            let bytes = encode_frame(&msg);
            assert_eq!(bytes.len(), frame_len(&msg));
            assert_eq!(decode_frame::<TestMsg>(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn header_layout_is_version_kind_len() {
        let bytes = encode_frame(&TestMsg::Ping(0xDEAD));
        assert_eq!(bytes[0], WIRE_VERSION);
        assert_eq!(bytes[1], 1);
        assert_eq!(&bytes[2..6], &4u32.to_be_bytes());
    }

    #[test]
    fn rejects_truncated_header() {
        let bytes = encode_frame(&TestMsg::Ping(1));
        for cut in 0..FRAME_HEADER_BYTES {
            assert!(matches!(
                decode_frame::<TestMsg>(&bytes[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn rejects_truncated_and_padded_payloads() {
        let bytes = encode_frame(&TestMsg::Blob(vec![5; 8])).to_vec();
        assert!(matches!(
            decode_frame::<TestMsg>(&bytes[..bytes.len() - 1]),
            Err(WireError::LengthMismatch { .. })
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_frame::<TestMsg>(&padded),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_version_and_unknown_kind() {
        let mut bytes = encode_frame(&TestMsg::Ping(1)).to_vec();
        bytes[0] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame::<TestMsg>(&bytes),
            Err(WireError::BadVersion {
                found: WIRE_VERSION + 1
            })
        );
        bytes[0] = WIRE_VERSION;
        bytes[1] = 99;
        assert_eq!(
            decode_frame::<TestMsg>(&bytes),
            Err(WireError::UnknownKind { kind: 99 })
        );
    }

    #[test]
    fn inner_length_prefix_cannot_overread() {
        // A Blob whose inner count exceeds the payload is caught by the
        // bounds-checked reader, not by a panic.
        let mut buf = BytesMut::new();
        Frame::new(2, 4).put(&mut buf);
        buf.put_u32(1000);
        assert!(matches!(
            decode_frame::<TestMsg>(&buf),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let mut buf = BytesMut::with_capacity(64);
        encode_frame_into(&TestMsg::Ping(3), &mut buf);
        let first = buf.len();
        encode_frame_into(&TestMsg::Ping(4), &mut buf);
        assert_eq!(buf.len(), first * 2, "frames append back to back");
    }
}
