//! Strict decode errors.

use std::fmt;

/// Why a frame or payload failed to decode.
///
/// Decoding is strict: every failure mode is distinguished so transports
/// can tell protocol-version skew ([`WireError::BadVersion`]) apart from
/// corruption ([`WireError::Truncated`], [`WireError::LengthMismatch`])
/// and from peers speaking a different message set
/// ([`WireError::UnknownKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the expected structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The frame header carried an unsupported codec version.
    BadVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The frame's message-kind byte names no known message variant.
    UnknownKind {
        /// The kind byte found on the wire.
        kind: u8,
    },
    /// The header's declared payload length disagrees with the bytes
    /// actually present.
    LengthMismatch {
        /// Length the frame header declared.
        declared: usize,
        /// Payload bytes actually available.
        actual: usize,
    },
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// The payload violated a message-level invariant.
    Malformed {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl WireError {
    /// Builds a [`WireError::Malformed`] from any displayable reason.
    pub fn malformed(reason: impl Into<String>) -> Self {
        Self::Malformed {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} bytes, have {have}")
            }
            Self::BadVersion { found } => write!(f, "unsupported wire version {found}"),
            Self::UnknownKind { kind } => write!(f, "unknown message kind {kind}"),
            Self::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "payload length mismatch: header says {declared}, found {actual}"
                )
            }
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after decoded payload")
            }
            Self::Malformed { reason } => write!(f, "malformed payload: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let cases: Vec<(WireError, &str)> = vec![
            (WireError::Truncated { needed: 4, have: 1 }, "truncated"),
            (WireError::BadVersion { found: 9 }, "version 9"),
            (WireError::UnknownKind { kind: 7 }, "kind 7"),
            (
                WireError::LengthMismatch {
                    declared: 10,
                    actual: 3,
                },
                "mismatch",
            ),
            (WireError::TrailingBytes { count: 2 }, "trailing"),
            (WireError::malformed("empty lineage"), "empty lineage"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
