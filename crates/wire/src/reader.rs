//! Bounds-checked payload reading.

use crate::error::WireError;
use bytes::Buf;

/// A cursor over a payload slice whose every read is bounds-checked,
/// returning [`WireError::Truncated`] instead of panicking.
///
/// Integers are big-endian, matching the [`bytes::BufMut`] writers the
/// [`Encode`](crate::Encode) implementations use.
///
/// # Examples
///
/// ```
/// use rumor_wire::Reader;
///
/// let mut r = Reader::new(&[0x01, 0x00, 0x02]);
/// assert_eq!(r.u8()?, 1);
/// assert_eq!(r.u16()?, 2);
/// r.finish()?;
/// # Ok::<(), rumor_wire::WireError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

macro_rules! read_int {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        /// Reads one big-endian integer.
        ///
        /// # Errors
        ///
        /// Returns [`WireError::Truncated`] when fewer bytes remain.
        pub fn $name(&mut self) -> Result<$ty, WireError> {
            if self.buf.len() < $size {
                return Err(WireError::Truncated {
                    needed: $size,
                    have: self.buf.len(),
                });
            }
            Ok(self.buf.$get())
        }
    };
}

impl<'a> Reader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    read_int!(u8, u8, get_u8, 1);
    read_int!(u16, u16, get_u16, 2);
    read_int!(u32, u32, get_u32, 4);
    read_int!(u64, u64, get_u64, 8);
    read_int!(u128, u128, get_u128, 16);

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Asserts that the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.buf.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_every_width_big_endian() {
        let mut data = Vec::new();
        data.push(0xAAu8);
        data.extend_from_slice(&0xBBCCu16.to_be_bytes());
        data.extend_from_slice(&0x1122_3344u32.to_be_bytes());
        data.extend_from_slice(&0x5566_7788_99AA_BBCCu64.to_be_bytes());
        data.extend_from_slice(&7u128.to_be_bytes());
        let mut r = Reader::new(&data);
        assert_eq!(r.u8().unwrap(), 0xAA);
        assert_eq!(r.u16().unwrap(), 0xBBCC);
        assert_eq!(r.u32().unwrap(), 0x1122_3344);
        assert_eq!(r.u64().unwrap(), 0x5566_7788_99AA_BBCC);
        assert_eq!(r.u128().unwrap(), 7);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_reports_needed_and_have() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated { needed: 4, have: 2 }));
    }

    #[test]
    fn raw_bytes_and_trailing_detection() {
        let mut r = Reader::new(&[9, 8, 7]);
        assert_eq!(r.bytes(2).unwrap(), &[9, 8]);
        assert_eq!(r.remaining(), 1);
        assert!(!r.is_empty());
        assert_eq!(
            r.clone().finish(),
            Err(WireError::TrailingBytes { count: 1 })
        );
        assert!(r.bytes(2).is_err());
    }
}
