//! Deliberately malformed frames, for fault injection and codec tests.
//!
//! Byzantine cluster members and the chaos fuzzer need to put *invalid*
//! bytes on the wire; the strict decoder's whole job is to reject them
//! without panicking. Header surgery lives here because this crate owns
//! the frame layout — everyone else only sees opaque corrupted bytes.
//!
//! Every [`FrameCorruption`] produced by [`FrameCorruption::from_draws`]
//! is guaranteed to be rejected by [`decode_frame`](crate::decode_frame)
//! when applied to a frame emitted by
//! [`encode_frame`](crate::encode_frame) for a message set whose kind
//! bytes stay below `0x80` (every message set in this workspace does):
//! header-byte flips break the version, kind or declared length;
//! truncation breaks the length; version and length forgeries break
//! their own fields.

use crate::frame::FRAME_HEADER_BYTES;
use bytes::Bytes;

/// One way to damage an encoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameCorruption {
    /// XOR `0xFF` into the byte at `index` (modulo the frame length).
    FlipByte {
        /// Position to damage; reduced modulo the frame length.
        index: usize,
    },
    /// Cut the frame short: the result keeps `keep % len` bytes, so it
    /// is always strictly shorter than the input.
    Truncate {
        /// Bytes to keep; reduced modulo the frame length.
        keep: usize,
    },
    /// Increment the header's version byte (a foreign-codec frame).
    BumpVersion,
    /// Overwrite the header's kind byte.
    ForgeKind {
        /// The kind byte to plant.
        kind: u8,
    },
    /// Add `extra` (wrapping) to the declared payload length without
    /// touching the payload, so declared and actual lengths disagree.
    InflateLength {
        /// Amount to add; `0` is promoted to `1` so the field always
        /// changes.
        extra: u32,
    },
}

impl FrameCorruption {
    /// Maps two uniform draws onto a corruption that strict decoding
    /// rejects: a header-byte flip, a truncation, a version bump or a
    /// length forgery. This is the menu Byzantine senders draw from —
    /// callers supply the randomness, this crate supplies the surgery.
    pub fn from_draws(mode: u32, detail: u32) -> Self {
        match mode % 4 {
            0 => Self::FlipByte {
                index: detail as usize % FRAME_HEADER_BYTES,
            },
            1 => Self::Truncate {
                keep: detail as usize,
            },
            2 => Self::BumpVersion,
            _ => Self::InflateLength { extra: detail | 1 },
        }
    }

    /// Applies the corruption to `frame`, returning the damaged copy.
    ///
    /// Inputs shorter than a full header (including empty ones) degrade
    /// to a single `0xFF` byte for the variants that need header room —
    /// still guaranteed undecodable.
    pub fn apply(self, frame: &[u8]) -> Bytes {
        match self {
            Self::FlipByte { index } => {
                if frame.is_empty() {
                    return Bytes::from_static(&[0xFF]);
                }
                let mut bytes = frame.to_vec();
                let at = index % bytes.len();
                bytes[at] ^= 0xFF;
                Bytes::from(bytes)
            }
            Self::Truncate { keep } => {
                if frame.is_empty() {
                    return Bytes::new();
                }
                Bytes::copy_from_slice(&frame[..keep % frame.len()])
            }
            Self::BumpVersion => {
                if frame.is_empty() {
                    return Bytes::from_static(&[0xFF]);
                }
                let mut bytes = frame.to_vec();
                bytes[0] = bytes[0].wrapping_add(1);
                Bytes::from(bytes)
            }
            Self::ForgeKind { kind } => {
                if frame.len() < 2 {
                    return Bytes::from_static(&[0xFF]);
                }
                let mut bytes = frame.to_vec();
                bytes[1] = kind;
                Bytes::from(bytes)
            }
            Self::InflateLength { extra } => {
                if frame.len() < FRAME_HEADER_BYTES {
                    return Bytes::from_static(&[0xFF]);
                }
                let mut bytes = frame.to_vec();
                let declared = u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
                let forged = declared.wrapping_add(extra.max(1));
                bytes[2..FRAME_HEADER_BYTES].copy_from_slice(&forged.to_be_bytes());
                Bytes::from(bytes)
            }
        }
    }
}

/// A frame of `len` copies of `fill` — pure noise. The strict decoder
/// rejects every such frame: short ones are truncated headers, and a
/// full-size one either carries a foreign version byte or declares a
/// payload length (`fill` repeated four times, big-endian) that cannot
/// match the bytes present.
pub fn garbage_frame(len: usize, fill: u8) -> Bytes {
    Bytes::from(vec![fill; len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WireError;
    use crate::frame::{decode_frame, encode_frame, Decode, Encode};
    use bytes::{BufMut, BytesMut};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ping(u32);

    impl Encode for Ping {
        fn kind(&self) -> u8 {
            1
        }
        fn payload_len(&self) -> usize {
            4
        }
        fn encode_payload(&self, buf: &mut BytesMut) {
            buf.put_u32(self.0);
        }
    }

    impl Decode for Ping {
        fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
            if kind != 1 {
                return Err(WireError::UnknownKind { kind });
            }
            let mut r = crate::Reader::new(payload);
            let msg = Ping(r.u32()?);
            r.finish()?;
            Ok(msg)
        }
    }

    #[test]
    fn every_drawn_corruption_is_rejected() {
        let clean = encode_frame(&Ping(0xBEEF));
        assert!(decode_frame::<Ping>(&clean).is_ok());
        for mode in 0..8u32 {
            for detail in [0u32, 1, 2, 5, 6, 9, 0xFFFF_FFFF] {
                let corruption = FrameCorruption::from_draws(mode, detail);
                let damaged = corruption.apply(&clean);
                assert!(
                    decode_frame::<Ping>(&damaged).is_err(),
                    "{corruption:?} survived strict decoding"
                );
            }
        }
    }

    #[test]
    fn corruption_variants_hit_their_error_classes() {
        let clean = encode_frame(&Ping(7));
        assert!(matches!(
            decode_frame::<Ping>(&FrameCorruption::BumpVersion.apply(&clean)),
            Err(WireError::BadVersion { .. })
        ));
        assert!(matches!(
            decode_frame::<Ping>(&FrameCorruption::ForgeKind { kind: 99 }.apply(&clean)),
            Err(WireError::UnknownKind { kind: 99 })
        ));
        assert!(matches!(
            decode_frame::<Ping>(&FrameCorruption::Truncate { keep: 3 }.apply(&clean)),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode_frame::<Ping>(&FrameCorruption::InflateLength { extra: 4 }.apply(&clean)),
            Err(WireError::LengthMismatch { .. })
        ));
        assert!(matches!(
            decode_frame::<Ping>(&FrameCorruption::FlipByte { index: 0 }.apply(&clean)),
            Err(WireError::BadVersion { found: 0xFE })
        ));
    }

    #[test]
    fn corruption_never_mutates_the_original() {
        let clean = encode_frame(&Ping(3));
        let before = clean.clone();
        let _ = FrameCorruption::FlipByte { index: 2 }.apply(&clean);
        assert_eq!(clean, before);
    }

    #[test]
    fn degenerate_inputs_stay_undecodable() {
        for corruption in [
            FrameCorruption::FlipByte { index: 9 },
            FrameCorruption::Truncate { keep: 9 },
            FrameCorruption::BumpVersion,
            FrameCorruption::ForgeKind { kind: 1 },
            FrameCorruption::InflateLength { extra: 0 },
        ] {
            let damaged = corruption.apply(&[]);
            assert!(decode_frame::<Ping>(&damaged).is_err());
            let damaged = corruption.apply(&[1]);
            assert!(decode_frame::<Ping>(&damaged).is_err());
        }
    }

    #[test]
    fn garbage_frames_are_rejected_at_any_length_and_fill() {
        for len in [0usize, 1, 5, 6, 7, 32] {
            for fill in [0u8, 1, 0xFF] {
                let noise = garbage_frame(len, fill);
                assert_eq!(noise.len(), len);
                assert!(
                    decode_frame::<Ping>(&noise).is_err(),
                    "garbage ({len}, {fill:#x}) decoded"
                );
            }
        }
    }
}
