//! Wire-v2 batch frames and the version-aware v2 decode path.
//!
//! A batch frame coalesces every message a node sends to one peer in a
//! round behind a single 6-byte header:
//!
//! ```text
//! version=2 | kind=KIND_BATCH | payload_len: u32      (outer header)
//! count: u32                                          (sub-frame count)
//! count × ( kind: u8 | len: u32 | payload )           (sub-frames)
//! ```
//!
//! Sub-frames carry no version byte of their own — the batch is itself a
//! v2 construct — and a batch may not nest. Decoding is zero-copy: each
//! sub-payload is handed to [`Decode::decode_payload_bytes`] as a
//! [`Bytes`] view sliced out of the receive buffer, so variable-length
//! fields (update values) need never be copied on the cluster hot path.

use crate::error::WireError;
use crate::frame::{Decode, Encode, Frame, WireVersion, FRAME_HEADER_BYTES, KIND_BATCH};
use bytes::{BufMut, Bytes, BytesMut};

/// Bytes of one batch sub-frame header: kind (1) + payload length (4).
pub const BATCH_SUBHEADER_BYTES: usize = 5;

/// Builds a wire-v2 batch frame incrementally.
///
/// The outer header and sub-frame count are reserved up front and
/// backfilled by [`BatchEncoder::finish`], so encoding stays a single
/// forward pass over one buffer.
///
/// # Examples
///
/// ```
/// use rumor_wire::{decode_frame_v2, BatchEncoder, Decode, Encode, Reader, WireError};
/// # use bytes::{BufMut, BytesMut};
/// # #[derive(Debug, PartialEq)]
/// # struct Ping(u32);
/// # impl Encode for Ping {
/// #     fn kind(&self) -> u8 { 1 }
/// #     fn payload_len(&self) -> usize { 4 }
/// #     fn encode_payload(&self, buf: &mut BytesMut) { buf.put_u32(self.0); }
/// # }
/// # impl Decode for Ping {
/// #     fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
/// #         if kind != 1 { return Err(WireError::UnknownKind { kind }); }
/// #         let mut r = Reader::new(payload);
/// #         let msg = Ping(r.u32()?);
/// #         r.finish()?;
/// #         Ok(msg)
/// #     }
/// # }
/// let mut batch = BatchEncoder::new();
/// batch.push(&Ping(1));
/// batch.push(&Ping(2));
/// let frame = batch.finish();
/// let mut out = Vec::new();
/// decode_frame_v2::<Ping>(&frame, &mut out)?;
/// assert_eq!(out, vec![Ping(1), Ping(2)]);
/// # Ok::<(), WireError>(())
/// ```
#[derive(Debug)]
pub struct BatchEncoder {
    buf: BytesMut,
    count: u32,
}

impl BatchEncoder {
    /// Starts an empty batch (header and count reserved, backfilled on
    /// [`BatchEncoder::finish`]).
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(FRAME_HEADER_BYTES + 4);
        Frame::versioned(WireVersion::V2, KIND_BATCH, 0).put(&mut buf);
        buf.put_u32(0);
        Self { buf, count: 0 }
    }

    /// Appends one message as a sub-frame.
    ///
    /// # Panics
    ///
    /// Panics if the message's own kind is the batch kind (batches do
    /// not nest) or its payload exceeds the `u32` sub-frame limit.
    pub fn push<M: Encode + ?Sized>(&mut self, msg: &M) {
        let kind = msg.kind();
        assert!(kind != KIND_BATCH, "batch frames do not nest");
        let payload_len = msg.payload_len();
        let declared = u32::try_from(payload_len).expect("sub-frame payload exceeds u32 limit");
        self.buf.put_u8(kind);
        self.buf.put_u32(declared);
        let before = self.buf.len();
        msg.encode_payload(&mut self.buf);
        debug_assert_eq!(
            self.buf.len() - before,
            payload_len,
            "Encode::payload_len disagrees with Encode::encode_payload"
        );
        self.count += 1;
    }

    /// Number of sub-frames pushed so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True while no sub-frame has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Backfills the outer header and count, returning the finished
    /// frame bytes.
    pub fn finish(mut self) -> Bytes {
        let payload_len = (self.buf.len() - FRAME_HEADER_BYTES) as u32;
        self.buf[2..FRAME_HEADER_BYTES].copy_from_slice(&payload_len.to_be_bytes());
        self.buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + 4]
            .copy_from_slice(&self.count.to_be_bytes());
        self.buf.freeze()
    }
}

impl Default for BatchEncoder {
    fn default() -> Self {
        Self::new()
    }
}

/// On-wire size of a batch frame holding the given messages (outer
/// header + count + one sub-header and payload per message).
pub fn batch_frame_len<'a, M, I>(msgs: I) -> usize
where
    M: Encode + 'a,
    I: IntoIterator<Item = &'a M>,
{
    FRAME_HEADER_BYTES
        + 4
        + msgs
            .into_iter()
            .map(|m| BATCH_SUBHEADER_BYTES + m.payload_len())
            .sum::<usize>()
}

/// Deserialises one frame on the wire-v2 path, appending the decoded
/// message(s) to `out` — one for a single frame, the sub-frame count
/// for a batch. Existing elements of `out` are left untouched.
///
/// Accepts both codec versions but enforces version↔kind consistency:
/// a v1 kind must carry the v1 version byte and a v2 kind (or batch)
/// the v2 byte, so header version forgeries stay undecodable here too.
///
/// # Errors
///
/// Returns a [`WireError`] on header truncation, foreign or
/// inconsistent version, length mismatch (outer or at any sub-frame
/// boundary), unknown kind, nested batch, or a malformed payload. On
/// error `out` may hold a prefix of an aborted batch; callers treating
/// a batch as atomic should truncate `out` back to its prior length.
pub fn decode_frame_v2<M: Decode>(bytes: &Bytes, out: &mut Vec<M>) -> Result<(), WireError> {
    let (frame, payload) = Frame::parse_any(bytes)?;
    if frame.kind == KIND_BATCH {
        if frame.version != WireVersion::V2.byte() {
            return Err(WireError::BadVersion {
                found: frame.version,
            });
        }
        return decode_batch_payload(bytes, payload, out);
    }
    if frame.version != M::kind_version(frame.kind).byte() {
        return Err(WireError::BadVersion {
            found: frame.version,
        });
    }
    let payload = bytes.slice_ref(payload);
    out.push(M::decode_payload_bytes(frame.kind, &payload)?);
    Ok(())
}

fn decode_batch_payload<M: Decode>(
    source: &Bytes,
    payload: &[u8],
    out: &mut Vec<M>,
) -> Result<(), WireError> {
    let mut r = crate::reader::Reader::new(payload);
    let count = r.u32()?;
    for _ in 0..count {
        let kind = r.u8()?;
        if kind == KIND_BATCH {
            return Err(WireError::malformed("nested batch frame"));
        }
        let len = r.u32()? as usize;
        let raw = r.bytes(len)?;
        let sub = source.slice_ref(raw);
        out.push(M::decode_payload_bytes(kind, &sub)?);
    }
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame, WIRE_VERSION, WIRE_VERSION_V2};
    use crate::reader::Reader;

    /// A two-variant set where kind 2 is a v2-only kind.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Mixed {
        Old(u32),
        New(Vec<u8>),
    }

    impl Encode for Mixed {
        fn kind(&self) -> u8 {
            match self {
                Self::Old(_) => 1,
                Self::New(_) => 2,
            }
        }
        fn payload_len(&self) -> usize {
            match self {
                Self::Old(_) => 4,
                Self::New(b) => 4 + b.len(),
            }
        }
        fn encode_payload(&self, buf: &mut BytesMut) {
            match self {
                Self::Old(n) => buf.put_u32(*n),
                Self::New(b) => {
                    buf.put_u32(b.len() as u32);
                    buf.put_slice(b);
                }
            }
        }
        fn wire_version(&self) -> WireVersion {
            match self {
                Self::Old(_) => WireVersion::V1,
                Self::New(_) => WireVersion::V2,
            }
        }
    }

    impl Decode for Mixed {
        fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
            let mut r = Reader::new(payload);
            let msg = match kind {
                1 => Self::Old(r.u32()?),
                2 => {
                    let n = r.u32()? as usize;
                    Self::New(r.bytes(n)?.to_vec())
                }
                other => return Err(WireError::UnknownKind { kind: other }),
            };
            r.finish()?;
            Ok(msg)
        }
        fn kind_version(kind: u8) -> WireVersion {
            if kind == 2 {
                WireVersion::V2
            } else {
                WireVersion::V1
            }
        }
    }

    fn decode_v2(bytes: &Bytes) -> Result<Vec<Mixed>, WireError> {
        let mut out = Vec::new();
        decode_frame_v2(bytes, &mut out)?;
        Ok(out)
    }

    #[test]
    fn batch_roundtrips_and_len_matches() {
        let msgs = vec![Mixed::Old(7), Mixed::New(vec![1, 2, 3]), Mixed::Old(9)];
        let mut enc = BatchEncoder::new();
        for m in &msgs {
            enc.push(m);
        }
        assert_eq!(enc.count(), 3);
        let frame = enc.finish();
        assert_eq!(frame.len(), batch_frame_len(msgs.iter()));
        assert_eq!(frame[0], WIRE_VERSION_V2);
        assert_eq!(frame[1], KIND_BATCH);
        assert_eq!(decode_v2(&frame).unwrap(), msgs);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let enc = BatchEncoder::new();
        assert!(enc.is_empty());
        let frame = enc.finish();
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + 4);
        assert_eq!(decode_v2(&frame).unwrap(), vec![]);
    }

    #[test]
    fn v2_path_accepts_v1_frames() {
        let frame = encode_frame(&Mixed::Old(5));
        assert_eq!(frame[0], WIRE_VERSION);
        assert_eq!(decode_v2(&frame).unwrap(), vec![Mixed::Old(5)]);
    }

    #[test]
    fn v2_path_accepts_single_v2_frames() {
        let frame = encode_frame(&Mixed::New(vec![9]));
        assert_eq!(frame[0], WIRE_VERSION_V2);
        assert_eq!(decode_v2(&frame).unwrap(), vec![Mixed::New(vec![9])]);
    }

    #[test]
    fn v1_path_rejects_v2_frames_and_kinds() {
        // A batch frame carries version 2: strict v1 parse refuses it.
        let mut enc = BatchEncoder::new();
        enc.push(&Mixed::Old(1));
        assert_eq!(
            decode_frame::<Mixed>(&enc.finish()),
            Err(WireError::BadVersion {
                found: WIRE_VERSION_V2
            })
        );
        // A single v2-kind frame likewise carries version 2.
        let frame = encode_frame(&Mixed::New(vec![1]));
        assert_eq!(
            decode_frame::<Mixed>(&frame),
            Err(WireError::BadVersion {
                found: WIRE_VERSION_V2
            })
        );
        // A v2 kind smuggled behind a forged v1 version byte is an
        // unknown kind to the v1 decoder.
        let mut forged = frame.to_vec();
        forged[0] = WIRE_VERSION;
        assert_eq!(
            decode_frame::<Mixed>(&forged),
            Err(WireError::UnknownKind { kind: 2 })
        );
    }

    #[test]
    fn v2_path_rejects_version_kind_forgeries() {
        // v1 kind with a bumped version byte.
        let mut bumped = encode_frame(&Mixed::Old(1)).to_vec();
        bumped[0] = WIRE_VERSION_V2;
        assert_eq!(
            decode_v2(&Bytes::from(bumped)),
            Err(WireError::BadVersion {
                found: WIRE_VERSION_V2
            })
        );
        // v2 kind with a downgraded version byte.
        let mut lowered = encode_frame(&Mixed::New(vec![1])).to_vec();
        lowered[0] = WIRE_VERSION;
        assert_eq!(
            decode_v2(&Bytes::from(lowered)),
            Err(WireError::BadVersion {
                found: WIRE_VERSION
            })
        );
        // Batch kind with a v1 version byte.
        let mut enc = BatchEncoder::new();
        enc.push(&Mixed::Old(1));
        let mut batch = enc.finish().to_vec();
        batch[0] = WIRE_VERSION;
        assert_eq!(
            decode_v2(&Bytes::from(batch)),
            Err(WireError::BadVersion {
                found: WIRE_VERSION
            })
        );
    }

    #[test]
    fn truncation_at_every_sub_frame_boundary_is_rejected() {
        let mut enc = BatchEncoder::new();
        enc.push(&Mixed::Old(1));
        enc.push(&Mixed::New(vec![1, 2, 3]));
        let full = enc.finish().to_vec();
        // Cut the frame at every length, fixing up the outer declared
        // length so the cut lands on the sub-frame parser, and the count
        // so truncation is structural rather than a count shortfall.
        for cut in FRAME_HEADER_BYTES..full.len() - 1 {
            let mut bytes = full[..cut].to_vec();
            let declared = (cut - FRAME_HEADER_BYTES) as u32;
            bytes[2..6].copy_from_slice(&declared.to_be_bytes());
            assert!(
                decode_v2(&Bytes::from(bytes)).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn sub_frame_payload_is_a_zero_copy_view() {
        let mut enc = BatchEncoder::new();
        enc.push(&Mixed::New(vec![42; 64]));
        let frame = enc.finish();
        struct Raw(Bytes);
        impl Decode for Raw {
            fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
                let _ = kind;
                Ok(Self(Bytes::copy_from_slice(payload)))
            }
            fn decode_payload_bytes(kind: u8, payload: &Bytes) -> Result<Self, WireError> {
                let _ = kind;
                Ok(Self(payload.clone()))
            }
        }
        let mut out: Vec<Raw> = Vec::new();
        decode_frame_v2(&frame, &mut out).unwrap();
        // The sub-payload view points into the original frame allocation.
        let sub = &out[0].0;
        let frame_base = frame.as_ref().as_ptr() as usize;
        let sub_base = sub.as_ref().as_ptr() as usize;
        assert!(sub_base >= frame_base && sub_base < frame_base + frame.len());
    }

    #[test]
    fn nested_batch_is_rejected() {
        // Hand-craft a batch whose sub-frame claims the batch kind.
        let mut buf = BytesMut::new();
        Frame::versioned(WireVersion::V2, KIND_BATCH, 4 + BATCH_SUBHEADER_BYTES).put(&mut buf);
        buf.put_u32(1);
        buf.put_u8(KIND_BATCH);
        buf.put_u32(0);
        assert!(matches!(
            decode_v2(&buf.freeze()),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn batch_count_must_match_sub_frames() {
        // Declare two sub-frames but provide one: truncated.
        let mut enc = BatchEncoder::new();
        enc.push(&Mixed::Old(1));
        let mut bytes = enc.finish().to_vec();
        bytes[6..10].copy_from_slice(&2u32.to_be_bytes());
        assert!(matches!(
            decode_v2(&Bytes::from(bytes.clone())),
            Err(WireError::Truncated { .. })
        ));
        // Declare zero: the real sub-frame becomes trailing bytes.
        bytes[6..10].copy_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            decode_v2(&Bytes::from(bytes)),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn every_drawn_corruption_is_rejected_on_the_v2_path() {
        use crate::corrupt::FrameCorruption;
        let mut enc = BatchEncoder::new();
        enc.push(&Mixed::Old(3));
        enc.push(&Mixed::New(vec![7; 5]));
        let clean = enc.finish();
        for mode in 0..8u32 {
            for detail in [0u32, 1, 2, 3, 4, 5, 63, 255] {
                let corruption = FrameCorruption::from_draws(mode, detail);
                let corrupted = corruption.apply(&clean);
                assert!(
                    decode_v2(&corrupted).is_err(),
                    "corruption {corruption:?} must not decode"
                );
            }
        }
    }
}
