//! Source loading and sanitising.
//!
//! The rules operate on *sanitised* lines: the raw text with every
//! comment, string literal and char literal blanked to spaces (newlines
//! preserved), so a pattern like `Instant::now` only matches real code —
//! never prose in a doc comment or the lint's own pattern tables. During
//! the same pass the scanner collects `// rumor-lint: allow(<rule>) --
//! <reason>` suppression comments and the line spans of `#[cfg(test)]`
//! items, which several rules exempt.

use std::fs;
use std::io;
use std::path::Path;

/// An inline suppression comment: `// rumor-lint: allow(<rule>) -- <reason>`.
///
/// The reason is mandatory — an allow without one does not suppress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The stated justification.
    pub reason: String,
}

/// One scanned source file: sanitised lines plus suppression and
/// test-span metadata.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated.
    pub rel: String,
    /// Sanitised lines (1-based indexing via `line - 1`).
    pub lines: Vec<String>,
    /// Inline suppressions found in the file.
    pub allows: Vec<Allow>,
    /// 1-based inclusive line spans of `#[cfg(test)]` items.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Loads and sanitises `path`, recording it relative to `root`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file read error.
    pub fn load(root: &Path, path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Ok(Self::from_text(rel, &text))
    }

    /// Builds a `SourceFile` from in-memory text (used by the lint's own
    /// tests).
    pub fn from_text(rel: String, text: &str) -> Self {
        let (sanitized, allows) = sanitize(text);
        let lines: Vec<String> = sanitized.split('\n').map(str::to_owned).collect();
        let test_spans = find_test_spans(&lines);
        Self {
            rel,
            lines,
            allows,
            test_spans,
        }
    }

    /// Whether the 1-based `line` falls inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| line >= start && line <= end)
    }

    /// The suppression covering `rule` at `line`, if any: an allow
    /// comment trailing the same line, or alone on the line directly
    /// above (a trailing allow never spills onto the next line).
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&Allow> {
        self.allows.iter().find(|a| {
            a.rule == rule
                && (a.line == line || (a.line + 1 == line && self.comment_only_line(a.line)))
        })
    }

    /// Whether the 1-based `line` sanitises to pure whitespace, i.e. it
    /// held only comments.
    fn comment_only_line(&self, line: usize) -> bool {
        self.lines
            .get(line - 1)
            .is_some_and(|l| l.trim().is_empty())
    }

    /// Whether the file lives under `crates/<name>/`; returns the crate
    /// directory name.
    pub fn crate_dir(&self) -> Option<&str> {
        let mut parts = self.rel.split('/');
        if parts.next() == Some("crates") {
            parts.next()
        } else {
            None
        }
    }

    /// Whether the file is non-library input: integration tests,
    /// examples or benches (either at the root or inside a crate).
    pub fn is_test_or_example_file(&self) -> bool {
        let parts: Vec<&str> = self.rel.split('/').collect();
        matches!(
            parts.as_slice(),
            ["tests" | "examples", ..] | ["crates", _, "tests" | "examples" | "benches", ..]
        )
    }
}

/// Blank comments and literals to spaces, preserving line structure, and
/// collect `rumor-lint: allow(...)` comments on the way.
fn sanitize(text: &str) -> (String, Vec<Allow>) {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: capture for allow parsing, blank it.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(' ');
                    i += 1;
                }
                if let Some(allow) = parse_allow(&text[start..i], line) {
                    allows.push(allow);
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested per Rust.
                let mut depth = 1usize;
                out.push_str("  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == b'\n' {
                        out.push('\n');
                        line += 1;
                        i += 1;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
            'r' | 'b' if is_raw_string_start(bytes, i) => {
                let (consumed, newlines) = skip_raw_string(bytes, i);
                for _ in 0..consumed {
                    out.push(' ');
                }
                for _ in 0..newlines {
                    // Keep line structure: re-insert the newlines blanked
                    // above (skip_raw_string counts them).
                    line += 1;
                }
                // Replace the blanks covering newlines with real newlines.
                truncate_and_renewline(&mut out, consumed, newlines, bytes, i);
                i += consumed;
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.push_str("  ");
                            i += 2;
                        }
                        b'"' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push('\n');
                            line += 1;
                            i += 1;
                        }
                        _ => {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime. `'\...'` and `'x'` are
                // literals; `'ident` (no closing quote right after) is a
                // lifetime and passes through.
                if bytes.get(i + 1) == Some(&b'\\') {
                    out.push(' ');
                    i += 1;
                    // Skip escape body up to the closing quote.
                    while i < bytes.len() && bytes[i] != b'\'' {
                        out.push(' ');
                        i += if bytes[i] == b'\\' { 2 } else { 1 };
                    }
                    if i < bytes.len() {
                        out.push(' ');
                        i += 1;
                    }
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    out.push_str("   ");
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, allows)
}

/// Whether position `i` starts a raw (byte) string: `r"`, `r#`, `br"`,
/// `br#`, `b"`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"' | b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"' | b'#')),
            _ => false,
        },
        _ => false,
    }
    // A preceding identifier character would make this part of an ident
    // (e.g. `attr`); callers only reach here from a fresh char, and the
    // false-positive risk (an ident ending in `r` followed by `"` with no
    // operator) does not occur in practice.
}

/// Consumes a raw/byte string starting at `i`; returns (consumed bytes,
/// newlines inside).
fn skip_raw_string(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    // Prefix: r, b, br, rb.
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        // Not actually a string (e.g. `b'#'` weirdness): consume one byte.
        return (1, 0);
    }
    j += 1;
    let mut newlines = 0usize;
    if hashes == 0 {
        // Plain "..." (possibly a b"..."): honour escapes.
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                b'\n' => {
                    newlines += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
    } else {
        // Raw string: ends at `"` followed by `hashes` hashes.
        while j < bytes.len() {
            if bytes[j] == b'"'
                && bytes[j + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
            {
                j += 1 + hashes;
                break;
            }
            if bytes[j] == b'\n' {
                newlines += 1;
            }
            j += 1;
        }
    }
    (j - i, newlines)
}

/// Fixes up the blanks just pushed for a raw string so the newlines it
/// contained stay newlines in the sanitised text.
fn truncate_and_renewline(
    out: &mut String,
    consumed: usize,
    newlines: usize,
    bytes: &[u8],
    i: usize,
) {
    if newlines == 0 {
        return;
    }
    out.truncate(out.len() - consumed);
    for &b in &bytes[i..i + consumed] {
        out.push(if b == b'\n' { '\n' } else { ' ' });
    }
}

/// Parses a `rumor-lint: allow(<rule>) -- <reason>` comment.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let idx = comment.find("rumor-lint:")?;
    let rest = comment[idx + "rumor-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_owned();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--")?.trim().to_owned();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some(Allow { rule, line, reason })
}

/// Finds 1-based inclusive line spans of `#[cfg(test)]` items by brace
/// matching from the attribute to the close of the item it decorates.
fn find_test_spans(lines: &[String]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        if !l.contains("#[cfg(test)]") {
            continue;
        }
        let start = idx + 1;
        // Scan forward for the first `{`, then match braces.
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = lines.len();
        'outer: for (j, body) in lines.iter().enumerate().skip(idx) {
            for c in body.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // An attribute on a braceless item (`#[cfg(test)]
                    // use ...;`) ends at the first semicolon before any
                    // brace opens.
                    ';' if !opened => {
                        end = j + 1;
                        break 'outer;
                    }
                    _ => {}
                }
                if opened && depth == 0 {
                    end = j + 1;
                    break 'outer;
                }
            }
        }
        spans.push((start, end));
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(text: &str) -> SourceFile {
        SourceFile::from_text("crates/demo/src/lib.rs".into(), text)
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = sf("let x = \"Instant::now\"; // Instant::now\nInstant::now();\n");
        assert!(!f.lines[0].contains("Instant::now"));
        assert!(f.lines[1].contains("Instant::now"));
    }

    #[test]
    fn block_comments_preserve_line_numbers() {
        let f = sf("/* a\n b\n c */\nHashMap\n");
        assert!(f.lines[3].contains("HashMap"));
        assert_eq!(f.lines.len(), 5);
    }

    #[test]
    fn nested_block_comments() {
        let f = sf("/* outer /* inner */ still comment */ code()\n");
        assert!(f.lines[0].contains("code()"));
        assert!(!f.lines[0].contains("outer"));
    }

    #[test]
    fn raw_strings_are_blanked_with_lines_kept() {
        let f = sf("let s = r#\"one\ntwo HashMap\"#;\nafter\n");
        assert!(!f.lines[1].contains("HashMap"));
        assert!(f.lines[2].contains("after"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let f = sf("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }\n");
        assert!(f.lines[0].contains("'a"));
        assert!(!f.lines[0].contains("'x'"));
    }

    #[test]
    fn allow_comment_parsed_with_reason() {
        let f = sf("foo(); // rumor-lint: allow(determinism) -- bench timing\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "determinism");
        assert_eq!(f.allows[0].reason, "bench timing");
        assert!(f.allow_for("determinism", 1).is_some());
        assert!(f.allow_for("sink-idiom", 1).is_none());
    }

    #[test]
    fn allow_without_reason_is_ignored() {
        let f = sf("foo(); // rumor-lint: allow(determinism)\n");
        assert!(f.allows.is_empty());
    }

    #[test]
    fn allow_on_previous_line_covers_next() {
        let f = sf("// rumor-lint: allow(determinism) -- fixture\nfoo();\n");
        assert!(f.allow_for("determinism", 2).is_some());
        assert!(f.allow_for("determinism", 3).is_none());
    }

    #[test]
    fn cfg_test_spans_cover_mod() {
        let f = sf("fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n");
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn crate_dir_and_input_kind() {
        let f = SourceFile::from_text("crates/core/src/peer.rs".into(), "");
        assert_eq!(f.crate_dir(), Some("core"));
        assert!(!f.is_test_or_example_file());
        let t = SourceFile::from_text("tests/engine_parity.rs".into(), "");
        assert_eq!(t.crate_dir(), None);
        assert!(t.is_test_or_example_file());
        let b = SourceFile::from_text("crates/bench/benches/micro.rs".into(), "");
        assert!(b.is_test_or_example_file());
    }
}
