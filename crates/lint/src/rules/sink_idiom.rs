//! `sink-idiom` — the allocation-free effect API.
//!
//! Node callbacks write into a reusable `rumor_net::EffectSink`; nothing
//! returns `Vec<Effect>` (ROADMAP: "allocation-free round engine", PR 4).
//! The rule flags (a) any function returning `Vec<Effect…>` anywhere,
//! and (b) any `Vec<Effect…>` type mention in protocol crates
//! (`core`, `baselines`, `pgrid`) outside tests — hot-path effect
//! buffers are a regression even when not returned. The sink's own
//! backing store in `rumor-net` is the one sanctioned `Vec<Effect>`.

use crate::report::Finding;
use crate::rules::push;
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "sink-idiom";

/// Crates whose non-test code may not mention `Vec<Effect` at all.
const PROTOCOL_CRATES: [&str; 3] = ["core", "baselines", "pgrid"];

/// Runs the rule.
pub fn check(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.rel.starts_with("crates/lint/") {
            continue;
        }
        let protocol_crate = file
            .crate_dir()
            .is_some_and(|c| PROTOCOL_CRATES.contains(&c))
            && !file.is_test_or_example_file();
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if file.is_test_line(lineno) {
                continue;
            }
            if line.contains("-> Vec<Effect") {
                push(
                    out,
                    NAME,
                    file,
                    lineno,
                    "function returns `Vec<Effect…>`: write effects into \
                     `&mut EffectSink<_>` instead (allocation-free engine invariant)"
                        .to_owned(),
                );
            } else if protocol_crate && line.contains("Vec<Effect") {
                push(
                    out,
                    NAME,
                    file,
                    lineno,
                    "`Vec<Effect…>` buffer in protocol code: effects flow through \
                     `EffectSink`, not per-call vectors"
                        .to_owned(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::from_text(rel.into(), text);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out
    }

    #[test]
    fn flags_vec_effect_return_anywhere() {
        let found = run_on(
            "crates/net/src/x.rs",
            "fn on_message(&mut self) -> Vec<Effect<M>> {\n}\n",
        );
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn flags_buffer_in_protocol_crate_only() {
        let text = "let buf: Vec<Effect<M>> = Vec::new();\n";
        assert_eq!(run_on("crates/core/src/x.rs", text).len(), 1);
        assert!(run_on("crates/net/src/sink.rs", text).is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let text = "#[cfg(test)]\nmod tests {\n  fn t() -> Vec<Effect<M>> { vec![] }\n}\n";
        assert!(run_on("crates/core/src/x.rs", text).is_empty());
    }
}
