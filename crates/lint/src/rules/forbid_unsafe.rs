//! `forbid-unsafe` — every library crate rejects `unsafe` at the root.
//!
//! The whole tree is sans-IO safe Rust; `#![forbid(unsafe_code)]` in
//! each crate root makes that machine-checked by the compiler itself.
//! This rule keeps the attribute present: every `crates/*/src/lib.rs`
//! and the facade `src/lib.rs` must carry it.

use crate::report::Finding;
use crate::rules::push;
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "forbid-unsafe";

/// Runs the rule.
pub fn check(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        let is_crate_root = file.rel == "src/lib.rs"
            || (file.rel.starts_with("crates/")
                && file.rel.ends_with("/src/lib.rs")
                && file.rel.matches('/').count() == 3);
        if !is_crate_root {
            continue;
        }
        let has_forbid = file
            .lines
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            push(
                out,
                NAME,
                file,
                0,
                "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::from_text(rel.into(), text);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out
    }

    #[test]
    fn flags_missing_forbid_on_crate_roots() {
        assert_eq!(run_on("crates/demo/src/lib.rs", "pub fn f() {}\n").len(), 1);
        assert_eq!(run_on("src/lib.rs", "pub use x;\n").len(), 1);
    }

    #[test]
    fn present_attribute_passes() {
        let text = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(run_on("crates/demo/src/lib.rs", text).is_empty());
    }

    #[test]
    fn non_roots_are_ignored() {
        assert!(run_on("crates/demo/src/other.rs", "pub fn f() {}\n").is_empty());
        assert!(run_on("crates/demo/tests/it.rs", "fn t() {}\n").is_empty());
    }
}
