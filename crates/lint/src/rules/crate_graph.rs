//! `crate-graph` — the README dependency diagram as a layering check.
//!
//! The workspace is layered: foundations (`types`, `wire`, `metrics`,
//! `analysis`) at the bottom, then `churn`/`obs` → `net` → `core` →
//! `sim` → the protocol/runtime tier (`baselines`, `pgrid`, `cluster`)
//! → `bench`/`fuzz` → the `rumor` facade on top. Every normal dependency edge between
//! workspace crates must point *strictly downward* in that order —
//! `core` may never grow an edge to `sim`, `baselines`/`pgrid` may never
//! be depended on by `sim`, and so on. Dev-dependencies are exempt
//! (tests may reach sideways: `cluster` mounts `core` peers in its
//! integration tests). Additional shape constraints:
//!
//! * `rumor-lint` itself has **zero** dependencies — the linter cannot
//!   be contaminated by the tree it judges.
//! * the `rumor` facade depends on exactly the thirteen library crates
//!   it re-exports, and its `src/lib.rs` contains re-exports only — no
//!   functions, types or logic of its own.
//!
//! Manifest-level findings have no inline-suppression channel: a wrong
//! edge is fixed or the layer map here is amended in review.

use crate::manifest::Manifest;
use crate::report::Finding;
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "crate-graph";

/// Layer of each workspace crate; edges must strictly decrease.
const LAYERS: [(&str, u8); 16] = [
    ("rumor-types", 0),
    ("rumor-wire", 0),
    ("rumor-metrics", 0),
    ("rumor-analysis", 0),
    ("rumor-churn", 1),
    ("rumor-obs", 1),
    ("rumor-net", 2),
    ("rumor-core", 3),
    ("rumor-sim", 4),
    ("rumor-baselines", 5),
    ("rumor-pgrid", 5),
    ("rumor-cluster", 5),
    ("rumor-bench", 6),
    ("rumor-fuzz", 6),
    ("rumor", 7),
    ("rumor-lint", 8),
];

/// The facade's exact dependency set.
const FACADE_DEPS: [&str; 13] = [
    "rumor-analysis",
    "rumor-baselines",
    "rumor-churn",
    "rumor-cluster",
    "rumor-core",
    "rumor-fuzz",
    "rumor-metrics",
    "rumor-net",
    "rumor-obs",
    "rumor-pgrid",
    "rumor-sim",
    "rumor-types",
    "rumor-wire",
];

/// Item-defining tokens the facade root must not contain.
const ITEM_TOKENS: [&str; 7] = [
    "fn ", "struct ", "enum ", "trait ", "impl ", "mod ", "static ",
];

fn layer_of(name: &str) -> Option<u8> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// Runs the rule over parsed manifests plus the facade root source.
pub fn check(manifests: &[(String, Manifest)], files: &[SourceFile], out: &mut Vec<Finding>) {
    for (path, m) in manifests {
        let mut emit = |msg: String| {
            out.push(Finding {
                rule: NAME.to_owned(),
                file: path.clone(),
                line: 0,
                message: msg,
            });
        };
        let Some(layer) = layer_of(&m.name) else {
            emit(format!(
                "crate `{}` is not in the lint's layer map — place it in the README graph \
                 and in rules/crate_graph.rs",
                m.name
            ));
            continue;
        };
        if m.name == "rumor-lint" {
            if !m.deps.is_empty() {
                emit(format!(
                    "rumor-lint must stay dependency-free (found: {})",
                    m.deps.join(", ")
                ));
            }
            continue;
        }
        for dep in &m.deps {
            if !dep.starts_with("rumor") {
                continue; // vendored externals are outside the graph
            }
            match layer_of(dep) {
                None => emit(format!("dependency `{dep}` is not in the lint's layer map",)),
                Some(dep_layer) if dep_layer >= layer => emit(format!(
                    "edge `{}` → `{dep}` points upward or sideways in the crate graph \
                     (layer {layer} → {dep_layer}); the README layering forbids it",
                    m.name
                )),
                Some(_) => {}
            }
        }
        if m.name == "rumor" {
            let mut deps = m.deps.clone();
            deps.retain(|d| d.starts_with("rumor"));
            deps.sort();
            if deps != FACADE_DEPS {
                emit(format!(
                    "facade dependency set drifted from the thirteen re-exported crates \
                     (found: {})",
                    deps.join(", ")
                ));
            }
        }
    }
    check_facade_source(files, out);
}

/// The facade root may only re-export: `pub use` lines, attributes and
/// docs — no item definitions of its own.
fn check_facade_source(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(facade) = files.iter().find(|f| f.rel == "src/lib.rs") else {
        return;
    };
    for (idx, line) in facade.lines.iter().enumerate() {
        let lineno = idx + 1;
        if facade.is_test_line(lineno) {
            continue;
        }
        let mut head = line.trim_start();
        for vis in ["pub(crate) ", "pub(super) ", "pub "] {
            if let Some(rest) = head.strip_prefix(vis) {
                head = rest;
                break;
            }
        }
        if ITEM_TOKENS.iter().any(|t| head.starts_with(t)) {
            out.push(Finding {
                rule: NAME.to_owned(),
                file: facade.rel.clone(),
                line: lineno,
                message: "facade `src/lib.rs` defines an item: the root crate re-exports \
                          the library crates and adds nothing of its own"
                    .to_owned(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    fn run(manifest_text: &str, path: &str) -> Vec<Finding> {
        let m = manifest::parse(manifest_text);
        let mut out = Vec::new();
        check(&[(path.to_owned(), m)], &[], &mut out);
        out
    }

    #[test]
    fn downward_edges_pass() {
        let text = "[package]\nname = \"rumor-core\"\n[dependencies]\nbytes.workspace = true\nrumor-net.workspace = true\nrumor-types.workspace = true\n";
        assert!(run(text, "crates/core/Cargo.toml").is_empty());
    }

    #[test]
    fn upward_edge_is_flagged() {
        let text = "[package]\nname = \"rumor-core\"\n[dependencies]\nrumor-sim.workspace = true\n";
        let found = run(text, "crates/core/Cargo.toml");
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("upward or sideways"));
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let text = "[package]\nname = \"rumor-cluster\"\n[dev-dependencies]\nrumor-core.workspace = true\nrumor-baselines.workspace = true\n";
        assert!(run(text, "crates/cluster/Cargo.toml").is_empty());
    }

    #[test]
    fn lint_must_be_dependency_free() {
        let text = "[package]\nname = \"rumor-lint\"\n[dependencies]\nserde.workspace = true\n";
        let found = run(text, "crates/lint/Cargo.toml");
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("dependency-free"));
    }

    #[test]
    fn unknown_crate_is_flagged() {
        let text = "[package]\nname = \"rumor-mystery\"\n";
        assert_eq!(run(text, "crates/mystery/Cargo.toml").len(), 1);
    }

    #[test]
    fn facade_item_definitions_are_flagged() {
        let facade = SourceFile::from_text(
            "src/lib.rs".into(),
            "#![forbid(unsafe_code)]\npub use rumor_core as core;\npub fn sneaky() {}\n",
        );
        let mut out = Vec::new();
        check(&[], &[facade], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }
}
