//! `single-round-loop` — one driver, one replication harness.
//!
//! `rumor_sim::Driver` owns the round loop and `rumor_sim::Experiment`
//! owns the Monte Carlo trial loop; no other crate may re-grow either
//! (ROADMAP: "one driver, many protocols", "one replication harness").
//! The rule flags `for <ident> in …` loops whose induction variable is a
//! trial/replication/round counter anywhere outside `crates/sim/src/`.
//! Loops inside `#[cfg(test)]` items are exempt (tests drive fixtures
//! round by round); genuine domain iteration elsewhere — e.g. replaying
//! a churn model to record a trace — carries an inline allow.

use crate::report::Finding;
use crate::rules::push;
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "single-round-loop";

/// Induction variables that signal an orchestration loop.
const LOOP_VARS: [&str; 8] = [
    "trial",
    "trials",
    "rep",
    "reps",
    "replication",
    "replications",
    "round",
    "rounds",
];

/// Runs the rule.
pub fn check(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.rel.starts_with("crates/sim/src/") || file.rel.starts_with("crates/lint/") {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if file.is_test_line(lineno) {
                continue;
            }
            if let Some(var) = loop_var(line) {
                push(
                    out,
                    NAME,
                    file,
                    lineno,
                    format!(
                        "`for {var} in …` loop outside rumor-sim: round/trial orchestration \
                         belongs to Driver/Experiment (mount a Protocol or use \
                         Experiment::run instead)"
                    ),
                );
            }
        }
    }
}

/// The offending induction variable, if the line opens a counter loop.
fn loop_var(line: &str) -> Option<&'static str> {
    let mut rest = line;
    while let Some(idx) = rest.find("for ") {
        // Must be the `for` keyword, not the tail of an identifier.
        let at_start = idx == 0
            || !rest[..idx]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[idx + 4..];
        if at_start {
            let mut words = after.split_whitespace();
            if let (Some(var), Some("in")) = (words.next(), words.next()) {
                if let Some(&hit) = LOOP_VARS.iter().find(|&&v| v == var) {
                    return Some(hit);
                }
            }
        }
        rest = &rest[idx + 4..];
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::from_text(rel.into(), text);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out
    }

    #[test]
    fn flags_trial_loop_outside_sim() {
        let found = run_on("crates/bench/src/x.rs", "for trial in 0..n {\n}\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn sim_driver_is_exempt() {
        assert!(run_on("crates/sim/src/driver.rs", "for round in 0..r {}\n").is_empty());
    }

    #[test]
    fn cfg_test_loops_are_exempt() {
        let text = "#[cfg(test)]\nmod tests {\n  fn t() { for round in 0..9 {} }\n}\n";
        assert!(run_on("crates/churn/src/x.rs", text).is_empty());
    }

    #[test]
    fn unrelated_for_loops_pass() {
        assert!(run_on("crates/core/src/x.rs", "for peer in &self.known {}\n").is_empty());
        assert!(run_on("crates/core/src/x.rs", "info_for round trip\n").is_empty());
    }
}
