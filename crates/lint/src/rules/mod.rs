//! The six codified invariants, one module per rule.
//!
//! Every rule scans the sanitised sources (or the manifests) and emits
//! raw [`Finding`]s; the driver in `lib.rs` then splits them into
//! violations and inline-suppressed entries. Rule names are stable —
//! they are the key used by `// rumor-lint: allow(<rule>) -- <reason>`
//! comments and by the JSON report.

pub mod crate_graph;
pub mod determinism;
pub mod forbid_unsafe;
pub mod round_loop;
pub mod sink_idiom;
pub mod wire_framing;

use crate::report::Finding;
use crate::source::SourceFile;

/// Names of all rules, in the order they run.
pub const RULE_NAMES: [&str; 6] = [
    round_loop::NAME,
    sink_idiom::NAME,
    wire_framing::NAME,
    determinism::NAME,
    crate_graph::NAME,
    forbid_unsafe::NAME,
];

/// Runs every source-level rule over the scanned files.
pub fn run_source_rules(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    round_loop::check(files, &mut out);
    sink_idiom::check(files, &mut out);
    wire_framing::check(files, &mut out);
    determinism::check(files, &mut out);
    forbid_unsafe::check(files, &mut out);
    out
}

/// Emits one finding.
pub(crate) fn push(
    out: &mut Vec<Finding>,
    rule: &str,
    file: &SourceFile,
    line: usize,
    message: String,
) {
    out.push(Finding {
        rule: rule.to_owned(),
        file: file.rel.clone(),
        line,
        message,
    });
}

/// The first word-boundary occurrence of `needle` in `hay`: the match
/// must not be glued to an identifier character on either side, so
/// `HashMap` does not fire on `MyHashMapLike`.
pub(crate) fn token_match(hay: &str, needle: &str) -> bool {
    let mut from = 0usize;
    while let Some(idx) = hay[from..].find(needle) {
        let start = from + idx;
        let end = start + needle.len();
        let before_ok = start == 0
            || !hay[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = end == hay.len()
            || !hay[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::token_match;

    #[test]
    fn token_match_respects_boundaries() {
        assert!(token_match("use std::collections::HashMap;", "HashMap"));
        assert!(token_match("x: HashMap<u32, u32>", "HashMap"));
        assert!(!token_match("MyHashMapLike", "HashMap"));
        assert!(!token_match("HashMapper", "HashMap"));
        assert!(token_match("Instant::now()", "Instant::now"));
        assert!(!token_match("MyInstant::nowish", "Instant::now"));
    }
}
