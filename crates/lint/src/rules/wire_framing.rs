//! `single-wire-framing` — one wire format.
//!
//! `rumor-wire` owns the 6-byte version/kind/length frame header;
//! message sets implement `Encode`/`Decode` for their *payloads* and go
//! through `encode_frame`/`decode_frame` (ROADMAP: "one wire format,
//! two execution paths"). The rule flags header construction primitives
//! — `Frame::new`, `Frame::versioned`, `Frame {`, `WIRE_VERSION`,
//! `FRAME_HEADER_BYTES`, and the wire-v2 constants `WIRE_VERSION_V2`,
//! `KIND_BATCH`, `BATCH_SUBHEADER_BYTES` — in non-test library code
//! outside `crates/wire/`. Cross-crate code selects a codec through the
//! `WireVersion` enum, never raw version bytes. Integration tests and
//! examples may probe headers (the rejection matrices do).

use crate::report::Finding;
use crate::rules::{push, token_match};
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "single-wire-framing";

/// Tokens that mean "I am assembling or inspecting a frame header".
const HEADER_TOKENS: [&str; 8] = [
    "Frame::new",
    "Frame::versioned",
    "Frame {",
    "WIRE_VERSION",
    "WIRE_VERSION_V2",
    "KIND_BATCH",
    "BATCH_SUBHEADER_BYTES",
    "FRAME_HEADER_BYTES",
];

/// Runs the rule.
pub fn check(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.rel.starts_with("crates/wire/")
            || file.rel.starts_with("crates/lint/")
            || file.is_test_or_example_file()
        {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if file.is_test_line(lineno) {
                continue;
            }
            for token in HEADER_TOKENS {
                if token_match(line, token) {
                    push(
                        out,
                        NAME,
                        file,
                        lineno,
                        format!(
                            "`{token}` outside rumor-wire: frame headers are built only by \
                             the wire crate — implement Encode/Decode and use \
                             encode_frame/decode_frame"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::from_text(rel.into(), text);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out
    }

    #[test]
    fn flags_header_construction_outside_wire() {
        let found = run_on(
            "crates/cluster/src/x.rs",
            "let f = Frame::new(kind, len);\n",
        );
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn flags_wire_v2_constants_outside_wire() {
        for line in [
            "let b = BatchEncoder::with(KIND_BATCH);\n",
            "let v = WIRE_VERSION_V2;\n",
            "let n = BATCH_SUBHEADER_BYTES + 1;\n",
            "let f = Frame::versioned(v, k, n);\n",
        ] {
            assert_eq!(
                run_on("crates/cluster/src/cell.rs", line).len(),
                1,
                "expected a finding for {line:?}"
            );
        }
        // The sanctioned cross-crate surface stays clean.
        assert!(run_on(
            "crates/cluster/src/builder.rs",
            "let w = WireVersion::V2;\n"
        )
        .is_empty());
    }

    #[test]
    fn wire_crate_and_tests_are_exempt() {
        let text = "let v = WIRE_VERSION;\n";
        assert!(run_on("crates/wire/src/frame.rs", text).is_empty());
        assert!(run_on("tests/wire_roundtrip.rs", text).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { use rumor_wire::FRAME_HEADER_BYTES; }\n";
        assert!(run_on("crates/core/src/message.rs", in_test).is_empty());
    }
}
