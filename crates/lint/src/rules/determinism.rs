//! `determinism` — bit-reproducible seeded simulation.
//!
//! Every figure and golden pin rests on `cargo test` being deterministic
//! (ChaCha8 + `rumor_types::seed` everywhere). Two sub-checks:
//!
//! 1. **Ambient time and entropy** — `SystemTime::now`, `Instant::now`,
//!    `std::thread::sleep`, `thread_rng`, `from_entropy` and
//!    `rand::random` are forbidden in *all* scanned code. Sanctioned
//!    call sites (bench wall-clock timing, real-time cluster pacing)
//!    carry an inline `rumor-lint: allow(determinism) -- <reason>`.
//! 2. **Hash-ordered collections** — `HashMap`/`HashSet` iteration
//!    order is seeded per process and can leak into RNG draws, message
//!    order or report contents. Library code (everything under
//!    `crates/*/src/` and the facade `src/`) uses `BTreeMap`/`BTreeSet`
//!    or carries an allow explaining why ordering cannot escape.
//!    `#[cfg(test)]` items, integration tests and examples are exempt
//!    (a `HashSet` used for a distinctness assertion is harmless).

use crate::report::Finding;
use crate::rules::{push, token_match};
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "determinism";

/// Forbidden ambient time / entropy sources.
const TIME_TOKENS: [&str; 6] = [
    "SystemTime::now",
    "Instant::now",
    "thread::sleep",
    "thread_rng",
    "from_entropy",
    "rand::random",
];

/// Hash-ordered collection types.
const HASH_TOKENS: [&str; 2] = ["HashMap", "HashSet"];

/// Runs the rule.
pub fn check(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.rel.starts_with("crates/lint/") {
            continue;
        }
        let library_code = !file.is_test_or_example_file()
            && (file.crate_dir().is_some() || file.rel.starts_with("src/"));
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            for token in TIME_TOKENS {
                if token_match(line, token) {
                    push(
                        out,
                        NAME,
                        file,
                        lineno,
                        format!(
                            "`{token}`: ambient time/entropy breaks seeded reproducibility — \
                             draw from the scenario's ChaCha8 substreams, or allow with a \
                             reason at a sanctioned timing site"
                        ),
                    );
                }
            }
            if !library_code || file.is_test_line(lineno) {
                continue;
            }
            for token in HASH_TOKENS {
                if token_match(line, token) {
                    push(
                        out,
                        NAME,
                        file,
                        lineno,
                        format!(
                            "`{token}` in deterministic library code: iteration order is \
                             per-process random and can reach RNG draws, message order or \
                             reports — use BTreeMap/BTreeSet (or allow with a reason proving \
                             order never escapes)"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::from_text(rel.into(), text);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out
    }

    #[test]
    fn flags_wall_clock_everywhere() {
        assert_eq!(
            run_on("crates/bench/src/x.rs", "let t = Instant::now();\n").len(),
            1
        );
        assert_eq!(
            run_on("tests/some_test.rs", "std::thread::sleep(d);\n").len(),
            1
        );
    }

    #[test]
    fn flags_hash_collections_in_library_code_only() {
        let text = "use std::collections::HashMap;\n";
        assert_eq!(run_on("crates/core/src/peer.rs", text).len(), 1);
        assert!(run_on("tests/replication.rs", text).is_empty());
        assert!(run_on("examples/quickstart.rs", text).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n}\n";
        assert!(run_on("crates/types/src/seed.rs", in_test).is_empty());
    }

    #[test]
    fn doc_comments_do_not_fire() {
        assert!(run_on("crates/core/src/x.rs", "/// beats a HashMap here\n").is_empty());
    }
}
