//! A minimal `Cargo.toml` reader — just enough structure for the
//! crate-graph rule: the package name and the dependency names per
//! section. No external TOML crate; the workspace manifests are plain
//! `name.workspace = true` / `name = { ... }` entries.

/// Parsed view of one manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// `[package] name`, empty for a virtual manifest.
    pub name: String,
    /// Dependency names from `[dependencies]`.
    pub deps: Vec<String>,
    /// Dependency names from `[dev-dependencies]`.
    pub dev_deps: Vec<String>,
}

/// Parses the manifest text.
pub fn parse(text: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut m = Manifest::default();
    let mut brace_depth = 0usize;

    for raw in text.lines() {
        let line = strip_toml_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        // Multi-line inline tables (`foo = {` ... `}`) — skip the body.
        if brace_depth > 0 {
            brace_depth += line.matches('{').count();
            brace_depth -= line.matches('}').count().min(brace_depth);
            continue;
        }
        if line.starts_with('[') {
            section = match line.as_str() {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        m.name = v.trim().trim_matches('"').to_owned();
                    }
                }
            }
            Section::Deps | Section::DevDeps => {
                if let Some(name) = dep_name(&line) {
                    if section == Section::Deps {
                        m.deps.push(name);
                    } else {
                        m.dev_deps.push(name);
                    }
                }
                let opens = line.matches('{').count();
                let closes = line.matches('}').count();
                brace_depth = opens.saturating_sub(closes);
            }
            Section::Other => {}
        }
    }
    m
}

/// The dependency name on an entry line: the key before `.workspace`,
/// `=` or whitespace.
fn dep_name(line: &str) -> Option<String> {
    let key = line
        .split(['=', ' ', '\t'])
        .next()?
        .split('.')
        .next()?
        .trim();
    if key.is_empty() {
        return None;
    }
    Some(key.trim_matches('"').to_owned())
}

fn strip_toml_comment(line: &str) -> &str {
    // Workspace manifests never put `#` inside strings, so a plain split
    // is exact here.
    line.split('#').next().unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_style_manifest() {
        let m = parse(
            r#"
[package]
name = "rumor-core"
version.workspace = true

[dependencies]
bytes.workspace = true
rand = { version = "0.8" }
rumor-net.workspace = true # the sans-IO substrate

[dev-dependencies]
proptest.workspace = true

[[bench]]
name = "micro"
"#,
        );
        assert_eq!(m.name, "rumor-core");
        assert_eq!(m.deps, vec!["bytes", "rand", "rumor-net"]);
        assert_eq!(m.dev_deps, vec!["proptest"]);
    }

    #[test]
    fn empty_sections_and_comments() {
        let m = parse("[package]\nname = \"x\"\n# comment\n[dependencies]\n");
        assert_eq!(m.name, "x");
        assert!(m.deps.is_empty());
    }
}
