//! Findings, the report container, and its two renderings: a human
//! table and a machine-readable JSON document (`rumor-lint/v1`). The
//! JSON side is hand-rolled (the lint is dependency-free) and ships a
//! matching minimal parser so the report round-trips — the fixture
//! suite and the CI schema check both rely on that.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier stamped into every JSON report.
pub const SCHEMA: &str = "rumor-lint/v1";

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (e.g. `determinism`).
    pub rule: String,
    /// File, relative to the lint root.
    pub file: String,
    /// 1-based line (0 for file/crate-level findings).
    pub line: usize,
    /// Human explanation of the violation.
    pub message: String,
}

/// A violation silenced by an inline `rumor-lint: allow` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// Rule name.
    pub rule: String,
    /// File, relative to the lint root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The justification given in the allow comment.
    pub reason: String,
}

/// The full result of one lint pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Root the pass ran over (as given on the command line).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked by the crate-graph rule.
    pub manifests_checked: usize,
    /// Unsuppressed violations — the pass fails if any exist.
    pub findings: Vec<Finding>,
    /// Violations silenced by allow comments (kept for observability).
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Whether the tree is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-facing table.
    pub fn render_table(&self, rules: &[&str]) -> String {
        let mut out = String::new();
        let mut by_rule: BTreeMap<&str, usize> = rules.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *by_rule.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        let _ = writeln!(
            out,
            "rumor-lint: {} files, {} manifests",
            self.files_scanned, self.manifests_checked
        );
        let _ = writeln!(out, "{:<22} {:>9} ", "rule", "findings");
        let _ = writeln!(out, "{:-<22} {:->9} ", "", "");
        for (rule, count) in &by_rule {
            let _ = writeln!(out, "{rule:<22} {count:>9} ");
        }
        if !self.findings.is_empty() {
            let _ = writeln!(out);
            for f in &self.findings {
                let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
        }
        if !self.suppressed.is_empty() {
            let _ = writeln!(out, "\n{} suppressed:", self.suppressed.len());
            for s in &self.suppressed {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}] allowed -- {}",
                    s.file, s.line, s.rule, s.reason
                );
            }
        }
        let verdict = if self.is_clean() { "clean" } else { "FAIL" };
        let _ = writeln!(out, "\nresult: {verdict}");
        out
    }

    /// Serialises the report as `rumor-lint/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SCHEMA));
        let _ = writeln!(out, "  \"root\": {},", json_str(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"manifests_checked\": {},", self.manifests_checked);
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {} }}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {} }}",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                json_str(&s.reason)
            );
        }
        out.push_str(if self.suppressed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses a `rumor-lint/v1` JSON report back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let schema = obj
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unexpected schema {schema:?}"));
        }
        let get_usize = |key: &str| -> Result<usize, String> {
            obj.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("missing {key}"))
        };
        let mut report = Report {
            root: obj
                .get("root")
                .and_then(Json::as_str)
                .ok_or("missing root")?
                .to_owned(),
            files_scanned: get_usize("files_scanned")?,
            manifests_checked: get_usize("manifests_checked")?,
            ..Report::default()
        };
        for item in obj
            .get("findings")
            .and_then(Json::as_array)
            .ok_or("missing findings")?
        {
            let o = item.as_object().ok_or("finding must be an object")?;
            report.findings.push(Finding {
                rule: field_str(o, "rule")?,
                file: field_str(o, "file")?,
                line: o
                    .get("line")
                    .and_then(Json::as_usize)
                    .ok_or("missing line")?,
                message: field_str(o, "message")?,
            });
        }
        for item in obj
            .get("suppressed")
            .and_then(Json::as_array)
            .ok_or("missing suppressed")?
        {
            let o = item.as_object().ok_or("suppression must be an object")?;
            report.suppressed.push(Suppressed {
                rule: field_str(o, "rule")?,
                file: field_str(o, "file")?,
                line: o
                    .get("line")
                    .and_then(Json::as_usize)
                    .ok_or("missing line")?,
                reason: field_str(o, "reason")?,
            });
        }
        Ok(report)
    }
}

fn field_str(o: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    o.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing {key}"))
}

/// Escapes a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — only what the report round-trip needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (reports only use non-negative integers).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (sorted keys)
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_usize(&self) -> Option<usize> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Self::Obj(o) => Some(o),
            _ => None,
        }
    }
}

mod json {
    use super::Json;
    use std::collections::BTreeMap;

    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Json::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Json::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Json::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}", pos = *pos))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
        Err("unterminated string".into())
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        *pos += 1;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        *pos += 1;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected key at byte {pos}", pos = *pos));
            }
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected : at byte {pos}", pos = *pos));
            }
            *pos += 1;
            map.insert(key, value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            root: ".".into(),
            files_scanned: 3,
            manifests_checked: 2,
            findings: vec![Finding {
                rule: "determinism".into(),
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "call to `Instant::now` — \"wall clock\"".into(),
            }],
            suppressed: vec![Suppressed {
                rule: "single-round-loop".into(),
                file: "crates/churn/src/trace.rs".into(),
                line: 70,
                reason: "trace construction".into(),
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let parsed = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = Report {
            root: "/tmp/x".into(),
            ..Report::default()
        };
        assert_eq!(Report::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn schema_is_enforced() {
        let bad = sample().to_json().replace("rumor-lint/v1", "rumor-lint/v0");
        assert!(Report::from_json(&bad).is_err());
    }

    #[test]
    fn table_shows_verdict() {
        let clean = Report::default();
        assert!(clean
            .render_table(&["determinism"])
            .contains("result: clean"));
        assert!(sample()
            .render_table(&["determinism"])
            .contains("result: FAIL"));
    }
}
