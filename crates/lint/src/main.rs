//! CLI driver: `rumor-lint [--root PATH] [--format table|json]`.
//!
//! Exit status 0 when the tree is clean, 1 when unsuppressed findings
//! exist, 2 on usage or I/O errors — so both CI and the workspace test
//! can shell out to it directly.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use rumor_lint::rules::RULE_NAMES;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = String::from("table");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some(v @ ("table" | "json")) => format = v.to_owned(),
                _ => return usage("--format must be `table` or `json`"),
            },
            "--help" | "-h" => {
                eprintln!("usage: rumor-lint [--root PATH] [--format table|json]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match rumor_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rumor-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_table(&RULE_NAMES));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rumor-lint: {msg}");
    eprintln!("usage: rumor-lint [--root PATH] [--format table|json]");
    ExitCode::from(2)
}
