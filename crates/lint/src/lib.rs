//! rumor-lint — the workspace's architecture and determinism invariants
//! as an executable static-analysis pass.
//!
//! The ROADMAP states the tree's load-bearing rules in prose: one round
//! driver and one replication harness (`rumor-sim`), the allocation-free
//! effect-sink idiom, one wire framing owner (`rumor-wire`), seeded
//! determinism everywhere, a layered crate graph, and `unsafe`-free
//! library code. This crate turns each of those sentences into a named
//! rule over the sanitised sources and the Cargo manifests, so a PR that
//! bends an invariant fails tier-1 instead of waiting for review to
//! notice.
//!
//! The pass is deliberately dependency-free — a token-level scanner, a
//! minimal manifest reader and a hand-rolled JSON report — so the linter
//! itself can never be skewed by the tree it judges (the `crate-graph`
//! rule enforces that emptiness, on this very crate, at every run).
//!
//! Violations are silenced only by an inline
//! `// rumor-lint: allow(<rule>) -- <reason>` comment with a mandatory
//! reason, on the offending line or the line above. Suppressions are
//! carried in the report, not dropped, so `--format json` shows every
//! sanctioned exception.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod report;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use manifest::Manifest;
use report::{Report, Suppressed};
use source::SourceFile;

/// Directory names the walker never descends into: build output,
/// vendored dependency subsets (external code is not ours to police) and
/// the lint's own violation fixtures.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Top-level entry points the walker scans, relative to the root.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Runs the full pass over the workspace at `root`.
///
/// # Errors
///
/// Propagates filesystem errors from walking or reading sources.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for entry in SCAN_ROOTS {
        let dir = root.join(entry);
        if dir.is_dir() {
            let mut paths = Vec::new();
            walk(&dir, &mut paths)?;
            for p in paths {
                files.push(SourceFile::load(root, &p)?);
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    let manifests = collect_manifests(root)?;
    Ok(analyze(&root.display().to_string(), &files, &manifests))
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`],
/// in sorted order.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads the root manifest plus every `crates/*/Cargo.toml`, paired with
/// their root-relative paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn collect_manifests(root: &Path) -> io::Result<Vec<(String, Manifest)>> {
    let mut out = Vec::new();
    let top = root.join("Cargo.toml");
    if top.is_file() {
        out.push((
            "Cargo.toml".to_owned(),
            manifest::parse(&fs::read_to_string(top)?),
        ));
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::file_name);
        for entry in entries {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                let rel = format!("crates/{}/Cargo.toml", entry.file_name().to_string_lossy());
                out.push((rel, manifest::parse(&fs::read_to_string(m)?)));
            }
        }
    }
    Ok(out)
}

/// Runs every rule over pre-loaded inputs and splits raw findings into
/// violations and inline-suppressed entries.
pub fn analyze(root: &str, files: &[SourceFile], manifests: &[(String, Manifest)]) -> Report {
    let mut raw = rules::run_source_rules(files);
    // Virtual root manifests (no [package]) are containers, not crates.
    let crate_manifests: Vec<(String, Manifest)> = manifests
        .iter()
        .filter(|(_, m)| !m.name.is_empty())
        .cloned()
        .collect();
    rules::crate_graph::check(&crate_manifests, files, &mut raw);

    let mut report = Report {
        root: root.to_owned(),
        files_scanned: files.len(),
        manifests_checked: crate_manifests.len(),
        ..Report::default()
    };
    for finding in raw {
        let allow = files
            .iter()
            .find(|f| f.rel == finding.file)
            .and_then(|f| f.allow_for(&finding.rule, finding.line));
        match allow {
            Some(a) => report.suppressed.push(Suppressed {
                rule: finding.rule,
                file: finding.file,
                line: finding.line,
                reason: a.reason.clone(),
            }),
            None => report.findings.push(finding),
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_applies_inline_suppression() {
        let file = SourceFile::from_text(
            "crates/demo/src/lib.rs".into(),
            "#![forbid(unsafe_code)]\n\
             let a = Instant::now(); // rumor-lint: allow(determinism) -- timing harness\n\
             let b = Instant::now();\n",
        );
        let report = analyze(".", &[file], &[]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 3);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].reason, "timing harness");
    }

    #[test]
    fn virtual_manifest_is_not_a_crate() {
        let virtual_root = ("Cargo.toml".to_owned(), Manifest::default());
        let report = analyze(".", &[], &[virtual_root]);
        assert_eq!(report.manifests_checked, 0);
        assert!(report.is_clean());
    }
}
