//! End-to-end lint runs over the fixture trees under `tests/fixtures/`.
//!
//! `violations/` plants exactly one file (or manifest edge) per rule and
//! expects each rule to catch its own; `clean/` is a healthy mini-tree
//! whose single violation is silenced by an inline allow comment. The
//! main workspace walker skips directories named `fixtures`, so these
//! trees never pollute the tier-1 gate in `tests/arch_lint.rs`.

use std::collections::BTreeSet;
use std::path::PathBuf;

use rumor_lint::report::Report;
use rumor_lint::rules::RULE_NAMES;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Report {
    rumor_lint::lint_workspace(&fixture_root(name)).expect("fixture tree scans")
}

#[test]
fn every_rule_detects_its_fixture_violation() {
    let report = lint("violations");
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    for rule in RULE_NAMES {
        assert!(
            fired.contains(rule),
            "rule `{rule}` missed its planted violation; report:\n{}",
            report.render_table(&RULE_NAMES)
        );
    }
    assert!(!report.is_clean());
}

#[test]
fn violations_point_at_the_planted_files() {
    let report = lint("violations");
    let find = |rule: &str| {
        report
            .findings
            .iter()
            .find(|f| f.rule == rule)
            .unwrap_or_else(|| panic!("no finding for {rule}"))
    };
    assert_eq!(
        find("single-round-loop").file,
        "crates/core/src/round_loop.rs"
    );
    assert_eq!(find("sink-idiom").file, "crates/core/src/sink.rs");
    assert_eq!(
        find("single-wire-framing").file,
        "crates/core/src/framing.rs"
    );
    assert_eq!(find("determinism").file, "crates/core/src/determinism.rs");
    assert_eq!(find("forbid-unsafe").file, "crates/core/src/lib.rs");
    assert_eq!(find("crate-graph").file, "crates/core/Cargo.toml");
    assert!(find("crate-graph").message.contains("rumor-sim"));
}

#[test]
fn clean_tree_passes_with_one_documented_suppression() {
    let report = lint("clean");
    assert!(
        report.is_clean(),
        "clean fixture has findings:\n{}",
        report.render_table(&RULE_NAMES)
    );
    assert_eq!(report.suppressed.len(), 1);
    let s = &report.suppressed[0];
    assert_eq!(s.rule, "determinism");
    assert_eq!(s.file, "crates/demo/src/lib.rs");
    assert!(s.reason.contains("sanctioned timing site"));
}

#[test]
fn fixture_reports_round_trip_through_json() {
    for name in ["violations", "clean"] {
        let report = lint(name);
        let parsed = Report::from_json(&report.to_json()).expect("valid JSON");
        assert_eq!(parsed, report, "round-trip drift for fixture {name}");
    }
}

#[test]
fn table_rendering_matches_verdict() {
    assert!(lint("violations")
        .render_table(&RULE_NAMES)
        .contains("result: FAIL"));
    assert!(lint("clean")
        .render_table(&RULE_NAMES)
        .contains("result: clean"));
}
