#![forbid(unsafe_code)]

//! Clean fixture: deterministic collections, no orchestration loops, and
//! one *suppressed* violation demonstrating the allow grammar.

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut out = BTreeMap::new();
    for x in xs {
        *out.entry(*x).or_insert(0) += 1;
    }
    out
}

pub fn sanctioned_stamp() -> std::time::Instant {
    // rumor-lint: allow(determinism) -- fixture demonstrating a sanctioned timing site
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    // Test-only hash state is exempt by rule, no allow needed.
    use std::collections::HashSet;

    #[test]
    fn distinct() {
        let s: HashSet<u32> = [1, 2, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
