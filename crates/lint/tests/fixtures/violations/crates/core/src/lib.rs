// forbid-unsafe violation: this crate root carries no
// `#![forbid(unsafe_code)]` attribute.

mod determinism;
mod framing;
mod round_loop;
mod sink;
