// single-wire-framing violation: frame-header construction outside
// crates/wire.

pub fn frame_by_hand(kind: u8, len: u32) -> (u8, u32) {
    let header = Frame::new(kind, len);
    (header.0, header.1)
}

pub struct Frame(pub u8, pub u32);

impl Frame {
    pub fn new(kind: u8, len: u32) -> Self {
        Frame(kind, len)
    }
}
