// single-round-loop violation: a trial loop outside rumor-sim.

pub fn replicate(n: usize) -> usize {
    let mut acc = 0;
    for trial in 0..n {
        acc += trial;
    }
    acc
}
