// determinism violations: ambient wall-clock plus a hash-ordered map in
// library code.

use std::collections::HashMap;
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn tally() -> HashMap<u32, u32> {
    HashMap::new()
}
