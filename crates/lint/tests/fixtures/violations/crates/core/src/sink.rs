// sink-idiom violation: a callback returning `Vec<Effect<_>>` instead of
// writing into an `EffectSink`.

pub struct Effect<M>(pub M);

pub fn on_message(m: u8) -> Vec<Effect<u8>> {
    vec![Effect(m)]
}
