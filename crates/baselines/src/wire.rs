//! Framed wire codecs for the baseline message sets.
//!
//! The comparison protocols go on the wire too: the live
//! `rumor-cluster` runtime round-trips every message through
//! `rumor-wire` frames, and the wire-size accounting reports baseline
//! bandwidth next to the paper protocol's. [`FloodMsg`] is a fixed
//! 24-byte payload; [`DemersMsg`] uses one frame kind per variant with
//! the digest's rumor set length-prefixed.

use crate::demers::DemersMsg;
use crate::flood::FloodMsg;
use bytes::{BufMut, BytesMut};
use rumor_types::UpdateId;
use rumor_wire::{Decode, Encode, Reader, WireError};

/// Frame kind of the single [`FloodMsg`] variant.
pub const KIND_FLOOD_RUMOR: u8 = 1;

/// Frame kind of [`DemersMsg::Digest`].
pub const KIND_DEMERS_DIGEST: u8 = 1;
/// Frame kind of [`DemersMsg::Rumor`].
pub const KIND_DEMERS_RUMOR: u8 = 2;
/// Frame kind of [`DemersMsg::Feedback`].
pub const KIND_DEMERS_FEEDBACK: u8 = 3;

impl Encode for FloodMsg {
    fn kind(&self) -> u8 {
        KIND_FLOOD_RUMOR
    }

    fn payload_len(&self) -> usize {
        16 + 4 + 4 // rumor id + ttl + hops
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        buf.put_u128(self.rumor.to_bits());
        buf.put_u32(self.ttl);
        buf.put_u32(self.hops);
    }
}

impl Decode for FloodMsg {
    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        if kind != KIND_FLOOD_RUMOR {
            return Err(WireError::UnknownKind { kind });
        }
        let mut r = Reader::new(payload);
        let msg = Self {
            rumor: UpdateId::from_bits(r.u128()?),
            ttl: r.u32()?,
            hops: r.u32()?,
        };
        r.finish()?;
        Ok(msg)
    }
}

impl Encode for DemersMsg {
    fn kind(&self) -> u8 {
        match self {
            Self::Digest { .. } => KIND_DEMERS_DIGEST,
            Self::Rumor { .. } => KIND_DEMERS_RUMOR,
            Self::Feedback { .. } => KIND_DEMERS_FEEDBACK,
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            Self::Digest { known, .. } => 1 + 4 + known.len() * 16,
            Self::Rumor { .. } => 16,
            Self::Feedback { .. } => 16 + 1,
        }
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        match self {
            Self::Digest { known, reply } => {
                buf.put_u8(u8::from(*reply));
                buf.put_u32(known.len() as u32);
                for rumor in known {
                    buf.put_u128(rumor.to_bits());
                }
            }
            Self::Rumor { rumor } => buf.put_u128(rumor.to_bits()),
            Self::Feedback {
                rumor,
                already_knew,
            } => {
                buf.put_u128(rumor.to_bits());
                buf.put_u8(u8::from(*already_knew));
            }
        }
    }
}

fn flag(byte: u8) -> Result<bool, WireError> {
    match byte {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::malformed(format!("bad bool flag {other}"))),
    }
}

impl Decode for DemersMsg {
    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            KIND_DEMERS_DIGEST => {
                let reply = flag(r.u8()?)?;
                let n = r.u32()? as usize;
                let mut known = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    known.push(UpdateId::from_bits(r.u128()?));
                }
                Self::Digest { known, reply }
            }
            KIND_DEMERS_RUMOR => Self::Rumor {
                rumor: UpdateId::from_bits(r.u128()?),
            },
            KIND_DEMERS_FEEDBACK => Self::Feedback {
                rumor: UpdateId::from_bits(r.u128()?),
                already_knew: flag(r.u8()?)?,
            },
            other => return Err(WireError::UnknownKind { kind: other }),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_wire::{decode_frame, encode_frame, frame_len};

    fn roundtrip<M: Encode + Decode + PartialEq + std::fmt::Debug>(msg: M) {
        let frame = encode_frame(&msg);
        assert_eq!(frame.len(), frame_len(&msg));
        assert_eq!(decode_frame::<M>(&frame).unwrap(), msg, "{msg:?}");
    }

    #[test]
    fn flood_msg_roundtrips() {
        roundtrip(FloodMsg {
            rumor: UpdateId::from_bits(0xDEAD_BEEF),
            ttl: 7,
            hops: 3,
        });
    }

    #[test]
    fn demers_variants_roundtrip() {
        roundtrip(DemersMsg::Digest {
            known: vec![UpdateId::from_bits(1), UpdateId::from_bits(2)],
            reply: true,
        });
        roundtrip(DemersMsg::Digest {
            known: Vec::new(),
            reply: false,
        });
        roundtrip(DemersMsg::Rumor {
            rumor: UpdateId::from_bits(9),
        });
        roundtrip(DemersMsg::Feedback {
            rumor: UpdateId::from_bits(9),
            already_knew: true,
        });
    }

    #[test]
    fn rejects_unknown_kinds_and_bad_flags() {
        let frame = encode_frame(&FloodMsg {
            rumor: UpdateId::from_bits(1),
            ttl: 1,
            hops: 1,
        });
        let mut bytes = frame.to_vec();
        bytes[1] = 9;
        assert!(matches!(
            decode_frame::<FloodMsg>(&bytes),
            Err(WireError::UnknownKind { kind: 9 })
        ));

        let mut feedback = encode_frame(&DemersMsg::Feedback {
            rumor: UpdateId::from_bits(1),
            already_knew: false,
        })
        .to_vec();
        *feedback.last_mut().unwrap() = 7;
        assert!(matches!(
            decode_frame::<DemersMsg>(&feedback),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn digest_truncation_is_rejected() {
        let frame = encode_frame(&DemersMsg::Digest {
            known: vec![UpdateId::from_bits(1); 3],
            reply: true,
        });
        // Fix up the declared length so truncation reaches the payload
        // decoder rather than the frame-length check.
        let cut = frame.len() - 16;
        let mut bytes = frame[..cut].to_vec();
        let declared = (cut - 6) as u32;
        bytes[2..6].copy_from_slice(&declared.to_be_bytes());
        assert!(matches!(
            decode_frame::<DemersMsg>(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }
}
