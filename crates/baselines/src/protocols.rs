//! [`Protocol`] factories mounting each baseline into a
//! [`Scenario`](rumor_sim::Scenario).
//!
//! These are what make the paper's comparisons apples-to-apples: the same
//! scenario (same topology draw, same churn trajectory, same initial
//! availability, same loss/partition parameters, same workload schedule)
//! drives the paper peer and every baseline through the one shared
//! [`rumor_sim::Driver`]. The baselines
//! have no data model, so a scheduled [`UpdateEvent`] maps to the
//! deterministic rumor identity [`UpdateEvent::rumor_id`]; tombstone
//! events disseminate like any other rumor (coverage is what these
//! schemes measure).
//!
//! # Examples
//!
//! ```
//! use rumor_baselines::GnutellaFlooding;
//! use rumor_sim::{Protocol, Scenario, UpdateEvent};
//! use rumor_types::DataKey;
//!
//! let scenario = Scenario::builder(100, 11).build()?;
//! let protocol = GnutellaFlooding { fanout: 6, ttl: 7 };
//! let mut driver = scenario.drive(&protocol);
//! let event = UpdateEvent { round: 0, key: DataKey::from_name("r"), delete: false, sequence: 0 };
//! let rumor = driver.initiate(&protocol, None, &event).expect("someone online");
//! let report = driver.track_update(&protocol, rumor, 50);
//! assert!(report.aware_online_fraction > 0.95,
//!         "flooding informs (nearly) everyone, got {}", report.aware_online_fraction);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::demers::{AntiEntropyNode, DemersMsg, MongerConfig, RumorMongerNode};
use crate::flood::{FloodMsg, GnutellaNode, HaasNode, PureFloodNode};
use rand_chacha::ChaCha8Rng;
use rumor_net::EffectSink;
use rumor_sim::{Protocol, UpdateEvent};
use rumor_types::{PeerId, Round, UpdateId};

/// Gnutella-style limited flooding with duplicate avoidance (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnutellaFlooding {
    /// Neighbours addressed per forward.
    pub fanout: usize,
    /// Initial time-to-live of each rumor copy.
    pub ttl: u32,
}

impl Protocol for GnutellaFlooding {
    type Node = GnutellaNode;

    fn name(&self) -> String {
        format!(
            "Gnutella flooding (fanout {}, ttl {})",
            self.fanout, self.ttl
        )
    }

    fn spawn(&self, id: PeerId, known: Vec<PeerId>, _online_at_start: bool) -> GnutellaNode {
        GnutellaNode::new(id.as_u32(), known, self.fanout, self.ttl)
    }

    fn initiate(
        &self,
        node: &mut GnutellaNode,
        event: &UpdateEvent,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) -> UpdateId {
        let rumor = event.rumor_id();
        node.seed_rumor(rumor, rng, out);
        rumor
    }

    fn is_aware(&self, node: &GnutellaNode, update: UpdateId) -> bool {
        node.knows(update)
    }

    fn wire_sizer(&self) -> Option<fn(&FloodMsg) -> usize> {
        Some(rumor_wire::frame_len::<FloodMsg>)
    }
}

/// Pure flooding without duplicate avoidance — the §5.6 worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PureFlooding {
    /// Neighbours addressed per forward.
    pub fanout: usize,
    /// Initial time-to-live of each rumor copy.
    pub ttl: u32,
}

impl Protocol for PureFlooding {
    type Node = PureFloodNode;

    fn name(&self) -> String {
        format!("pure flooding (fanout {}, ttl {})", self.fanout, self.ttl)
    }

    fn spawn(&self, id: PeerId, known: Vec<PeerId>, _online_at_start: bool) -> PureFloodNode {
        PureFloodNode::new(id.as_u32(), known, self.fanout, self.ttl)
    }

    fn initiate(
        &self,
        node: &mut PureFloodNode,
        event: &UpdateEvent,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) -> UpdateId {
        let rumor = event.rumor_id();
        node.seed_rumor(rumor, rng, out);
        rumor
    }

    fn is_aware(&self, node: &PureFloodNode, update: UpdateId) -> bool {
        node.knows(update)
    }

    fn wire_sizer(&self) -> Option<fn(&FloodMsg) -> usize> {
        Some(rumor_wire::frame_len::<FloodMsg>)
    }
}

/// Haas, Halpern & Li's GOSSIP1(p, k) (§5.6): deterministic flooding for
/// the first `k` hops, probability-`p` forwarding afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gossip1 {
    /// Neighbours addressed per forward.
    pub fanout: usize,
    /// Initial time-to-live of each rumor copy.
    pub ttl: u32,
    /// Forwarding probability beyond hop `k`.
    pub p: f64,
    /// Hops flooded deterministically.
    pub k: u32,
}

impl Protocol for Gossip1 {
    type Node = HaasNode;

    fn name(&self) -> String {
        format!("Haas GOSSIP1({}, {})", self.p, self.k)
    }

    fn spawn(&self, id: PeerId, known: Vec<PeerId>, _online_at_start: bool) -> HaasNode {
        HaasNode::new(id.as_u32(), known, self.fanout, self.ttl, self.p, self.k)
    }

    fn initiate(
        &self,
        node: &mut HaasNode,
        event: &UpdateEvent,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) -> UpdateId {
        let rumor = event.rumor_id();
        node.seed_rumor(rumor, rng, out);
        rumor
    }

    fn is_aware(&self, node: &HaasNode, update: UpdateId) -> bool {
        node.knows(update)
    }

    fn wire_sizer(&self) -> Option<fn(&FloodMsg) -> usize> {
        Some(rumor_wire::frame_len::<FloodMsg>)
    }
}

/// Demers anti-entropy (§7.2): per-round digest exchange with one random
/// partner; with `push_pull` the partner also learns the initiator's
/// rumors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntiEntropy {
    /// Push-pull (`true`) or pull-only (`false`) reconciliation.
    pub push_pull: bool,
}

impl Protocol for AntiEntropy {
    type Node = AntiEntropyNode;

    fn name(&self) -> String {
        format!(
            "Demers anti-entropy ({})",
            if self.push_pull { "push-pull" } else { "pull" }
        )
    }

    fn spawn(&self, id: PeerId, known: Vec<PeerId>, _online_at_start: bool) -> AntiEntropyNode {
        AntiEntropyNode::new(id.as_u32(), known, self.push_pull)
    }

    fn initiate(
        &self,
        node: &mut AntiEntropyNode,
        event: &UpdateEvent,
        _round: Round,
        _rng: &mut ChaCha8Rng,
        _out: &mut EffectSink<DemersMsg>,
    ) -> UpdateId {
        let rumor = event.rumor_id();
        node.seed_rumor(rumor);
        rumor
    }

    fn is_aware(&self, node: &AntiEntropyNode, update: UpdateId) -> bool {
        node.knows(update)
    }

    fn wire_sizer(&self) -> Option<fn(&DemersMsg) -> usize> {
        Some(rumor_wire::frame_len::<DemersMsg>)
    }
}

/// Demers rumor mongering (§7.2) under the configured feedback/stop rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorMongering {
    /// Feedback-vs-blind and coin-vs-counter configuration.
    pub config: MongerConfig,
}

impl Protocol for RumorMongering {
    type Node = RumorMongerNode;

    fn name(&self) -> String {
        format!(
            "Demers rumor mongering ({}/{:?})",
            if self.config.feedback {
                "feedback"
            } else {
                "blind"
            },
            self.config.stop
        )
    }

    fn spawn(&self, id: PeerId, known: Vec<PeerId>, _online_at_start: bool) -> RumorMongerNode {
        RumorMongerNode::new(id.as_u32(), known, self.config)
    }

    fn initiate(
        &self,
        node: &mut RumorMongerNode,
        event: &UpdateEvent,
        _round: Round,
        _rng: &mut ChaCha8Rng,
        _out: &mut EffectSink<DemersMsg>,
    ) -> UpdateId {
        let rumor = event.rumor_id();
        node.seed_rumor(rumor);
        rumor
    }

    fn is_aware(&self, node: &RumorMongerNode, update: UpdateId) -> bool {
        node.knows(update)
    }

    fn wire_sizer(&self) -> Option<fn(&DemersMsg) -> usize> {
        Some(rumor_wire::frame_len::<DemersMsg>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demers::MongerStop;
    use rumor_net::Partition;
    use rumor_sim::{Scenario, TopologySpec};
    use rumor_types::DataKey;

    fn event() -> UpdateEvent {
        UpdateEvent {
            round: 0,
            key: DataKey::from_name("contest"),
            delete: false,
            sequence: 0,
        }
    }

    fn run<P: Protocol>(scenario: &Scenario, protocol: &P, horizon: u32) -> (f64, u64, u32) {
        let mut driver = scenario.drive(protocol);
        let rumor = driver
            .initiate(protocol, None, &event())
            .expect("someone online");
        let report = driver.track_update(protocol, rumor, horizon);
        (
            report.aware_online_fraction,
            report.total_messages,
            report.rounds,
        )
    }

    #[test]
    fn all_baselines_mount_into_one_scenario() {
        let scenario = Scenario::builder(150, 5).build().unwrap();
        let (g, ..) = run(&scenario, &GnutellaFlooding { fanout: 5, ttl: 8 }, 40);
        let (p, ..) = run(&scenario, &PureFlooding { fanout: 4, ttl: 6 }, 40);
        let (h, ..) = run(
            &scenario,
            &Gossip1 {
                fanout: 5,
                ttl: 8,
                p: 0.8,
                k: 2,
            },
            40,
        );
        let (a, ..) = run(&scenario, &AntiEntropy { push_pull: true }, 80);
        let (m, ..) = run(
            &scenario,
            &RumorMongering {
                config: MongerConfig {
                    feedback: true,
                    stop: MongerStop::Coin { k: 4 },
                },
            },
            150,
        );
        for (label, aware) in [
            ("gnutella", g),
            ("pure", p),
            ("gossip1", h),
            ("anti-entropy", a),
            ("monger", m),
        ] {
            assert!(aware > 0.9, "{label} covers the population, got {aware}");
        }
    }

    #[test]
    fn baselines_respect_scenario_topology() {
        // k = 4 neighbours instead of the full population: every spawned
        // node's neighbour list comes from the scenario's topology draw.
        let scenario = Scenario::builder(60, 7)
            .topology(TopologySpec::RandomSubset { k: 4 })
            .build()
            .unwrap();
        let protocol = GnutellaFlooding { fanout: 4, ttl: 10 };
        let driver = scenario.drive(&protocol);
        assert!(driver.nodes().iter().all(|n| n.neighbor_count() == 4));
    }

    #[test]
    fn baselines_respect_scenario_loss() {
        let clean = Scenario::builder(120, 9).build().unwrap();
        let lossy = Scenario::builder(120, 9).loss(0.9).build().unwrap();
        let protocol = GnutellaFlooding { fanout: 4, ttl: 6 };
        let (aware_clean, ..) = run(&clean, &protocol, 40);
        let (aware_lossy, ..) = run(&lossy, &protocol, 40);
        assert!(
            aware_lossy < aware_clean,
            "90% loss must hurt flooding coverage: {aware_lossy} vs {aware_clean}"
        );
    }

    #[test]
    fn baselines_respect_scenario_partition() {
        // A partition for the whole horizon confines the flood to one
        // half — something the old BaselineSim could not express.
        let scenario = Scenario::builder(100, 13)
            .partition(Partition::halves(100, Round::ZERO, Round::new(1_000)))
            .build()
            .unwrap();
        let protocol = GnutellaFlooding { fanout: 8, ttl: 10 };
        let (aware, ..) = run(&scenario, &protocol, 40);
        assert!(
            (0.4..=0.6).contains(&aware),
            "the rumor must stay inside the initiator's half, got {aware}"
        );
    }

    #[test]
    fn scenario_churn_reaches_baselines() {
        use rumor_churn::MarkovChurn;
        let scenario = Scenario::builder(100, 3)
            .churn(MarkovChurn::new(0.5, 0.0).unwrap())
            .build()
            .unwrap();
        let mut driver = scenario.drive(&GnutellaFlooding { fanout: 3, ttl: 6 });
        driver.run_rounds(10);
        assert!(
            driver.online().online_count() < 10,
            "σ=0.5 decimates quickly"
        );
    }
}
