//! Baseline dissemination protocols the paper compares against.
//!
//! §5.6 and §7.2 position the push/pull scheme against: Gnutella-style
//! limited flooding with duplicate avoidance, pure flooding, Haas,
//! Halpern & Li's GOSSIP1(p, k) for ad-hoc routing, and the classical
//! Demers et al. epidemic repertoire (anti-entropy; rumor mongering in
//! blind/feedback × coin/counter variants). Each baseline is a
//! [`rumor_net::Node`] driven by the same engines and churn models as the
//! main protocol, so message counts are apples-to-apples — and each has a
//! [`rumor_sim::Protocol`] factory ([`GnutellaFlooding`], [`PureFlooding`],
//! [`Gossip1`], [`AntiEntropy`], [`RumorMongering`]) so one shared
//! [`rumor_sim::Scenario`] drives every contender with identical
//! topology, churn, loss and partitions.
//!
//! # Examples
//!
//! ```
//! use rumor_baselines::{BaselineSim, GnutellaNode};
//! use rumor_types::UpdateId;
//!
//! // 100 fully-connected peers, rumor seeded at peer 0 with TTL 7.
//! let rumor = UpdateId::from_bits(1);
//! let nodes: Vec<GnutellaNode> = (0..100)
//!     .map(|i| GnutellaNode::fully_connected(i, 100, 6, 7))
//!     .collect();
//! let mut sim = BaselineSim::new(nodes, 100, 11)?;
//! sim.seed(0, |n, rng, out| n.seed_rumor(rumor, rng, out));
//! sim.run_until_quiescent(50);
//! let aware = sim.aware_fraction(|n| n.knows(rumor));
//! assert!(aware > 0.95, "flooding informs (nearly) everyone, got {aware}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demers;
mod flood;
mod protocols;
mod runner;
mod wire;

pub use demers::{AntiEntropyNode, DemersMsg, MongerConfig, MongerStop, RumorMongerNode};
pub use flood::{FloodMsg, GnutellaNode, HaasNode, PureFloodNode};
pub use protocols::{AntiEntropy, GnutellaFlooding, Gossip1, PureFlooding, RumorMongering};
pub use runner::BaselineSim;
pub use wire::{KIND_DEMERS_DIGEST, KIND_DEMERS_FEEDBACK, KIND_DEMERS_RUMOR, KIND_FLOOD_RUMOR};
