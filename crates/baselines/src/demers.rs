//! The Demers et al. epidemic repertoire (§7.2): anti-entropy and rumor
//! mongering.
//!
//! "Randomised rumor spreading algorithms may be categorized by the
//! gossip termination decision criteria used by peers": *feedback* vs
//! *blind* loss of interest, and *probabilistic* (coin) vs
//! *deterministic* (counter) stopping. [`RumorMongerNode`] implements all
//! four combinations; [`AntiEntropyNode`] is the pull/push-pull
//! reconciliation baseline the paper's own pull phase descends from.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_net::{EffectSink, Node};
use rumor_types::{PeerId, Round, UpdateId};
use std::collections::{BTreeMap, BTreeSet};

/// Messages of the Demers baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemersMsg {
    /// Anti-entropy request carrying the sender's rumor set.
    Digest {
        /// Rumors the sender knows.
        known: Vec<UpdateId>,
        /// Whether the receiver should answer (pull) — push-pull sets it.
        reply: bool,
    },
    /// A pushed rumor (rumor mongering).
    Rumor {
        /// The rumor.
        rumor: UpdateId,
    },
    /// Feedback to a pushed rumor: did the receiver already know it?
    Feedback {
        /// The rumor being acknowledged.
        rumor: UpdateId,
        /// `true` when the receiver had already heard it.
        already_knew: bool,
    },
}

/// Anti-entropy (§7.2 / Demers): every round each online node exchanges
/// its rumor set with one random partner; with `push_pull` the partner
/// also learns the initiator's rumors.
#[derive(Debug, Clone)]
pub struct AntiEntropyNode {
    id: PeerId,
    peers: Vec<PeerId>,
    rumors: BTreeSet<UpdateId>,
    push_pull: bool,
}

impl AntiEntropyNode {
    /// Creates a node knowing the given peers.
    pub fn new(id: u32, peers: Vec<PeerId>, push_pull: bool) -> Self {
        Self {
            id: PeerId::new(id),
            peers,
            rumors: BTreeSet::new(),
            push_pull,
        }
    }

    /// Convenience: node `id` of a fully-connected population.
    pub fn fully_connected(id: u32, population: usize, push_pull: bool) -> Self {
        let peers = (0..population as u32)
            .filter(|&j| j != id)
            .map(PeerId::new)
            .collect();
        Self::new(id, peers, push_pull)
    }

    /// Whether the node knows the rumor.
    pub fn knows(&self, rumor: UpdateId) -> bool {
        self.rumors.contains(&rumor)
    }

    /// Seeds a rumor locally (no immediate sends — anti-entropy spreads
    /// via the per-round exchanges).
    pub fn seed_rumor(&mut self, rumor: UpdateId) {
        self.rumors.insert(rumor);
    }
}

impl Node for AntiEntropyNode {
    type Msg = DemersMsg;

    fn id(&self) -> PeerId {
        self.id
    }

    fn on_round_start(
        &mut self,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<DemersMsg>,
    ) {
        let Some(&partner) = self.peers.choose(rng) else {
            return;
        };
        out.send(
            partner,
            DemersMsg::Digest {
                known: self.rumors.iter().copied().collect(),
                reply: true,
            },
        );
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: DemersMsg,
        _round: Round,
        _rng: &mut ChaCha8Rng,
        out: &mut EffectSink<DemersMsg>,
    ) {
        match msg {
            DemersMsg::Digest { known, reply } => {
                let their: BTreeSet<UpdateId> = known.iter().copied().collect();
                // A response (reply == false) carries the rumors we asked
                // for — always absorb it. A request is absorbed only in
                // push-pull mode.
                if self.push_pull || !reply {
                    self.rumors.extend(their.iter().copied());
                }
                if reply {
                    let missing: Vec<UpdateId> = self
                        .rumors
                        .iter()
                        .copied()
                        .filter(|r| !their.contains(r))
                        .collect();
                    if !missing.is_empty() || self.push_pull {
                        out.send(
                            from,
                            DemersMsg::Digest {
                                known: missing,
                                reply: false,
                            },
                        );
                    }
                }
            }
            DemersMsg::Rumor { .. } | DemersMsg::Feedback { .. } => {}
        }
    }
}

/// When a rumor-mongering node loses interest in a hot rumor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MongerStop {
    /// Coin: lose interest with probability `1/k` per triggering event.
    Coin {
        /// Inverse loss probability.
        k: u32,
    },
    /// Counter: lose interest after `k` triggering events.
    Counter {
        /// Event budget.
        k: u32,
    },
}

use serde::{Deserialize, Serialize};

/// Rumor-mongering configuration: feedback-driven or blind, coin or
/// counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MongerConfig {
    /// `true`: the stop rule triggers on "recipient already knew"
    /// feedback; `false` (blind): it triggers on every send.
    pub feedback: bool,
    /// Coin or counter stop rule.
    pub stop: MongerStop,
}

/// Demers-style push rumor mongering: while a rumor is *hot* the node
/// pushes it to one random peer per round; interest is lost per the
/// configured rule.
#[derive(Debug, Clone)]
pub struct RumorMongerNode {
    id: PeerId,
    peers: Vec<PeerId>,
    config: MongerConfig,
    known: BTreeSet<UpdateId>,
    hot: BTreeSet<UpdateId>,
    counters: BTreeMap<UpdateId, u32>,
    /// Reusable snapshot of the hot set (hot path).
    hot_scratch: Vec<UpdateId>,
}

impl RumorMongerNode {
    /// Creates a node knowing the given peers.
    pub fn new(id: u32, peers: Vec<PeerId>, config: MongerConfig) -> Self {
        Self {
            id: PeerId::new(id),
            peers,
            config,
            known: BTreeSet::new(),
            hot: BTreeSet::new(),
            counters: BTreeMap::new(),
            hot_scratch: Vec::new(),
        }
    }

    /// Convenience: node `id` of a fully-connected population.
    pub fn fully_connected(id: u32, population: usize, config: MongerConfig) -> Self {
        let peers = (0..population as u32)
            .filter(|&j| j != id)
            .map(PeerId::new)
            .collect();
        Self::new(id, peers, config)
    }

    /// Whether the node knows the rumor.
    pub fn knows(&self, rumor: UpdateId) -> bool {
        self.known.contains(&rumor)
    }

    /// Whether the node is still actively spreading the rumor.
    pub fn is_hot(&self, rumor: UpdateId) -> bool {
        self.hot.contains(&rumor)
    }

    /// Seeds a rumor at this node, marking it hot.
    pub fn seed_rumor(&mut self, rumor: UpdateId) {
        self.known.insert(rumor);
        self.hot.insert(rumor);
    }

    fn maybe_lose_interest(&mut self, rumor: UpdateId, rng: &mut ChaCha8Rng) {
        match self.config.stop {
            MongerStop::Coin { k } => {
                if k <= 1 || rng.gen_ratio(1, k) {
                    self.hot.remove(&rumor);
                }
            }
            MongerStop::Counter { k } => {
                let c = self.counters.entry(rumor).or_insert(0);
                *c += 1;
                if *c >= k {
                    self.hot.remove(&rumor);
                }
            }
        }
    }
}

impl Node for RumorMongerNode {
    type Msg = DemersMsg;

    fn id(&self) -> PeerId {
        self.id
    }

    fn on_round_start(
        &mut self,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<DemersMsg>,
    ) {
        let mut hot = std::mem::take(&mut self.hot_scratch);
        hot.clear();
        hot.extend(self.hot.iter().copied());
        for &rumor in &hot {
            if let Some(&partner) = self.peers.choose(rng) {
                out.send(partner, DemersMsg::Rumor { rumor });
                if !self.config.feedback {
                    // Blind: the stop rule ticks on every send.
                    self.maybe_lose_interest(rumor, rng);
                }
            }
        }
        hot.clear();
        self.hot_scratch = hot;
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: DemersMsg,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<DemersMsg>,
    ) {
        match msg {
            DemersMsg::Rumor { rumor } => {
                let already_knew = !self.known.insert(rumor);
                if !already_knew {
                    self.hot.insert(rumor);
                }
                if self.config.feedback {
                    out.send(
                        from,
                        DemersMsg::Feedback {
                            rumor,
                            already_knew,
                        },
                    );
                }
            }
            DemersMsg::Feedback {
                rumor,
                already_knew,
            } => {
                if self.config.feedback && already_knew {
                    self.maybe_lose_interest(rumor, rng);
                }
            }
            DemersMsg::Digest { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BaselineSim;
    use rumor_net::Effect;

    fn rumor() -> UpdateId {
        UpdateId::from_bits(7)
    }

    #[test]
    fn anti_entropy_pull_converges() {
        let nodes: Vec<AntiEntropyNode> = (0..60)
            .map(|i| AntiEntropyNode::fully_connected(i, 60, false))
            .collect();
        let mut sim = BaselineSim::new(nodes, 60, 3).unwrap();
        sim.seed(0, |n, _, _| n.seed_rumor(rumor()));
        sim.run_rounds(40);
        let aware = sim.aware_fraction(|n| n.knows(rumor()));
        assert!(aware > 0.95, "anti-entropy converges, got {aware}");
    }

    #[test]
    fn push_pull_faster_than_pull_only() {
        let run = |push_pull: bool| {
            let nodes: Vec<AntiEntropyNode> = (0..80)
                .map(|i| AntiEntropyNode::fully_connected(i, 80, push_pull))
                .collect();
            let mut sim = BaselineSim::new(nodes, 80, 5).unwrap();
            sim.seed(0, |n, _, _| n.seed_rumor(rumor()));
            let mut rounds = 0;
            while sim.aware_fraction(|n| n.knows(rumor())) < 0.9 && rounds < 200 {
                sim.step();
                rounds += 1;
            }
            rounds
        };
        assert!(
            run(true) <= run(false),
            "push-pull cannot be slower than pull-only"
        );
    }

    #[test]
    fn monger_feedback_coin_covers_population() {
        let config = MongerConfig {
            feedback: true,
            stop: MongerStop::Coin { k: 4 },
        };
        let nodes: Vec<RumorMongerNode> = (0..100)
            .map(|i| RumorMongerNode::fully_connected(i, 100, config))
            .collect();
        let mut sim = BaselineSim::new(nodes, 100, 9).unwrap();
        sim.seed(0, |n, _, _| n.seed_rumor(rumor()));
        sim.run_rounds(100);
        let aware = sim.aware_fraction(|n| n.knows(rumor()));
        assert!(
            aware > 0.9,
            "rumor mongering covers most peers, got {aware}"
        );
    }

    #[test]
    fn monger_counter_eventually_goes_cold() {
        let config = MongerConfig {
            feedback: false,
            stop: MongerStop::Counter { k: 3 },
        };
        let nodes: Vec<RumorMongerNode> = (0..50)
            .map(|i| RumorMongerNode::fully_connected(i, 50, config))
            .collect();
        let mut sim = BaselineSim::new(nodes, 50, 13).unwrap();
        sim.seed(0, |n, _, _| n.seed_rumor(rumor()));
        sim.run_rounds(60);
        let hot = sim.aware_fraction(|n| n.is_hot(rumor()));
        assert_eq!(hot, 0.0, "blind counter mongering terminates");
    }

    #[test]
    fn blind_coin_sends_fewer_messages_than_feedback_for_same_k() {
        let run = |feedback: bool| {
            let config = MongerConfig {
                feedback,
                stop: MongerStop::Coin { k: 3 },
            };
            let nodes: Vec<RumorMongerNode> = (0..80)
                .map(|i| RumorMongerNode::fully_connected(i, 80, config))
                .collect();
            let mut sim = BaselineSim::new(nodes, 80, 17).unwrap();
            sim.seed(0, |n, _, _| n.seed_rumor(rumor()));
            sim.run_rounds(120);
            sim.messages()
        };
        // Blind loses interest on every send; feedback only on "already
        // knew" replies, so it stays hot longer and sends more.
        assert!(run(false) < run(true));
    }

    #[test]
    fn feedback_messages_include_acks() {
        let config = MongerConfig {
            feedback: true,
            stop: MongerStop::Coin { k: 2 },
        };
        let mut a = RumorMongerNode::fully_connected(0, 2, config);
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        a.seed_rumor(rumor());
        let mut b = RumorMongerNode::fully_connected(1, 2, config);
        let mut fb = EffectSink::new();
        b.on_message(
            PeerId::new(0),
            DemersMsg::Rumor { rumor: rumor() },
            Round::ZERO,
            &mut rng,
            &mut fb,
        );
        assert!(matches!(
            fb[..],
            [Effect::Send {
                msg: DemersMsg::Feedback {
                    already_knew: false,
                    ..
                },
                ..
            }]
        ));
        assert!(b.knows(rumor()));
        assert!(b.is_hot(rumor()));
    }
}
