//! The baseline driver facade.
//!
//! [`BaselineSim`] used to carry its own round loop; it is now a thin
//! wrapper over the shared [`rumor_sim::Driver`], so baselines run under
//! exactly the same orchestration (churn step → engine step, quiescence,
//! observation) as the paper protocol. Mount a baseline into a
//! [`Scenario`](rumor_sim::Scenario) (via the [`Protocol`] factories in
//! [`crate::protocols`]) to give it topology, loss and partition parity
//! with the main protocol; use [`BaselineSim::new`] for the historical
//! fully-connected / perfect-links setup.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_churn::{Churn, OnlineSet, StaticChurn};
use rumor_net::{EffectSink, Node, PerfectLinks};
use rumor_sim::{ConvergenceSpec, Driver, SimError};
use rumor_types::{derive_seed, PeerId};

/// Drives any population of [`Node`]s in synchronous rounds — the
/// baseline counterpart of `rumor_sim::Simulation`, generic over the
/// protocol and delegating every round to the shared
/// [`rumor_sim::Driver`].
pub struct BaselineSim<N: Node> {
    driver: Driver<N>,
}

impl<N: Node> std::fmt::Debug for BaselineSim<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineSim")
            .field("driver", &self.driver)
            .finish()
    }
}

impl<N: Node> BaselineSim<N> {
    /// Creates a driver with `online_count` of the nodes initially online
    /// and no churn.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if `online_count` exceeds the population.
    pub fn new(nodes: Vec<N>, online_count: usize, seed: u64) -> Result<Self, SimError> {
        let population = nodes.len();
        if online_count > population {
            return Err(SimError::InvalidSetup {
                reason: format!("online count {online_count} exceeds population {population}"),
            });
        }
        let online = OnlineSet::with_online_count(population, online_count);
        let driver = Driver::assemble(
            nodes,
            online,
            Box::new(StaticChurn::new()),
            Box::new(PerfectLinks),
            ChaCha8Rng::seed_from_u64(derive_seed(seed, "baseline-protocol")),
            ChaCha8Rng::seed_from_u64(derive_seed(seed, "baseline-churn")),
            ConvergenceSpec::default(),
        );
        Ok(Self { driver })
    }

    /// Wraps a driver mounted from a [`Scenario`](rumor_sim::Scenario),
    /// inheriting its topology, churn, loss and partition configuration.
    pub fn from_driver(driver: Driver<N>) -> Self {
        Self { driver }
    }

    /// Installs a churn model.
    pub fn with_churn(mut self, churn: impl Churn + 'static) -> Self {
        self.driver.set_churn(Box::new(churn));
        self
    }

    /// The underlying protocol-agnostic driver.
    pub fn driver(&self) -> &Driver<N> {
        &self.driver
    }

    /// Mutable access to the underlying driver.
    pub fn driver_mut(&mut self) -> &mut Driver<N> {
        &mut self.driver
    }

    /// Seeds protocol state at node `index`, injecting any effects the
    /// closure writes into the sink (e.g. the initiator's broadcast).
    pub fn seed<F>(&mut self, index: usize, f: F)
    where
        F: FnOnce(&mut N, &mut ChaCha8Rng, &mut EffectSink<N::Msg>),
    {
        self.driver.apply(PeerId::new(index as u32), f);
    }

    /// Executes one round (churn after round 0, then engine).
    pub fn step(&mut self) {
        self.driver.step();
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u32) {
        self.driver.run_rounds(n);
    }

    /// Runs until quiescent or `max_rounds`; returns rounds executed.
    pub fn run_until_quiescent(&mut self, max_rounds: u32) -> u32 {
        self.driver.run_until_quiescent(max_rounds)
    }

    /// Fraction of *online* nodes satisfying `aware`.
    pub fn aware_fraction(&self, aware: impl Fn(&N) -> bool) -> f64 {
        self.driver.aware_fraction(aware)
    }

    /// Total messages sent so far.
    pub fn messages(&self) -> u64 {
        self.driver.messages()
    }

    /// Messages per initially-online node.
    pub fn messages_per_initial_online(&self) -> f64 {
        self.driver.messages_per_initial_online()
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u32 {
        self.driver.rounds_run()
    }

    /// Read access to the nodes.
    pub fn nodes(&self) -> &[N] {
        self.driver.nodes()
    }

    /// The availability state.
    pub fn online(&self) -> &OnlineSet {
        self.driver.online()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::GnutellaNode;
    use rumor_churn::MarkovChurn;
    use rumor_types::UpdateId;

    fn rumor() -> UpdateId {
        UpdateId::from_bits(5)
    }

    #[test]
    fn driver_counts_messages_and_rounds() {
        let nodes: Vec<GnutellaNode> = (0..30)
            .map(|i| GnutellaNode::fully_connected(i, 30, 3, 6))
            .collect();
        let mut sim = BaselineSim::new(nodes, 30, 1).unwrap();
        sim.seed(0, |n, rng, out| n.seed_rumor(rumor(), rng, out));
        let rounds = sim.run_until_quiescent(20);
        assert!(rounds > 0);
        assert!(sim.messages() >= 3);
        assert!(sim.messages_per_initial_online() > 0.0);
        assert_eq!(sim.rounds_run(), rounds);
    }

    #[test]
    fn offline_nodes_do_not_participate() {
        let nodes: Vec<GnutellaNode> = (0..30)
            .map(|i| GnutellaNode::fully_connected(i, 30, 3, 6))
            .collect();
        let mut sim = BaselineSim::new(nodes, 1, 2).unwrap(); // only node 0 online
        sim.seed(0, |n, rng, out| n.seed_rumor(rumor(), rng, out));
        sim.run_until_quiescent(20);
        // Messages were sent but nobody received: awareness stays at the
        // initiator.
        assert!(sim.aware_fraction(|n| n.knows(rumor())) >= 0.99);
        assert_eq!(sim.nodes().iter().filter(|n| n.knows(rumor())).count(), 1);
    }

    #[test]
    fn churn_is_applied() {
        let nodes: Vec<GnutellaNode> = (0..100)
            .map(|i| GnutellaNode::fully_connected(i, 100, 3, 6))
            .collect();
        let mut sim = BaselineSim::new(nodes, 100, 3)
            .unwrap()
            .with_churn(MarkovChurn::new(0.5, 0.0).unwrap());
        sim.run_rounds(10);
        assert!(sim.online().online_count() < 10, "σ=0.5 decimates quickly");
    }

    #[test]
    fn oversized_online_count_is_an_error_not_a_panic() {
        let nodes: Vec<GnutellaNode> = (0..30)
            .map(|i| GnutellaNode::fully_connected(i, 30, 3, 6))
            .collect();
        let err = BaselineSim::new(nodes, 31, 4).unwrap_err();
        assert!(err.to_string().contains("exceeds population"), "{err}");
    }
}
