//! A small generic driver for baseline nodes.

use rumor_churn::{Churn, OnlineSet, StaticChurn};
use rumor_net::{Effect, Node, PerfectLinks, SyncEngine};
use rumor_types::{derive_seed, PeerId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Drives any population of [`Node`]s in synchronous rounds — the
/// baseline counterpart of `rumor_sim::Simulation`, generic over the
/// protocol.
pub struct BaselineSim<N: Node> {
    nodes: Vec<N>,
    online: OnlineSet,
    churn: Box<dyn Churn>,
    engine: SyncEngine<N::Msg>,
    rng: ChaCha8Rng,
    churn_rng: ChaCha8Rng,
    rounds_run: u32,
    initial_online: usize,
}

impl<N: Node> BaselineSim<N> {
    /// Creates a driver with `online_count` of the nodes initially online
    /// and no churn.
    ///
    /// # Panics
    ///
    /// Panics if `online_count` exceeds the population.
    pub fn new(nodes: Vec<N>, online_count: usize, seed: u64) -> Self {
        let population = nodes.len();
        let online = OnlineSet::with_online_count(population, online_count);
        Self {
            nodes,
            online,
            churn: Box::new(StaticChurn::new()),
            engine: SyncEngine::new(population),
            rng: ChaCha8Rng::seed_from_u64(derive_seed(seed, "baseline-protocol")),
            churn_rng: ChaCha8Rng::seed_from_u64(derive_seed(seed, "baseline-churn")),
            rounds_run: 0,
            initial_online: online_count,
        }
    }

    /// Installs a churn model.
    pub fn with_churn(mut self, churn: impl Churn + 'static) -> Self {
        self.churn = Box::new(churn);
        self
    }

    /// Seeds protocol state at node `index`, injecting any produced
    /// effects (e.g. the initiator's broadcast).
    pub fn seed<F>(&mut self, index: usize, f: F)
    where
        F: FnOnce(&mut N, &mut ChaCha8Rng) -> Vec<Effect<N::Msg>>,
    {
        let effects = f(&mut self.nodes[index], &mut self.rng);
        self.engine.inject(PeerId::new(index as u32), effects);
    }

    /// Executes one round (churn after round 0, then engine).
    pub fn step(&mut self) {
        if self.rounds_run > 0 {
            self.churn
                .step(self.rounds_run - 1, &mut self.online, &mut self.churn_rng);
        }
        self.engine
            .step(&mut self.nodes, &self.online, &PerfectLinks, &mut self.rng);
        self.rounds_run += 1;
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u32) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until quiescent or `max_rounds`; returns rounds executed.
    pub fn run_until_quiescent(&mut self, max_rounds: u32) -> u32 {
        let start = self.rounds_run;
        while !self.engine.is_quiescent() && self.rounds_run - start < max_rounds {
            self.step();
        }
        self.rounds_run - start
    }

    /// Fraction of *online* nodes satisfying `aware`.
    pub fn aware_fraction(&self, aware: impl Fn(&N) -> bool) -> f64 {
        let online = self.online.online_count();
        if online == 0 {
            return 0.0;
        }
        let count = self
            .online
            .iter_online()
            .filter(|p| aware(&self.nodes[p.index()]))
            .count();
        count as f64 / online as f64
    }

    /// Total messages sent so far.
    pub fn messages(&self) -> u64 {
        self.engine.stats().sent
    }

    /// Messages per initially-online node.
    pub fn messages_per_initial_online(&self) -> f64 {
        if self.initial_online == 0 {
            0.0
        } else {
            self.messages() as f64 / self.initial_online as f64
        }
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// Read access to the nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The availability state.
    pub fn online(&self) -> &OnlineSet {
        &self.online
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::GnutellaNode;
    use rumor_churn::MarkovChurn;
    use rumor_types::UpdateId;

    fn rumor() -> UpdateId {
        UpdateId::from_bits(5)
    }

    #[test]
    fn driver_counts_messages_and_rounds() {
        let nodes: Vec<GnutellaNode> = (0..30)
            .map(|i| GnutellaNode::fully_connected(i, 30, 3, 6))
            .collect();
        let mut sim = BaselineSim::new(nodes, 30, 1);
        sim.seed(0, |n, rng| n.seed_rumor(rumor(), rng));
        let rounds = sim.run_until_quiescent(20);
        assert!(rounds > 0);
        assert!(sim.messages() >= 3);
        assert!(sim.messages_per_initial_online() > 0.0);
        assert_eq!(sim.rounds_run(), rounds);
    }

    #[test]
    fn offline_nodes_do_not_participate() {
        let nodes: Vec<GnutellaNode> = (0..30)
            .map(|i| GnutellaNode::fully_connected(i, 30, 3, 6))
            .collect();
        let mut sim = BaselineSim::new(nodes, 1, 2); // only node 0 online
        sim.seed(0, |n, rng| n.seed_rumor(rumor(), rng));
        sim.run_until_quiescent(20);
        // Messages were sent but nobody received: awareness stays at the
        // initiator.
        assert!(sim.aware_fraction(|n| n.knows(rumor())) >= 0.99);
        assert_eq!(sim.nodes().iter().filter(|n| n.knows(rumor())).count(), 1);
    }

    #[test]
    fn churn_is_applied() {
        let nodes: Vec<GnutellaNode> = (0..100)
            .map(|i| GnutellaNode::fully_connected(i, 100, 3, 6))
            .collect();
        let mut sim =
            BaselineSim::new(nodes, 100, 3).with_churn(MarkovChurn::new(0.5, 0.0).unwrap());
        sim.run_rounds(10);
        assert!(sim.online().online_count() < 10, "σ=0.5 decimates quickly");
    }
}
