//! Flooding baselines: Gnutella, pure flooding, Haas GOSSIP1(p, k).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_net::{EffectSink, Node};
use rumor_types::{PeerId, Round, UpdateId};
use std::collections::BTreeSet;

/// A rumor copy in flight: the rumor id, remaining TTL and hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodMsg {
    /// The rumor being flooded.
    pub rumor: UpdateId,
    /// Remaining time-to-live (decremented per forward; 0 = do not
    /// forward further). Gnutella's scalability valve.
    pub ttl: u32,
    /// Hops travelled so far (Haas' `k` threshold reads this).
    pub hops: u32,
}

fn neighbors_of(population: usize, me: u32) -> Vec<PeerId> {
    (0..population as u32)
        .filter(|&j| j != me)
        .map(PeerId::new)
        .collect()
}

/// Gnutella-style limited flooding with duplicate avoidance (§5.6): on
/// the *first* copy of a rumor, forward it to `fanout` random neighbours
/// (minus the sender) while TTL remains; duplicates are dropped.
#[derive(Debug, Clone)]
pub struct GnutellaNode {
    id: PeerId,
    neighbors: Vec<PeerId>,
    fanout: usize,
    ttl: u32,
    seen: BTreeSet<UpdateId>,
    /// Duplicate copies received (observability).
    pub duplicates: u64,
    /// Reusable forwarding pool (hot path).
    pool_scratch: Vec<PeerId>,
}

impl GnutellaNode {
    /// Creates a node with an explicit neighbour list.
    pub fn new(id: u32, neighbors: Vec<PeerId>, fanout: usize, ttl: u32) -> Self {
        Self {
            id: PeerId::new(id),
            neighbors,
            fanout,
            ttl,
            seen: BTreeSet::new(),
            duplicates: 0,
            pool_scratch: Vec::new(),
        }
    }

    /// Convenience: node `id` of `population` knowing everyone.
    pub fn fully_connected(id: u32, population: usize, fanout: usize, ttl: u32) -> Self {
        Self::new(id, neighbors_of(population, id), fanout, ttl)
    }

    /// Whether the node has seen the rumor.
    pub fn knows(&self, rumor: UpdateId) -> bool {
        self.seen.contains(&rumor)
    }

    /// Number of neighbours this node can address.
    pub fn neighbor_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Seeds a rumor at this node (the initiator's broadcast), writing
    /// the resulting sends into `out`.
    pub fn seed_rumor(
        &mut self,
        rumor: UpdateId,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) {
        self.seen.insert(rumor);
        self.forward(rumor, self.ttl, 0, None, rng, out);
    }

    fn forward(
        &mut self,
        rumor: UpdateId,
        ttl: u32,
        hops: u32,
        exclude: Option<PeerId>,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) {
        if ttl == 0 {
            return;
        }
        let mut pool = std::mem::take(&mut self.pool_scratch);
        pool.clear();
        pool.extend(
            self.neighbors
                .iter()
                .copied()
                .filter(|&p| Some(p) != exclude),
        );
        pool.shuffle(rng);
        pool.truncate(self.fanout);
        for &to in &pool {
            out.send(
                to,
                FloodMsg {
                    rumor,
                    ttl: ttl - 1,
                    hops: hops + 1,
                },
            );
        }
        pool.clear();
        self.pool_scratch = pool;
    }
}

impl Node for GnutellaNode {
    type Msg = FloodMsg;

    fn id(&self) -> PeerId {
        self.id
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: FloodMsg,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) {
        if !self.seen.insert(msg.rumor) {
            self.duplicates += 1;
            return;
        }
        self.forward(msg.rumor, msg.ttl, msg.hops, Some(from), rng, out);
    }
}

/// Pure flooding *without* duplicate avoidance: every received copy is
/// re-forwarded while TTL lasts — the §5.6 worst case whose message count
/// is the geometric sum.
#[derive(Debug, Clone)]
pub struct PureFloodNode {
    inner: GnutellaNode,
}

impl PureFloodNode {
    /// Creates a node with an explicit neighbour list.
    pub fn new(id: u32, neighbors: Vec<PeerId>, fanout: usize, ttl: u32) -> Self {
        Self {
            inner: GnutellaNode::new(id, neighbors, fanout, ttl),
        }
    }

    /// Convenience: node `id` of `population` knowing everyone.
    pub fn fully_connected(id: u32, population: usize, fanout: usize, ttl: u32) -> Self {
        Self {
            inner: GnutellaNode::fully_connected(id, population, fanout, ttl),
        }
    }

    /// Whether the node has seen the rumor.
    pub fn knows(&self, rumor: UpdateId) -> bool {
        self.inner.knows(rumor)
    }

    /// Seeds a rumor at this node.
    pub fn seed_rumor(
        &mut self,
        rumor: UpdateId,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) {
        self.inner.seed_rumor(rumor, rng, out);
    }
}

impl Node for PureFloodNode {
    type Msg = FloodMsg;

    fn id(&self) -> PeerId {
        self.inner.id
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: FloodMsg,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) {
        if !self.inner.seen.insert(msg.rumor) {
            self.inner.duplicates += 1;
            // No duplicate avoidance: forward anyway.
        }
        self.inner
            .forward(msg.rumor, msg.ttl, msg.hops, Some(from), rng, out);
    }
}

/// Haas, Halpern & Li's GOSSIP1(p, k) (§5.6): flood deterministically for
/// the first `k` hops, then forward each first-seen rumor with
/// probability `p`. Duplicates are dropped as in Gnutella.
#[derive(Debug, Clone)]
pub struct HaasNode {
    inner: GnutellaNode,
    p: f64,
    k: u32,
}

impl HaasNode {
    /// Creates a node with an explicit neighbour list.
    pub fn new(id: u32, neighbors: Vec<PeerId>, fanout: usize, ttl: u32, p: f64, k: u32) -> Self {
        Self {
            inner: GnutellaNode::new(id, neighbors, fanout, ttl),
            p: p.clamp(0.0, 1.0),
            k,
        }
    }

    /// Convenience: node `id` of `population` knowing everyone.
    pub fn fully_connected(
        id: u32,
        population: usize,
        fanout: usize,
        ttl: u32,
        p: f64,
        k: u32,
    ) -> Self {
        Self::new(id, neighbors_of(population, id), fanout, ttl, p, k)
    }

    /// Whether the node has seen the rumor.
    pub fn knows(&self, rumor: UpdateId) -> bool {
        self.inner.knows(rumor)
    }

    /// Seeds a rumor at this node.
    pub fn seed_rumor(
        &mut self,
        rumor: UpdateId,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) {
        self.inner.seed_rumor(rumor, rng, out);
    }
}

impl Node for HaasNode {
    type Msg = FloodMsg;

    fn id(&self) -> PeerId {
        self.inner.id
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: FloodMsg,
        _round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<FloodMsg>,
    ) {
        if !self.inner.seen.insert(msg.rumor) {
            self.inner.duplicates += 1;
            return;
        }
        let forward = msg.hops < self.k || self.p >= 1.0 || rng.gen_bool(self.p);
        if forward {
            self.inner
                .forward(msg.rumor, msg.ttl, msg.hops, Some(from), rng, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BaselineSim;
    use rand::SeedableRng;
    use rumor_net::Effect;

    fn rumor() -> UpdateId {
        UpdateId::from_bits(99)
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(14)
    }

    fn sink() -> EffectSink<FloodMsg> {
        EffectSink::new()
    }

    #[test]
    fn gnutella_seed_respects_fanout_and_ttl() {
        let mut n = GnutellaNode::fully_connected(0, 50, 4, 3);
        let mut effects = sink();
        n.seed_rumor(rumor(), &mut rng(), &mut effects);
        assert_eq!(effects.len(), 4);
        for e in effects.as_slice() {
            let Effect::Send { msg, .. } = e else {
                panic!()
            };
            assert_eq!(msg.ttl, 2);
            assert_eq!(msg.hops, 1);
        }
        assert!(n.knows(rumor()));
    }

    #[test]
    fn gnutella_zero_ttl_does_not_forward() {
        let mut n = GnutellaNode::fully_connected(0, 10, 4, 1);
        let mut r = rng();
        let mut out = sink();
        n.on_message(
            PeerId::new(1),
            FloodMsg {
                rumor: rumor(),
                ttl: 0,
                hops: 1,
            },
            Round::ZERO,
            &mut r,
            &mut out,
        );
        assert!(out.is_empty());
        assert!(n.knows(rumor()));
    }

    #[test]
    fn gnutella_drops_duplicates() {
        let mut n = GnutellaNode::fully_connected(0, 10, 4, 5);
        let mut r = rng();
        let msg = FloodMsg {
            rumor: rumor(),
            ttl: 4,
            hops: 1,
        };
        let mut first = sink();
        n.on_message(PeerId::new(1), msg, Round::ZERO, &mut r, &mut first);
        let mut second = sink();
        n.on_message(PeerId::new(2), msg, Round::ZERO, &mut r, &mut second);
        assert!(!first.is_empty());
        assert!(second.is_empty());
        assert_eq!(n.duplicates, 1);
    }

    #[test]
    fn pure_flood_reforwards_duplicates() {
        let mut n = PureFloodNode::fully_connected(0, 10, 2, 5);
        let mut r = rng();
        let msg = FloodMsg {
            rumor: rumor(),
            ttl: 4,
            hops: 1,
        };
        let mut first = sink();
        n.on_message(PeerId::new(1), msg, Round::ZERO, &mut r, &mut first);
        let mut second = sink();
        n.on_message(PeerId::new(2), msg, Round::ZERO, &mut r, &mut second);
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2, "no duplicate avoidance");
    }

    #[test]
    fn haas_floods_before_k_then_gossips() {
        let mut n = HaasNode::fully_connected(0, 100, 3, 10, 0.0, 2);
        let mut r = rng();
        // hops < k: always forwards even with p = 0.
        let mut early = sink();
        n.on_message(
            PeerId::new(1),
            FloodMsg {
                rumor: UpdateId::from_bits(1),
                ttl: 9,
                hops: 1,
            },
            Round::ZERO,
            &mut r,
            &mut early,
        );
        assert_eq!(early.len(), 3);
        // hops >= k with p = 0: never forwards.
        let mut late = sink();
        n.on_message(
            PeerId::new(1),
            FloodMsg {
                rumor: UpdateId::from_bits(2),
                ttl: 9,
                hops: 5,
            },
            Round::ZERO,
            &mut r,
            &mut late,
        );
        assert!(late.is_empty());
    }

    #[test]
    fn end_to_end_message_ordering_matches_section_5_6() {
        // Same population, fanout and TTL: pure flooding sends the most
        // messages, Gnutella (duplicate avoidance) fewer, Haas fewer yet.
        let population = 200;
        let fanout = 4;
        let ttl = 8;
        let run_pure = {
            let nodes: Vec<PureFloodNode> = (0..population as u32)
                .map(|i| PureFloodNode::fully_connected(i, population, fanout, 5))
                .collect();
            let mut sim = BaselineSim::new(nodes, population, 21).unwrap();
            sim.seed(0, |n, rng, out| n.seed_rumor(rumor(), rng, out));
            sim.run_until_quiescent(30);
            sim.messages()
        };
        let run_gnutella = {
            let nodes: Vec<GnutellaNode> = (0..population as u32)
                .map(|i| GnutellaNode::fully_connected(i, population, fanout, ttl))
                .collect();
            let mut sim = BaselineSim::new(nodes, population, 21).unwrap();
            sim.seed(0, |n, rng, out| n.seed_rumor(rumor(), rng, out));
            sim.run_until_quiescent(30);
            // Fanout-4 epidemics leave a small tail of unreached peers.
            assert!(sim.aware_fraction(|n| n.knows(rumor())) > 0.9);
            sim.messages()
        };
        let run_haas = {
            let nodes: Vec<HaasNode> = (0..population as u32)
                .map(|i| HaasNode::fully_connected(i, population, fanout, ttl, 0.8, 2))
                .collect();
            let mut sim = BaselineSim::new(nodes, population, 21).unwrap();
            sim.seed(0, |n, rng, out| n.seed_rumor(rumor(), rng, out));
            sim.run_until_quiescent(30);
            assert!(sim.aware_fraction(|n| n.knows(rumor())) > 0.8);
            sim.messages()
        };
        assert!(
            run_pure > run_gnutella,
            "pure {run_pure} !> gnutella {run_gnutella}"
        );
        assert!(
            run_gnutella > run_haas,
            "gnutella {run_gnutella} !> haas {run_haas}"
        );
    }
}
