//! A P-Grid peer: path, routing table, replica list.

use crate::path::Path;
use crate::routing::RoutingTable;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};

/// One peer of the P-Grid overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PGridPeer {
    id: PeerId,
    path: Path,
    routing: RoutingTable,
    replicas: Vec<PeerId>,
}

impl PGridPeer {
    /// Creates a fresh peer at the root path.
    pub fn new(id: PeerId, ref_cap: usize) -> Self {
        Self {
            id,
            path: Path::root(),
            routing: RoutingTable::new(ref_cap),
            replicas: Vec::new(),
        }
    }

    /// The peer's identity.
    pub const fn id(&self) -> PeerId {
        self.id
    }

    /// The key-space partition this peer is responsible for.
    pub const fn path(&self) -> &Path {
        &self.path
    }

    /// The routing table.
    pub const fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Mutable routing table (the gossip layer applies routing updates).
    pub fn routing_mut(&mut self) -> &mut RoutingTable {
        &mut self.routing
    }

    /// Known replicas of this peer's partition (peers sharing its path).
    pub fn replicas(&self) -> &[PeerId] {
        &self.replicas
    }

    /// Whether this peer is responsible for a key mapped to `key_path`.
    pub fn is_responsible_for(&self, key_path: &Path) -> bool {
        self.path.is_prefix_of(key_path)
    }

    pub(crate) fn specialize(&mut self, bit: bool) {
        self.path = self.path.child(bit);
        // A path change invalidates the replica list: former replicas may
        // now cover the sibling partition.
        self.replicas.clear();
    }

    pub(crate) fn add_routing_ref(&mut self, level: u8, peer: PeerId) -> bool {
        self.routing.add_ref(level, peer)
    }

    pub(crate) fn add_replica(&mut self, peer: PeerId) -> bool {
        if peer == self.id || self.replicas.contains(&peer) {
            return false;
        }
        self.replicas.push(peer);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_peer_owns_everything() {
        let p = PGridPeer::new(PeerId::new(0), 4);
        assert!(p.path().is_empty());
        assert!(p.is_responsible_for(&"0101".parse().unwrap()));
        assert!(p.replicas().is_empty());
    }

    #[test]
    fn specialization_narrows_responsibility() {
        let mut p = PGridPeer::new(PeerId::new(0), 4);
        p.add_replica(PeerId::new(9));
        p.specialize(true);
        assert_eq!(format!("{}", p.path()), "1");
        assert!(p.is_responsible_for(&"10".parse().unwrap()));
        assert!(!p.is_responsible_for(&"01".parse().unwrap()));
        assert!(p.replicas().is_empty(), "replica list reset on split");
    }

    #[test]
    fn replica_list_deduplicates_and_excludes_self() {
        let mut p = PGridPeer::new(PeerId::new(0), 4);
        assert!(!p.add_replica(PeerId::new(0)), "self is not a replica");
        assert!(p.add_replica(PeerId::new(1)));
        assert!(!p.add_replica(PeerId::new(1)));
        assert_eq!(p.replicas(), &[PeerId::new(1)]);
    }

    #[test]
    fn routing_refs_reachable_through_accessors() {
        let mut p = PGridPeer::new(PeerId::new(0), 4);
        p.add_routing_ref(0, PeerId::new(3));
        assert_eq!(p.routing().level_refs(0), &[PeerId::new(3)]);
        p.routing_mut().add_ref(1, PeerId::new(4));
        assert_eq!(p.routing().total_refs(), 2);
    }
}
