//! Randomized-exchange construction of the trie.
//!
//! P-Grid self-organises through random pairwise meetings (Aberer 2001):
//! two peers with identical paths *split* the partition between them
//! (becoming mutual routing references); peers whose paths diverge
//! exchange references; peers that meet at maximum depth with the same
//! path become replicas of one another — producing exactly the replica
//! partitions the update protocol operates on.

use crate::peer::PGridPeer;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};

/// Statistics of a construction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstructionStats {
    /// Meetings that split a shared partition.
    pub splits: u64,
    /// Meetings that exchanged routing references.
    pub exchanges: u64,
    /// Meetings that established replica relations.
    pub replications: u64,
}

/// Builds `n` peers and runs `meetings_per_peer · n` random pairwise
/// meetings, limiting paths to `max_depth` bits.
///
/// # Panics
///
/// Panics if `n < 2` (meetings need two distinct peers) or
/// `max_depth == 0`.
pub fn build_peers(
    n: usize,
    max_depth: u8,
    meetings_per_peer: usize,
    ref_cap: usize,
    rng: &mut ChaCha8Rng,
) -> (Vec<PGridPeer>, ConstructionStats) {
    assert!(n >= 2, "construction needs at least two peers");
    assert!(max_depth > 0, "max_depth must be positive");
    let mut peers: Vec<PGridPeer> = (0..n)
        .map(|i| PGridPeer::new(PeerId::new(i as u32), ref_cap))
        .collect();
    let mut stats = ConstructionStats::default();
    let total_meetings = n * meetings_per_peer;
    for _ in 0..total_meetings {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        meet(&mut peers, a, b, max_depth, rng, &mut stats);
    }
    (peers, stats)
}

fn meet(
    peers: &mut [PGridPeer],
    a: usize,
    b: usize,
    max_depth: u8,
    rng: &mut ChaCha8Rng,
    stats: &mut ConstructionStats,
) {
    let (pa, pb) = (*peers[a].path(), *peers[b].path());
    let common = pa.common_prefix_len(&pb);
    let (id_a, id_b) = (peers[a].id(), peers[b].id());

    if common == pa.len() && common == pb.len() {
        // Identical paths: split if depth remains, else replicate.
        if pa.len() < max_depth {
            let first = rng.gen_bool(0.5);
            peers[a].specialize(first);
            peers[b].specialize(!first);
            peers[a].add_routing_ref(common, id_b);
            peers[b].add_routing_ref(common, id_a);
            stats.splits += 1;
        } else {
            let x = peers[a].add_replica(id_b);
            let y = peers[b].add_replica(id_a);
            if x || y {
                stats.replications += 1;
            }
        }
    } else if common == pa.len() {
        // a's path is a prefix of b's: a specialises into the half b does
        // not cover at the divergence level, making the pair complementary.
        let b_bit = pb.bit(common).expect("b is deeper");
        peers[a].specialize(!b_bit);
        peers[a].add_routing_ref(common, id_b);
        peers[b].add_routing_ref(common, id_a);
        stats.splits += 1;
    } else if common == pb.len() {
        let a_bit = pa.bit(common).expect("a is deeper");
        peers[b].specialize(!a_bit);
        peers[a].add_routing_ref(common, id_b);
        peers[b].add_routing_ref(common, id_a);
        stats.splits += 1;
    } else {
        // Paths diverge at `common`: perfect routing references for each
        // other at that level.
        peers[a].add_routing_ref(common, id_b);
        peers[b].add_routing_ref(common, id_a);
        stats.exchanges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn construction_specialises_paths() {
        let (peers, stats) = build_peers(64, 3, 30, 8, &mut rng(1));
        assert!(stats.splits > 0);
        // With plenty of meetings every peer reaches full depth.
        assert!(
            peers.iter().all(|p| p.path().len() == 3),
            "paths: {:?}",
            peers.iter().map(|p| p.path().len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_leaf_partition_is_populated() {
        let (peers, _) = build_peers(128, 3, 40, 8, &mut rng(2));
        for partition in 0u64..8 {
            let path = crate::path::Path::from_bits(partition << 61, 3);
            let owners = peers.iter().filter(|p| p.path() == &path).count();
            assert!(owners > 0, "partition {path} has no replica");
        }
    }

    #[test]
    fn replicas_are_mutual_and_same_path() {
        let (peers, stats) = build_peers(128, 2, 40, 8, &mut rng(3));
        assert!(
            stats.replications > 0,
            "max depth 2 with 128 peers replicates"
        );
        for p in &peers {
            for &r in p.replicas() {
                let other = &peers[r.index()];
                assert_eq!(other.path(), p.path(), "replicas share the path");
            }
        }
    }

    #[test]
    fn routing_refs_point_to_complement() {
        let (peers, _) = build_peers(64, 3, 40, 8, &mut rng(4));
        for p in &peers {
            for (level, target) in p.routing().iter() {
                if level >= p.path().len() {
                    continue; // ref collected before a later split
                }
                let t = &peers[target.index()];
                if level < t.path().len() {
                    // Paths must agree below `level` as seen at add time;
                    // after further splits the invariant that still holds
                    // is complementarity at the level itself.
                    let own_bit = p.path().bit(level);
                    let their_bit = t.path().bit(level);
                    assert_ne!(own_bit, their_bit, "level {level} ref not complementary");
                }
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = build_peers(32, 3, 20, 4, &mut rng(9));
        let (b, _) = build_peers(32, 3, 20, 4, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "two peers")]
    fn rejects_tiny_population() {
        let _ = build_peers(1, 3, 10, 4, &mut rng(1));
    }
}
