//! Routing-table updates as gossip payloads.
//!
//! §3: "in a decentralised system, such as P-Grid the 'data' may indeed
//! be knowledge regarding the system's topology, for example the routing
//! tables used in P-Grid". [`RoutingChange`] is that data item: a
//! serialisable routing-table delta whose wire form rides inside a
//! `rumor_core::Value`, so the gossip layer disseminates topology changes
//! with the exact same machinery as application data.

use crate::peer::PGridPeer;
use bytes::{Buf, BufMut, BytesMut};
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A delta to a routing table: references to add at one level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingChange {
    /// The trie level the references belong to.
    pub level: u8,
    /// Peers now covering the complementary subtree at that level.
    pub added: Vec<PeerId>,
}

/// Error decoding a [`RoutingChange`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeRoutingChangeError;

impl fmt::Display for DecodeRoutingChangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed routing change payload")
    }
}

impl std::error::Error for DecodeRoutingChangeError {}

impl RoutingChange {
    /// Creates a change.
    pub fn new(level: u8, added: Vec<PeerId>) -> Self {
        Self { level, added }
    }

    /// Serialises the change into opaque bytes (a gossip `Value`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(1 + 2 + self.added.len() * 4);
        buf.put_u8(self.level);
        buf.put_u16(self.added.len() as u16);
        for p in &self.added {
            buf.put_u32(p.as_u32());
        }
        buf.to_vec()
    }

    /// Decodes a change from gossip payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeRoutingChangeError`] on truncated or oversized
    /// input.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, DecodeRoutingChangeError> {
        if bytes.len() < 3 {
            return Err(DecodeRoutingChangeError);
        }
        let level = bytes.get_u8();
        let n = bytes.get_u16() as usize;
        if bytes.len() != n * 4 {
            return Err(DecodeRoutingChangeError);
        }
        let added = (0..n).map(|_| PeerId::new(bytes.get_u32())).collect();
        Ok(Self { level, added })
    }

    /// Applies the change to a peer's routing table, evicting the oldest
    /// reference per level when full; returns how many references were
    /// newly installed (duplicates do not count).
    pub fn apply_to(&self, peer: &mut PGridPeer) -> usize {
        self.added
            .iter()
            .filter(|&&p| peer.routing_mut().refresh_ref(self.level, p))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change() -> RoutingChange {
        RoutingChange::new(2, vec![PeerId::new(4), PeerId::new(9)])
    }

    #[test]
    fn bytes_roundtrip() {
        let c = change();
        let decoded = RoutingChange::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(decoded, c);
    }

    #[test]
    fn empty_change_roundtrips() {
        let c = RoutingChange::new(0, vec![]);
        assert_eq!(RoutingChange::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let bytes = change().to_bytes();
        assert!(RoutingChange::from_bytes(&bytes[..2]).is_err());
        assert!(RoutingChange::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(RoutingChange::from_bytes(&extended).is_err());
    }

    #[test]
    fn apply_adds_refs_once() {
        let mut peer = PGridPeer::new(PeerId::new(0), 8);
        let c = change();
        assert_eq!(c.apply_to(&mut peer), 2);
        assert_eq!(c.apply_to(&mut peer), 0, "idempotent re-application");
        assert_eq!(peer.routing().level_refs(2).len(), 2);
    }
}
