//! A minimal P-Grid overlay — the paper's host system.
//!
//! The update algorithm of the paper runs *inside* P-Grid (Aberer 2001):
//! a binary-trie access structure in which every peer is responsible for
//! one key-space partition (its *path*), keeps routing references to the
//! complementary subtree at every level, and replicates its partition's
//! data with the other peers sharing its path. This crate provides that
//! substrate: path arithmetic, randomized-exchange construction, prefix
//! routing, and replica-partition extraction — enough to host the gossip
//! protocol exactly as §2 assumes ("replicas within a logical partition
//! of the data space are connected among each other").
//!
//! It also demonstrates §3's observation that "the 'data' may indeed be
//! knowledge regarding the system's topology, for example the routing
//! tables": [`RoutingChange`] serialises a routing-table delta into an
//! opaque value that the gossip layer can disseminate.
//!
//! # Examples
//!
//! ```
//! use rumor_pgrid::{key_to_path, PGrid};
//! use rumor_types::DataKey;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let grid = PGrid::build(64, 3, 40, &mut rng);
//! let key = DataKey::from_name("inventory/widget");
//! let owner = grid.route(rumor_types::PeerId::new(0), key).expect("routable");
//! assert!(grid.peer(owner.responsible).path().is_prefix_of(&key_to_path(key, 3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construction;
mod grid;
mod hosted;
mod path;
mod peer;
mod routing;
mod update_integration;

pub use construction::{build_peers, ConstructionStats};
pub use grid::{PGrid, RouteOutcome};
pub use hosted::HostedPartition;
pub use path::{key_to_path, ParsePathError, Path};
pub use peer::PGridPeer;
pub use routing::RoutingTable;
pub use update_integration::{DecodeRoutingChangeError, RoutingChange};
