//! Binary key-space paths.

use rumor_types::DataKey;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary string of up to 64 bits identifying a key-space partition.
///
/// The empty path is the whole key space; each appended bit halves the
/// partition. Peers own paths; keys map to (deep) paths; a peer is
/// responsible for a key when its path is a prefix of the key's path.
///
/// # Examples
///
/// ```
/// use rumor_pgrid::Path;
///
/// let p: Path = "01".parse()?;
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.bit(1), Some(true));
/// assert!(p.is_prefix_of(&"011".parse()?));
/// assert!(!p.is_prefix_of(&"00".parse()?));
/// # Ok::<(), rumor_pgrid::ParsePathError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Path {
    bits: u64,
    len: u8,
}

impl Path {
    /// Maximum path depth.
    pub const MAX_LEN: u8 = 64;

    /// The empty path (the whole key space).
    pub const fn root() -> Self {
        Self { bits: 0, len: 0 }
    }

    /// Builds a path from the `len` most significant bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_bits(bits: u64, len: u8) -> Self {
        assert!(len <= Self::MAX_LEN, "path too deep");
        let mask = if len == 0 { 0 } else { u64::MAX << (64 - len) };
        Self {
            bits: bits & mask,
            len,
        }
    }

    /// Path length in bits.
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True for the root path.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th bit (0-indexed from the most significant end), or
    /// `None` past the end.
    pub fn bit(&self, i: u8) -> Option<bool> {
        (i < self.len).then(|| (self.bits >> (63 - i)) & 1 == 1)
    }

    /// Returns this path extended by one bit.
    ///
    /// # Panics
    ///
    /// Panics at maximum depth.
    #[must_use]
    pub fn child(&self, bit: bool) -> Self {
        assert!(self.len < Self::MAX_LEN, "path at maximum depth");
        let mut bits = self.bits;
        if bit {
            bits |= 1 << (63 - self.len);
        }
        Self {
            bits,
            len: self.len + 1,
        }
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        if self.len > other.len {
            return false;
        }
        if self.len == 0 {
            return true;
        }
        let mask = u64::MAX << (64 - self.len);
        (self.bits & mask) == (other.bits & mask)
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &Path) -> u8 {
        let max = self.len.min(other.len);
        if max == 0 {
            return 0;
        }
        let diff = self.bits ^ other.bits;
        let lead = diff.leading_zeros() as u8;
        lead.min(max)
    }

    /// The first `n` bits as a new path.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the path length.
    #[must_use]
    pub fn truncated(&self, n: u8) -> Self {
        assert!(n <= self.len, "cannot truncate beyond length");
        Self::from_bits(self.bits, n)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i).expect("in range")))?;
        }
        Ok(())
    }
}

/// Error parsing a [`Path`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    offending: char,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path character {:?} (want 0/1)", self.offending)
    }
}

impl std::error::Error for ParsePathError {}

impl std::str::FromStr for Path {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut path = Path::root();
        for c in s.chars() {
            match c {
                '0' => path = path.child(false),
                '1' => path = path.child(true),
                other => return Err(ParsePathError { offending: other }),
            }
        }
        Ok(path)
    }
}

/// Maps a data key into the binary key space at the given depth.
///
/// P-Grid prefixes keys by order-preserving hashing; `DataKey` is already
/// a well-distributed 64-bit value, so its top bits serve directly.
pub fn key_to_path(key: DataKey, depth: u8) -> Path {
    Path::from_bits(key.as_u64(), depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_empty_prefix_of_everything() {
        let root = Path::root();
        assert!(root.is_empty());
        assert!(root.is_prefix_of(&"0101".parse().unwrap()));
        assert_eq!(format!("{root}"), "ε");
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "0110", "111000111"] {
            let p: Path = s.parse().unwrap();
            assert_eq!(format!("{p}"), s);
            assert_eq!(p.len() as usize, s.len());
        }
    }

    #[test]
    fn parse_rejects_non_binary() {
        assert!("012".parse::<Path>().is_err());
    }

    #[test]
    fn child_appends_bits() {
        let p = Path::root().child(true).child(false);
        assert_eq!(format!("{p}"), "10");
        assert_eq!(p.bit(0), Some(true));
        assert_eq!(p.bit(1), Some(false));
        assert_eq!(p.bit(2), None);
    }

    #[test]
    fn prefix_relation() {
        let a: Path = "01".parse().unwrap();
        let b: Path = "010".parse().unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        let c: Path = "00".parse().unwrap();
        assert!(!a.is_prefix_of(&c));
    }

    #[test]
    fn common_prefix_lengths() {
        let a: Path = "0101".parse().unwrap();
        let b: Path = "0110".parse().unwrap();
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.common_prefix_len(&a), 4);
        assert_eq!(Path::root().common_prefix_len(&a), 0);
        let c: Path = "01".parse().unwrap();
        assert_eq!(a.common_prefix_len(&c), 2);
    }

    #[test]
    fn truncated_takes_prefix() {
        let a: Path = "0101".parse().unwrap();
        assert_eq!(format!("{}", a.truncated(2)), "01");
        assert_eq!(a.truncated(0), Path::root());
    }

    #[test]
    #[should_panic(expected = "beyond length")]
    fn truncated_rejects_overrun() {
        let a: Path = "01".parse().unwrap();
        let _ = a.truncated(3);
    }

    #[test]
    fn from_bits_masks_low_bits() {
        let a = Path::from_bits(u64::MAX, 2);
        assert_eq!(format!("{a}"), "11");
        let b = Path::from_bits(u64::MAX, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn key_to_path_is_stable_and_prefix_consistent() {
        let key = DataKey::from_name("x");
        let deep = key_to_path(key, 16);
        let shallow = key_to_path(key, 4);
        assert!(shallow.is_prefix_of(&deep));
        assert_eq!(deep, key_to_path(key, 16));
    }
}
