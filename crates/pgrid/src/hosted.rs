//! Hosting the update protocol on a P-Grid replica partition via the
//! declarative [`Scenario`] API.
//!
//! §3: in P-Grid every leaf path of the trie owns a *replica partition* —
//! the peers responsible for the keys under that path — and the paper's
//! update protocol runs *within* each partition. [`HostedPartition`]
//! extracts one partition, exposes the local-id ↔ overlay-id mapping, and
//! produces a partition-sized [`Scenario`] so the P-Grid-hosted peer
//! mounts into the exact same driver as every other contender.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use rumor_pgrid::{HostedPartition, PGrid};
//! use rumor_types::DataKey;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let grid = PGrid::build(128, 3, 60, &mut rng);
//! let host = HostedPartition::new(&grid, DataKey::from_name("motd"));
//! let scenario = host.scenario(7).build()?;
//! let mut driver = scenario.drive(&host.gossip_protocol()?);
//! driver.run_rounds(5);
//! assert_eq!(driver.population(), host.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::grid::PGrid;
use rumor_core::{CoreError, ProtocolConfig};
use rumor_sim::{PaperProtocol, ScenarioBuilder};
use rumor_types::{DataKey, PeerId};

/// One P-Grid replica partition prepared for hosting the update protocol:
/// the gossip layer runs over dense local ids `0..len`, mapped back to
/// overlay ids through [`HostedPartition::overlay_id`].
#[derive(Debug, Clone)]
pub struct HostedPartition {
    key: DataKey,
    members: Vec<PeerId>,
}

impl HostedPartition {
    /// Extracts the replica partition responsible for `key`.
    pub fn new(grid: &PGrid, key: DataKey) -> Self {
        Self {
            key,
            members: grid.replica_partition(key),
        }
    }

    /// The key whose partition this is.
    pub fn key(&self) -> DataKey {
        self.key
    }

    /// Partition size (the gossip population `R`).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The partition members' overlay ids, indexed by local id.
    pub fn members(&self) -> &[PeerId] {
        &self.members
    }

    /// Maps a partition-local peer id back to its overlay id.
    pub fn overlay_id(&self, local: PeerId) -> Option<PeerId> {
        self.members.get(local.index()).copied()
    }

    /// Starts a partition-sized scenario (full intra-partition knowledge,
    /// everyone online — tune further with the builder's methods).
    pub fn scenario(&self, seed: u64) -> ScenarioBuilder {
        ScenarioBuilder::new(self.len(), seed)
    }

    /// The paper protocol tuned the way the P-Grid integration tests run
    /// it: small absolute fanout plus the `no_updates_since` staleness
    /// pull, so anti-entropy repairs whatever the probabilistic push
    /// misses inside the partition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the partition is too small for a valid
    /// protocol configuration.
    pub fn gossip_protocol(&self) -> Result<PaperProtocol, CoreError> {
        let config = ProtocolConfig::builder(self.len())
            .fanout_absolute(3)
            .staleness_rounds(6)
            .build()?;
        Ok(PaperProtocol::new(config))
    }

    /// A protocol factory from an explicit configuration.
    pub fn protocol(&self, config: ProtocolConfig) -> PaperProtocol {
        PaperProtocol::new(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rumor_sim::{Protocol, UpdateEvent};

    fn grid() -> PGrid {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        PGrid::build(256, 4, 60, &mut rng)
    }

    #[test]
    fn partition_maps_local_to_overlay_ids() {
        let grid = grid();
        let host = HostedPartition::new(&grid, DataKey::from_name("a"));
        assert!(host.len() >= 4, "partition too small: {}", host.len());
        for (local, &overlay) in host.members().iter().enumerate() {
            assert_eq!(host.overlay_id(PeerId::new(local as u32)), Some(overlay));
        }
        assert_eq!(host.overlay_id(PeerId::new(host.len() as u32)), None);
    }

    #[test]
    fn replicated_hosted_partition_converges_in_every_replication() {
        // Multi-trial coverage for the P-Grid-hosted partition: each
        // replication builds the partition scenario from its own seed
        // substream, runs one update to quiescence, and must converge.
        use rumor_sim::{Experiment, ReplicatedReport, RunReport};
        let grid = grid();
        let host = HostedPartition::new(&grid, DataKey::from_name("rep"));
        let protocol = host.gossip_protocol().unwrap();
        let experiment = Experiment::new(31, 6);
        let run = |threads: usize| {
            let reports = experiment.clone().threads(threads).run(|rep| {
                let scenario = host.scenario(rep.seed).build().expect("valid scenario");
                let mut driver = scenario.drive(&protocol);
                let update = driver
                    .initiate(
                        &protocol,
                        Some(PeerId::new(rep.index % host.len() as u32)),
                        &UpdateEvent {
                            round: 0,
                            key: host.key(),
                            delete: false,
                            sequence: rep.index,
                        },
                    )
                    .expect("initiator is online");
                // Fixed-horizon run (not track_update): the hosted
                // protocol's staleness pull repairs push misses *after*
                // the push itself quiesces.
                driver.run_rounds(40);
                RunReport {
                    rounds: driver.rounds_run(),
                    aware_online_fraction: driver.aware_fraction(|n| protocol.is_aware(n, update)),
                    aware_total_fraction: driver
                        .aware_fraction_total(|n| protocol.is_aware(n, update)),
                    protocol_messages: driver
                        .nodes()
                        .iter()
                        .map(|n| protocol.protocol_messages(n))
                        .sum(),
                    total_messages: driver.messages(),
                    total_bytes: driver.bytes_sent(),
                    total_wasted: driver.stats().wasted(),
                    initial_online: driver.initial_online(),
                    per_round: Vec::new(),
                    per_round_sent: driver.stats().per_round_sent().clone(),
                }
            });
            for (i, report) in reports.iter().enumerate() {
                assert!(
                    (report.aware_online_fraction - 1.0).abs() < 1e-12,
                    "replication {i} failed to converge: {}",
                    report.aware_online_fraction
                );
            }
            ReplicatedReport::from_runs(&reports)
        };
        let agg = run(1);
        // Aggregation: every replication converged, so the awareness axis
        // is the constant 1 with a collapsed CI, and dispersion shows up
        // only in rounds/messages.
        assert_eq!(agg.n, 6);
        assert!((agg.aware_online_fraction.mean() - 1.0).abs() < 1e-12);
        assert!(agg.aware_online_fraction.ci95().half_width() < 1e-9);
        assert!(agg.total_messages.mean() > 0.0);
        assert!(agg.rounds.min() >= 1.0);
        // And the partition-scoped experiment is thread-count invariant
        // like every other consumer of the harness.
        assert_eq!(agg, run(4));
    }

    #[test]
    fn hosted_partition_runs_the_update_protocol_in_scenario() {
        let grid = grid();
        let host = HostedPartition::new(&grid, DataKey::from_name("b"));
        let scenario = host.scenario(5).build().unwrap();
        let protocol = host.gossip_protocol().unwrap();
        let mut driver = scenario.drive(&protocol);
        let update = driver
            .initiate(
                &protocol,
                Some(PeerId::new(0)),
                &UpdateEvent {
                    round: 0,
                    key: host.key(),
                    delete: false,
                    sequence: 0,
                },
            )
            .unwrap();
        driver.run_rounds(30);
        let aware = driver.aware_fraction(|n| protocol.is_aware(n, update));
        assert!(
            (aware - 1.0).abs() < 1e-12,
            "the whole partition learns the update, got {aware}"
        );
    }
}
