//! The assembled overlay: routing and partition queries.

use crate::construction::{build_peers, ConstructionStats};
use crate::path::{key_to_path, Path};
use crate::peer::PGridPeer;
use rand_chacha::ChaCha8Rng;
use rumor_types::{DataKey, PeerId};
use serde::{Deserialize, Serialize};

/// Result of routing a key through the trie.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// The responsible peer the query reached.
    pub responsible: PeerId,
    /// Overlay hops taken.
    pub hops: u32,
    /// The sequence of peers visited (starting peer first).
    pub visited: Vec<PeerId>,
}

/// A constructed P-Grid overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PGrid {
    peers: Vec<PGridPeer>,
    max_depth: u8,
    stats: ConstructionStats,
}

impl PGrid {
    /// Builds an overlay of `n` peers with paths up to `max_depth` bits
    /// using `meetings_per_peer` random meetings per peer.
    pub fn build(n: usize, max_depth: u8, meetings_per_peer: usize, rng: &mut ChaCha8Rng) -> Self {
        let (peers, stats) = build_peers(n, max_depth, meetings_per_peer, 8, rng);
        Self {
            peers,
            max_depth,
            stats,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the overlay has no peers (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Read access to a peer.
    ///
    /// # Panics
    ///
    /// Panics for ids outside the population.
    pub fn peer(&self, id: PeerId) -> &PGridPeer {
        &self.peers[id.index()]
    }

    /// Mutable access to a peer (applying gossiped routing updates).
    pub fn peer_mut(&mut self, id: PeerId) -> &mut PGridPeer {
        &mut self.peers[id.index()]
    }

    /// All peers.
    pub fn peers(&self) -> &[PGridPeer] {
        &self.peers
    }

    /// Construction statistics.
    pub const fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// Maximum trie depth.
    pub const fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Greedy prefix routing from `start` towards the partition of `key`
    /// (the P-Grid query algorithm): at each peer, follow a routing
    /// reference at the first level where the peer's path diverges from
    /// the key path. Returns `None` when a peer lacks the needed
    /// reference (incomplete construction).
    pub fn route(&self, start: PeerId, key: DataKey) -> Option<RouteOutcome> {
        let key_path = key_to_path(key, self.max_depth);
        let mut current = start;
        let mut visited = vec![start];
        // Matched prefix strictly grows per hop, so the hop count is
        // bounded by the depth; the +1 tolerates a root-path start.
        for hops in 0..=u32::from(self.max_depth) + 1 {
            let peer = &self.peers[current.index()];
            if peer.is_responsible_for(&key_path) {
                return Some(RouteOutcome {
                    responsible: current,
                    hops,
                    visited,
                });
            }
            let divergence = peer.path().common_prefix_len(&key_path);
            let next = peer.routing().level_refs(divergence).first().copied()?;
            visited.push(next);
            current = next;
        }
        None
    }

    /// The replica partition responsible for `key`: every peer whose path
    /// prefixes the key path. This is the replica set `R` the update
    /// protocol runs over (§2).
    pub fn replica_partition(&self, key: DataKey) -> Vec<PeerId> {
        let key_path = key_to_path(key, self.max_depth);
        self.peers
            .iter()
            .filter(|p| p.is_responsible_for(&key_path))
            .map(PGridPeer::id)
            .collect()
    }

    /// Partition sizes keyed by path — load-balance diagnostics.
    pub fn partition_sizes(&self) -> Vec<(Path, usize)> {
        let mut sizes: Vec<(Path, usize)> = Vec::new();
        for p in &self.peers {
            match sizes.iter_mut().find(|(path, _)| path == p.path()) {
                Some((_, n)) => *n += 1,
                None => sizes.push((*p.path(), 1)),
            }
        }
        sizes.sort_by_key(|(path, _)| format!("{path}"));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn grid(seed: u64) -> PGrid {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        PGrid::build(128, 3, 40, &mut rng)
    }

    #[test]
    fn every_key_routes_from_every_start() {
        let g = grid(1);
        let keys: Vec<DataKey> = (0..20)
            .map(|i| DataKey::from_name(&format!("k{i}")))
            .collect();
        for key in keys {
            for start in [0u32, 17, 63, 127] {
                let out = g
                    .route(PeerId::new(start), key)
                    .unwrap_or_else(|| panic!("no route for {key} from {start}"));
                let key_path = key_to_path(key, 3);
                assert!(g.peer(out.responsible).path().is_prefix_of(&key_path));
                assert!(out.hops <= 4, "hops bounded by depth: {}", out.hops);
                assert_eq!(out.visited.len() as u32, out.hops + 1);
            }
        }
    }

    #[test]
    fn hops_strictly_progress() {
        let g = grid(2);
        let key = DataKey::from_name("progress");
        let key_path = key_to_path(key, 3);
        let out = g.route(PeerId::new(5), key).unwrap();
        let mut last_match = 0;
        for (i, &p) in out.visited.iter().enumerate() {
            let m = g.peer(p).path().common_prefix_len(&key_path);
            if i > 0 {
                assert!(m > last_match, "matched prefix must grow");
            }
            last_match = m;
        }
    }

    #[test]
    fn replica_partition_matches_manual_scan() {
        let g = grid(3);
        let key = DataKey::from_name("partition");
        let members = g.replica_partition(key);
        assert!(!members.is_empty(), "every key has replicas");
        let key_path = key_to_path(key, 3);
        for p in g.peers() {
            assert_eq!(members.contains(&p.id()), p.path().is_prefix_of(&key_path));
        }
    }

    #[test]
    fn partition_sizes_cover_population() {
        let g = grid(4);
        let sizes = g.partition_sizes();
        let total: usize = sizes.iter().map(|(_, n)| n).sum();
        assert_eq!(total, g.len());
        assert_eq!(sizes.len(), 8, "depth-3 trie has 8 leaves");
        // The paper expects partitions of comparable size (load balance);
        // allow generous slack for randomness.
        let (min, max) = sizes
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), (_, n)| (lo.min(*n), hi.max(*n)));
        assert!(min >= 4, "smallest partition too small: {sizes:?}");
        assert!(max <= 64, "largest partition too large: {sizes:?}");
    }

    #[test]
    fn routing_to_own_partition_is_zero_hops() {
        let g = grid(5);
        // Find a key the start peer is responsible for.
        let start = PeerId::new(11);
        let path = *g.peer(start).path();
        let key = (0..10_000u64)
            .map(|i| DataKey::from_name(&format!("probe{i}")))
            .find(|&k| path.is_prefix_of(&key_to_path(k, 3)))
            .expect("some key lands in the partition");
        let out = g.route(start, key).unwrap();
        assert_eq!(out.hops, 0);
        assert_eq!(out.responsible, start);
    }
}
