//! Per-level routing references.

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};

/// A P-Grid routing table: `refs[l]` holds peers whose paths agree with
/// the owner on the first `l` bits and differ on bit `l` — i.e. they
/// cover the complementary half of the key space at level `l`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    refs: Vec<Vec<PeerId>>,
    cap_per_level: usize,
}

impl RoutingTable {
    /// Creates a table keeping at most `cap_per_level` references per
    /// level (P-Grid keeps small constant reference lists).
    pub fn new(cap_per_level: usize) -> Self {
        Self {
            refs: Vec::new(),
            cap_per_level: cap_per_level.max(1),
        }
    }

    /// Number of levels with at least one reference slot.
    pub fn levels(&self) -> usize {
        self.refs.len()
    }

    /// References at `level` (empty slice when none).
    pub fn level_refs(&self, level: u8) -> &[PeerId] {
        self.refs.get(level as usize).map_or(&[], Vec::as_slice)
    }

    /// Adds a reference at `level`; returns `false` when the level is
    /// full or the peer was already present.
    pub fn add_ref(&mut self, level: u8, peer: PeerId) -> bool {
        let idx = level as usize;
        while self.refs.len() <= idx {
            self.refs.push(Vec::new());
        }
        let slot = &mut self.refs[idx];
        if slot.contains(&peer) || slot.len() >= self.cap_per_level {
            return false;
        }
        slot.push(peer);
        true
    }

    /// Inserts a reference at `level`, evicting the *oldest* entry when
    /// the level is full — routing-table maintenance for refs learned via
    /// gossiped routing updates. Returns `false` only when the peer was
    /// already present.
    pub fn refresh_ref(&mut self, level: u8, peer: PeerId) -> bool {
        let idx = level as usize;
        while self.refs.len() <= idx {
            self.refs.push(Vec::new());
        }
        let slot = &mut self.refs[idx];
        if slot.contains(&peer) {
            return false;
        }
        if slot.len() >= self.cap_per_level {
            slot.remove(0);
        }
        slot.push(peer);
        true
    }

    /// A uniformly random reference at `level`, if any.
    pub fn random_ref(&self, level: u8, rng: &mut ChaCha8Rng) -> Option<PeerId> {
        self.level_refs(level).choose(rng).copied()
    }

    /// Total number of stored references.
    pub fn total_refs(&self) -> usize {
        self.refs.iter().map(Vec::len).sum()
    }

    /// Iterates `(level, peer)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u8, PeerId)> + '_ {
        self.refs
            .iter()
            .enumerate()
            .flat_map(|(l, peers)| peers.iter().map(move |&p| (l as u8, p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(30)
    }

    #[test]
    fn add_and_fetch() {
        let mut t = RoutingTable::new(4);
        assert!(t.add_ref(2, PeerId::new(7)));
        assert_eq!(t.level_refs(2), &[PeerId::new(7)]);
        assert!(t.level_refs(0).is_empty());
        assert_eq!(t.levels(), 3);
        assert_eq!(t.total_refs(), 1);
    }

    #[test]
    fn duplicates_rejected() {
        let mut t = RoutingTable::new(4);
        assert!(t.add_ref(0, PeerId::new(1)));
        assert!(!t.add_ref(0, PeerId::new(1)));
        assert_eq!(t.total_refs(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = RoutingTable::new(2);
        assert!(t.add_ref(0, PeerId::new(1)));
        assert!(t.add_ref(0, PeerId::new(2)));
        assert!(!t.add_ref(0, PeerId::new(3)), "level full");
        assert_eq!(t.level_refs(0).len(), 2);
    }

    #[test]
    fn random_ref_draws_from_level() {
        let mut t = RoutingTable::new(8);
        for i in 0..5 {
            t.add_ref(1, PeerId::new(i));
        }
        let mut r = rng();
        for _ in 0..20 {
            let p = t.random_ref(1, &mut r).unwrap();
            assert!(p.as_u32() < 5);
        }
        assert!(t.random_ref(0, &mut r).is_none());
    }

    #[test]
    fn iter_lists_every_entry() {
        let mut t = RoutingTable::new(4);
        t.add_ref(0, PeerId::new(1));
        t.add_ref(2, PeerId::new(2));
        let all: Vec<(u8, PeerId)> = t.iter().collect();
        assert_eq!(all, vec![(0, PeerId::new(1)), (2, PeerId::new(2))]);
    }
}
