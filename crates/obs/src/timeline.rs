//! A text timeline renderer over a [`TraceDoc`].

use crate::event::{EventKind, TraceEvent, CONDUCTOR};
use crate::trace::TraceDoc;
use std::fmt::Write as _;

/// Renders a round-by-round text timeline: per-round traffic totals
/// plus every discrete lifecycle event (churn transitions, crashes,
/// restarts, timers, initiations, first-awareness observations,
/// tampering). Deterministic for a canonical trace; intended for
/// humans, not machines — the JSON artefact is the machine surface.
pub fn render_timeline(doc: &TraceDoc) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {:?} seed={} population={} rounds={} events={}",
        doc.label,
        doc.seed,
        doc.population,
        doc.rounds(),
        doc.events.len()
    );
    let mut i = 0usize;
    while i < doc.events.len() {
        let round = doc.events[i].round;
        let mut j = i;
        while j < doc.events.len() && doc.events[j].round == round {
            j += 1;
        }
        render_round(&mut out, round, &doc.events[i..j]);
        i = j;
    }
    out
}

fn render_round(out: &mut String, round: u32, events: &[TraceEvent]) {
    let mut sends = 0u64;
    let mut bytes = 0u64;
    let mut delivered = 0u64;
    let mut drop_offline = 0u64;
    let mut drop_loss = 0u64;
    for e in events {
        match e.kind {
            EventKind::Send { bytes: b, .. } => {
                sends += 1;
                bytes += u64::from(b);
            }
            EventKind::Deliver { .. } => delivered += 1,
            EventKind::DropOffline { .. } => drop_offline += 1,
            EventKind::DropLoss { .. } => drop_loss += 1,
            _ => {}
        }
    }
    let _ = writeln!(
        out,
        "round {round:>4}  sent={sends} bytes={bytes} delivered={delivered} \
         drop_offline={drop_offline} drop_loss={drop_loss}"
    );
    for e in events {
        let who = |node: u32| {
            if node == CONDUCTOR {
                "conductor".to_owned()
            } else {
                format!("node {node}")
            }
        };
        match e.kind {
            EventKind::Status { online } => {
                let _ = writeln!(
                    out,
                    "  {} went {}",
                    who(e.node),
                    if online { "online" } else { "offline" }
                );
            }
            EventKind::Crash => {
                let _ = writeln!(out, "  {} crashed", who(e.node));
            }
            EventKind::Restart => {
                let _ = writeln!(out, "  {} restarted", who(e.node));
            }
            EventKind::TimerFire { tag } => {
                let _ = writeln!(out, "  {} timer fired (tag {tag})", who(e.node));
            }
            EventKind::Tamper => {
                let _ = writeln!(out, "  {} traffic tampered", who(e.node));
            }
            EventKind::Initiate { update } => {
                let _ = writeln!(out, "  {} initiated update {update}", who(e.node));
            }
            EventKind::Aware { update } => {
                let _ = writeln!(out, "  {} became aware of update {update}", who(e.node));
            }
            EventKind::Probe { online, aware } => {
                let _ = writeln!(out, "  probe: {aware}/{online} online nodes aware");
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MsgKind;

    #[test]
    fn renders_rounds_and_lifecycle_lines() {
        let doc = TraceDoc::new(
            "t",
            1,
            2,
            vec![
                TraceEvent {
                    round: 0,
                    node: 0,
                    seq: 0,
                    kind: EventKind::Initiate { update: 0 },
                },
                TraceEvent {
                    round: 0,
                    node: 0,
                    seq: 1,
                    kind: EventKind::Send {
                        to: 1,
                        kind: MsgKind::Push,
                        bytes: 50,
                    },
                },
                TraceEvent {
                    round: 1,
                    node: 1,
                    seq: 0,
                    kind: EventKind::Status { online: false },
                },
            ],
        );
        let text = render_timeline(&doc);
        assert!(text.contains("round    0  sent=1 bytes=50"));
        assert!(text.contains("node 0 initiated update 0"));
        assert!(text.contains("node 1 went offline"));
    }
}
