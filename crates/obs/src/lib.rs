//! `rumor-obs` — deterministic structured tracing for the rumor stack.
//!
//! The paper's results are *dynamics* (fraction-aware-per-round curves,
//! push die-out, pull repair), but aggregate reports only say how a run
//! *ended*. This crate is the workspace's single observability surface:
//! a sink-style [`Tracer`] trait the engines are generic over, a
//! zero-cost [`NopTracer`] default, and a ring-buffered [`MemTracer`]
//! that captures structured [`TraceEvent`]s for export.
//!
//! Two invariants make traces trustworthy:
//!
//! * **Virtual time only.** Events are stamped with the synchronous
//!   round and a per-node capture sequence — never wall-clock time, so
//!   the `determinism` lint holds and a trace is a pure function of the
//!   seed.
//! * **Tracing never perturbs the run.** A tracer consumes no
//!   randomness and emits no effects; the [`NopTracer`] path
//!   monomorphizes away entirely, and enabling a [`MemTracer`] changes
//!   no message, draw or outcome.
//!
//! Per-cell buffers from the parallel cluster executors merge into one
//! canonical `(round, node, seq)` order ([`TraceDoc::merge`]); the
//! [environment sub-trace](TraceDoc::environment) — conductor-side
//! decisions only — is bit-identical across executors and worker
//! counts. [`analysis`] derives awareness curves, per-round traffic
//! series and dissemination trees; [`render_timeline`] prints a human
//! view; [`TraceDoc::to_json`] writes the `rumor-obs/trace/v1`
//! artefact.
//!
//! # Examples
//!
//! ```
//! use rumor_obs::{EventKind, MemTracer, MsgKind, TraceDoc, Tracer};
//!
//! let mut tracer = MemTracer::new();
//! tracer.record(0, 0, EventKind::Initiate { update: 0 });
//! tracer.record(0, 0, EventKind::Send { to: 1, kind: MsgKind::Push, bytes: 64 });
//! tracer.record(1, 1, EventKind::Deliver { from: 0, kind: MsgKind::Push });
//! tracer.record(1, 1, EventKind::Aware { update: 0 });
//!
//! let doc = TraceDoc::new("example", 42, 2, tracer.take());
//! assert!(doc.to_json().contains("rumor-obs/trace/v1"));
//! let tree = rumor_obs::analysis::dissemination_tree(&doc.events, 0);
//! assert_eq!(tree[1].parent, Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod event;
pub mod json;
mod registry;
mod timeline;
mod trace;
mod tracer;

pub use event::{EventKind, MsgKind, TraceEvent, CONDUCTOR};
pub use registry::Registry;
pub use timeline::render_timeline;
pub use trace::{TraceDoc, TRACE_SCHEMA};
pub use tracer::{MemTracer, NopTracer, Tracer, DEFAULT_CAPACITY};
