//! Derived analysis over a captured event stream.
//!
//! The paper's figures are *dynamics* — fraction-aware-per-round curves,
//! push die-out, pull repair. This module reconstructs those dynamics
//! from the raw trace: cumulative awareness per round, per-round
//! frame/byte series, and the dissemination tree (who infected whom)
//! for each tracked update.

use crate::event::{EventKind, TraceEvent};
use rumor_metrics::RoundSeries;
use std::collections::BTreeMap;

/// Distinct update indices appearing in `events` (initiations and
/// awareness observations), ascending.
pub fn updates(events: &[TraceEvent]) -> Vec<u32> {
    let mut ids: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Initiate { update } | EventKind::Aware { update } => Some(update),
            _ => None,
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Cumulative number of nodes aware of `update` after each round in
/// which awareness grew (the initiator counts from its initiation
/// round). This is the paper's awareness curve in absolute counts;
/// normalise by the population for fractions.
pub fn awareness_curve(events: &[TraceEvent], update: u32) -> RoundSeries {
    let mut series = RoundSeries::new("nodes aware");
    let mut aware = 0u64;
    let mut per_round: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        let hit = match e.kind {
            EventKind::Initiate { update: u } | EventKind::Aware { update: u } => u == update,
            _ => false,
        };
        if hit {
            *per_round.entry(e.round).or_insert(0) += 1;
        }
    }
    for (round, grew) in per_round {
        aware += grew;
        series.record(round, aware as f64);
    }
    series
}

/// Messages/frames handed to the transport per round.
pub fn sends_per_round(events: &[TraceEvent]) -> RoundSeries {
    per_round_series(events, "sends", |kind| match kind {
        EventKind::Send { .. } => Some(1),
        _ => None,
    })
}

/// Encoded wire bytes handed to the transport per round (all zero when
/// no sizer was installed).
pub fn bytes_per_round(events: &[TraceEvent]) -> RoundSeries {
    per_round_series(events, "bytes", |kind| match kind {
        EventKind::Send { bytes, .. } => Some(u64::from(*bytes)),
        _ => None,
    })
}

fn per_round_series(
    events: &[TraceEvent],
    name: &str,
    weigh: impl Fn(&EventKind) -> Option<u64>,
) -> RoundSeries {
    let mut per_round: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        if let Some(w) = weigh(&e.kind) {
            *per_round.entry(e.round).or_insert(0) += w;
        }
    }
    let mut series = RoundSeries::new(name);
    for (round, v) in per_round {
        series.record(round, v as f64);
    }
    series
}

/// One edge of a dissemination tree: `node` first learned of the update
/// in `round`, infected by `parent` (`None` for the initiator, or when
/// the trace shows no delivery in the awareness round — e.g. the node
/// repaired itself from replica state on restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeEdge {
    /// The node that became aware.
    pub node: u32,
    /// The first-delivery parent, if one is visible in the trace.
    pub parent: Option<u32>,
    /// The round awareness was first observed.
    pub round: u32,
}

/// Reconstructs the dissemination tree of `update`: for every node the
/// round it first became aware and the *first-delivery parent* — the
/// sender of the first message delivered to it during that round. Edges
/// are ordered by `(round, node)`.
pub fn dissemination_tree(events: &[TraceEvent], update: u32) -> Vec<TreeEdge> {
    // First awareness round per node (initiation counts as awareness).
    let mut first_aware: BTreeMap<u32, (u32, bool)> = BTreeMap::new();
    for e in events {
        let (initiated, hit) = match e.kind {
            EventKind::Initiate { update: u } => (true, u == update),
            EventKind::Aware { update: u } => (false, u == update),
            _ => (false, false),
        };
        if hit {
            first_aware.entry(e.node).or_insert((e.round, initiated));
        }
    }
    // First delivery per (node, round), by capture sequence.
    let mut first_delivery: BTreeMap<(u32, u32), (u32, u32)> = BTreeMap::new();
    for e in events {
        if let EventKind::Deliver { from, .. } = e.kind {
            let slot = first_delivery
                .entry((e.node, e.round))
                .or_insert((e.seq, from));
            if e.seq < slot.0 {
                *slot = (e.seq, from);
            }
        }
    }
    let mut edges: Vec<TreeEdge> = first_aware
        .into_iter()
        .map(|(node, (round, initiated))| TreeEdge {
            node,
            parent: if initiated {
                None
            } else {
                first_delivery.get(&(node, round)).map(|&(_, from)| from)
            },
            round,
        })
        .collect();
    edges.sort_by_key(|e| (e.round, e.node));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MsgKind;

    fn ev(round: u32, node: u32, seq: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            round,
            node,
            seq,
            kind,
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            ev(0, 0, 0, EventKind::Initiate { update: 0 }),
            ev(
                0,
                0,
                1,
                EventKind::Send {
                    to: 1,
                    kind: MsgKind::Push,
                    bytes: 100,
                },
            ),
            ev(
                1,
                1,
                0,
                EventKind::Deliver {
                    from: 0,
                    kind: MsgKind::Push,
                },
            ),
            ev(1, 1, 1, EventKind::Aware { update: 0 }),
            ev(
                1,
                1,
                2,
                EventKind::Send {
                    to: 2,
                    kind: MsgKind::Push,
                    bytes: 60,
                },
            ),
            ev(
                2,
                2,
                0,
                EventKind::Deliver {
                    from: 1,
                    kind: MsgKind::Push,
                },
            ),
            ev(2, 2, 1, EventKind::Aware { update: 0 }),
        ]
    }

    #[test]
    fn awareness_curve_accumulates() {
        let curve = awareness_curve(&sample(), 0);
        let points: Vec<(u32, f64)> = curve.points().iter().map(|p| (p.round, p.value)).collect();
        assert_eq!(points, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert!(awareness_curve(&sample(), 9).points().is_empty());
    }

    #[test]
    fn per_round_series_sum_sends_and_bytes() {
        let sends = sends_per_round(&sample());
        assert_eq!(sends.points().len(), 2);
        assert_eq!(sends.total(), 2.0);
        let bytes = bytes_per_round(&sample());
        assert_eq!(bytes.total(), 160.0);
        assert_eq!(bytes.points()[0].value, 100.0);
    }

    #[test]
    fn tree_assigns_first_delivery_parents() {
        let edges = dissemination_tree(&sample(), 0);
        assert_eq!(
            edges,
            vec![
                TreeEdge {
                    node: 0,
                    parent: None,
                    round: 0
                },
                TreeEdge {
                    node: 1,
                    parent: Some(0),
                    round: 1
                },
                TreeEdge {
                    node: 2,
                    parent: Some(1),
                    round: 2
                },
            ]
        );
    }

    #[test]
    fn updates_lists_distinct_indices() {
        let mut events = sample();
        events.push(ev(3, 3, 0, EventKind::Initiate { update: 2 }));
        assert_eq!(updates(&events), vec![0, 2]);
    }
}
