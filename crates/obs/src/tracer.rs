//! The [`Tracer`] sink trait and its two canonical implementations.

use crate::event::{EventKind, TraceEvent};
use crate::registry::Registry;
use std::collections::BTreeMap;

/// A sink for structured trace events.
///
/// Engines are generic over the tracer and default to [`NopTracer`], so
/// the disabled path monomorphizes to nothing — no branch, no
/// allocation, no drift in any random stream. Implementations must never
/// consume randomness or otherwise influence the traced run.
pub trait Tracer {
    /// True when events are captured. Callers may use this to skip
    /// building derived observations (e.g. awareness probes over the
    /// whole population) that exist only for the trace.
    fn is_enabled(&self) -> bool;

    /// Records one event at `(round, node)`. Sequence numbers are
    /// assigned by the implementation.
    fn record(&mut self, round: u32, node: u32, kind: EventKind);
}

/// The default tracer: ignores everything. Compiles to a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopTracer;

impl Tracer for NopTracer {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _round: u32, _node: u32, _kind: EventKind) {}
}

/// Default [`MemTracer`] capacity: large enough for every test and smoke
/// scenario in the tree, small enough to bound a runaway capture.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A ring-buffered in-memory tracer.
///
/// Events are stamped with a per-node monotone sequence number at
/// capture time and kept in arrival order; once `capacity` is reached
/// the oldest events are overwritten (the dropped count is retained so
/// truncation is never silent). A per-node counter [`Registry`] is
/// folded incrementally from the same stream.
#[derive(Debug, Clone)]
pub struct MemTracer {
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Ring head: index of the oldest event once the buffer wrapped.
    head: usize,
    dropped: u64,
    seqs: BTreeMap<u32, u32>,
    registry: Registry,
}

impl MemTracer {
    /// Creates a tracer with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a tracer that retains at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Self {
            capacity,
            events: Vec::new(),
            head: 0,
            dropped: 0,
            seqs: BTreeMap::new(),
            registry: Registry::new(),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The per-node counter registry folded from the captured stream.
    pub const fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Returns the retained events in capture order, leaving the tracer
    /// empty (sequence counters and the registry are retained, so a
    /// tracer drained mid-run keeps stamping a coherent stream).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        let mut events = std::mem::take(&mut self.events);
        events.rotate_left(self.head);
        self.head = 0;
        events
    }

    /// The retained events in capture order (allocates when the ring has
    /// wrapped; borrow-free for the common unwrapped case is not worth
    /// the API split).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.clone();
        events.rotate_left(self.head);
        events
    }
}

impl Default for MemTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer for MemTracer {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, round: u32, node: u32, kind: EventKind) {
        let seq = self.seqs.entry(node).or_insert(0);
        let event = TraceEvent {
            round,
            node,
            seq: *seq,
            kind,
        };
        *seq += 1;
        self.registry.observe(&event);
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_tracer_is_disabled() {
        let mut t = NopTracer;
        assert!(!t.is_enabled());
        t.record(0, 0, EventKind::Crash);
    }

    #[test]
    fn mem_tracer_stamps_per_node_sequences() {
        let mut t = MemTracer::new();
        t.record(0, 1, EventKind::Crash);
        t.record(0, 2, EventKind::Crash);
        t.record(1, 1, EventKind::Restart);
        let events = t.take();
        assert_eq!(events.len(), 3);
        assert_eq!((events[0].node, events[0].seq), (1, 0));
        assert_eq!((events[1].node, events[1].seq), (2, 0));
        assert_eq!((events[2].node, events[2].seq), (1, 1));
        assert!(t.is_empty());
        // Sequence counters survive a drain.
        t.record(2, 1, EventKind::Crash);
        assert_eq!(t.events()[0].seq, 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = MemTracer::with_capacity(2);
        t.record(0, 0, EventKind::Crash);
        t.record(1, 0, EventKind::Restart);
        t.record(2, 0, EventKind::Crash);
        assert_eq!(t.dropped(), 1);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].round, 1, "oldest event was overwritten");
        assert_eq!(events[1].round, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = MemTracer::with_capacity(0);
    }
}
