//! A per-node counter/histogram registry folded from the event stream.

use crate::event::{EventKind, TraceEvent, CONDUCTOR};
use rumor_metrics::{CounterSet, Histogram};
use std::collections::BTreeMap;

/// Per-node counters plus a frame-size histogram, built incrementally
/// from captured [`TraceEvent`]s (see
/// [`MemTracer::registry`](crate::MemTracer::registry)) and foldable
/// into run-level reports via [`Registry::totals`].
#[derive(Debug, Clone)]
pub struct Registry {
    per_node: BTreeMap<u32, CounterSet>,
    frame_bytes: Histogram,
}

/// Counter names used by [`Registry::observe`].
const SENT: &str = "sent";
const DELIVERED: &str = "delivered";
const DROPPED_OFFLINE: &str = "dropped_offline";
const DROPPED_LOSS: &str = "dropped_loss";
const TIMERS: &str = "timers";
const CRASHES: &str = "crashes";
const RESTARTS: &str = "restarts";
const TAMPERED: &str = "tampered";
const BYTES: &str = "bytes_sent";

impl Registry {
    /// Creates an empty registry. The frame-size histogram covers
    /// `[0, 4096)` bytes in 64-byte cells — every frame in the tree fits
    /// well inside, and larger ones land in the overflow bucket without
    /// losing the count.
    pub fn new() -> Self {
        Self {
            per_node: BTreeMap::new(),
            frame_bytes: Histogram::new(0.0, 4096.0, 64),
        }
    }

    /// Folds one event into the per-node counters.
    pub fn observe(&mut self, event: &TraceEvent) {
        let (name, delta) = match event.kind {
            EventKind::Send { bytes, .. } => {
                self.frame_bytes.record(f64::from(bytes));
                if bytes > 0 {
                    self.node_mut(event.node).add(BYTES, u64::from(bytes));
                }
                (SENT, 1)
            }
            EventKind::Deliver { .. } => (DELIVERED, 1),
            EventKind::DropOffline { .. } => (DROPPED_OFFLINE, 1),
            EventKind::DropLoss { .. } => (DROPPED_LOSS, 1),
            EventKind::TimerFire { .. } => (TIMERS, 1),
            EventKind::Crash => (CRASHES, 1),
            EventKind::Restart => (RESTARTS, 1),
            EventKind::Tamper => (TAMPERED, 1),
            _ => return,
        };
        self.node_mut(event.node).add(name, delta);
    }

    fn node_mut(&mut self, node: u32) -> &mut CounterSet {
        self.per_node.entry(node).or_default()
    }

    /// The counters of one node, if it produced any counted event.
    pub fn node(&self, node: u32) -> Option<&CounterSet> {
        self.per_node.get(&node)
    }

    /// Iterates `(node, counters)` in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &CounterSet)> {
        self.per_node.iter().map(|(&n, c)| (n, c))
    }

    /// Number of nodes with at least one counted event.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// True when no counted event was observed.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// The frame-size histogram over every sized send.
    pub const fn frame_bytes(&self) -> &Histogram {
        &self.frame_bytes
    }

    /// Folds every node's counters (conductor included) into one set —
    /// the shape existing reports consume.
    pub fn totals(&self) -> CounterSet {
        let mut total = CounterSet::new();
        for counters in self.per_node.values() {
            total.merge(counters);
        }
        total
    }

    /// Folds only real-node counters, excluding [`CONDUCTOR`] events.
    pub fn node_totals(&self) -> CounterSet {
        let mut total = CounterSet::new();
        for (&node, counters) in &self.per_node {
            if node != CONDUCTOR {
                total.merge(counters);
            }
        }
        total
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MsgKind;

    fn ev(round: u32, node: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            round,
            node,
            seq: 0,
            kind,
        }
    }

    #[test]
    fn folds_sends_and_drops_per_node() {
        let mut r = Registry::new();
        r.observe(&ev(
            0,
            1,
            EventKind::Send {
                to: 2,
                kind: MsgKind::Push,
                bytes: 100,
            },
        ));
        r.observe(&ev(
            1,
            2,
            EventKind::Deliver {
                from: 1,
                kind: MsgKind::Push,
            },
        ));
        r.observe(&ev(1, 3, EventKind::DropLoss { from: 1 }));
        assert_eq!(r.node(1).unwrap().get("sent"), 1);
        assert_eq!(r.node(1).unwrap().get("bytes_sent"), 100);
        assert_eq!(r.node(2).unwrap().get("delivered"), 1);
        assert_eq!(r.node(3).unwrap().get("dropped_loss"), 1);
        assert_eq!(r.totals().get("sent"), 1);
        assert_eq!(r.frame_bytes().count(), 1);
        assert_eq!(r.node_count(), 3);
    }

    #[test]
    fn round_boundaries_are_not_counted() {
        let mut r = Registry::new();
        r.observe(&ev(0, CONDUCTOR, EventKind::RoundStart));
        r.observe(&ev(0, CONDUCTOR, EventKind::RoundEnd { sent: 5 }));
        assert!(r.is_empty());
    }

    #[test]
    fn node_totals_exclude_the_conductor() {
        let mut r = Registry::new();
        r.observe(&ev(0, CONDUCTOR, EventKind::Crash));
        r.observe(&ev(0, 4, EventKind::Crash));
        assert_eq!(r.totals().get("crashes"), 2);
        assert_eq!(r.node_totals().get("crashes"), 1);
    }
}
