//! The trace document: canonical ordering, the environment sub-trace,
//! the `rumor-obs/trace/v1` JSON artefact, and trace diffing.

use crate::analysis;
use crate::event::TraceEvent;
use crate::json::Json;
use rumor_metrics::RoundSeries;

/// Schema identifier written into every trace artefact.
pub const TRACE_SCHEMA: &str = "rumor-obs/trace/v1";

/// A complete captured run: identifying metadata plus the event stream
/// in canonical `(round, node, seq)` order.
///
/// Determinism contract: for a given seed the full document is
/// byte-identical across runs on the single-threaded deterministic
/// executors (engine, `VirtualCluster`), and the
/// [environment sub-trace](TraceDoc::environment) is additionally
/// byte-identical across *all* executors and worker counts, because it
/// contains only conductor-side decisions (round boundaries, churn,
/// crash/restart, initiations) drawn from seeded streams the message
/// interleaving cannot perturb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDoc {
    /// Human-readable run label (scenario or contender name).
    pub label: String,
    /// The run's master seed.
    pub seed: u64,
    /// Population size of the traced run.
    pub population: u32,
    /// Events in canonical order.
    pub events: Vec<TraceEvent>,
}

impl TraceDoc {
    /// Builds a document from one event buffer, sorting it into
    /// canonical order.
    pub fn new(label: &str, seed: u64, population: u32, mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(TraceEvent::key);
        Self {
            label: label.to_owned(),
            seed,
            population,
            events,
        }
    }

    /// Merges several per-cell buffers (each already per-node coherent)
    /// into one canonical document — how the threaded and sharded
    /// executors assemble a trace from their worker-local captures.
    pub fn merge(
        label: &str,
        seed: u64,
        population: u32,
        buffers: impl IntoIterator<Item = Vec<TraceEvent>>,
    ) -> Self {
        let mut events: Vec<TraceEvent> = buffers.into_iter().flatten().collect();
        events.sort_by_key(TraceEvent::key);
        Self {
            label: label.to_owned(),
            seed,
            population,
            events,
        }
    }

    /// The environment sub-trace: only events with
    /// [`EventKind::is_environment`](crate::EventKind::is_environment)
    /// retained, order preserved.
    pub fn environment(&self) -> Self {
        Self {
            label: self.label.clone(),
            seed: self.seed,
            population: self.population,
            events: self
                .events
                .iter()
                .filter(|e| e.kind.is_environment())
                .copied()
                .collect(),
        }
    }

    /// Rounds spanned by the trace (highest stamped round + 1).
    pub fn rounds(&self) -> u32 {
        self.events.iter().map(|e| e.round + 1).max().unwrap_or(0)
    }

    /// Renders the `rumor-obs/trace/v1` artefact: metadata, the raw
    /// event stream (one compact object per line), and the derived
    /// sections — awareness curves and dissemination trees per tracked
    /// update, plus per-round send/byte series. Ends with a newline.
    pub fn to_json(&self) -> String {
        let updates = analysis::updates(&self.events);
        let per_update: Vec<Json> = updates
            .iter()
            .map(|&u| {
                Json::obj([
                    ("update", Json::UInt(u64::from(u))),
                    (
                        "awareness",
                        series_json(&analysis::awareness_curve(&self.events, u)),
                    ),
                    (
                        "tree",
                        Json::Arr(
                            analysis::dissemination_tree(&self.events, u)
                                .into_iter()
                                .map(|edge| {
                                    Json::obj([
                                        ("node", Json::UInt(u64::from(edge.node))),
                                        (
                                            "parent",
                                            edge.parent
                                                .map_or(Json::Null, |p| Json::UInt(u64::from(p))),
                                        ),
                                        ("round", Json::UInt(u64::from(edge.round))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("schema", Json::str(TRACE_SCHEMA)),
            ("label", Json::str(&self.label)),
            ("seed", Json::UInt(self.seed)),
            ("population", Json::UInt(u64::from(self.population))),
            ("rounds", Json::UInt(u64::from(self.rounds()))),
            ("event_count", Json::UInt(self.events.len() as u64)),
            (
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| Json::Raw(e.compact_json()))
                        .collect(),
                ),
            ),
            (
                "derived",
                Json::obj([
                    (
                        "sends_per_round",
                        series_json(&analysis::sends_per_round(&self.events)),
                    ),
                    (
                        "bytes_per_round",
                        series_json(&analysis::bytes_per_round(&self.events)),
                    ),
                    ("updates", Json::Arr(per_update)),
                ]),
            ),
        ]);
        doc.pretty() + "\n"
    }

    /// First difference between two traces, as a human-readable
    /// description, or `None` when they are identical. Metadata is
    /// compared first, then events pairwise in canonical order.
    pub fn diff(&self, other: &Self) -> Option<String> {
        if self.label != other.label {
            return Some(format!("label: {:?} vs {:?}", self.label, other.label));
        }
        if self.seed != other.seed {
            return Some(format!("seed: {} vs {}", self.seed, other.seed));
        }
        if self.population != other.population {
            return Some(format!(
                "population: {} vs {}",
                self.population, other.population
            ));
        }
        for (i, (a, b)) in self.events.iter().zip(&other.events).enumerate() {
            if a != b {
                return Some(format!(
                    "event {i}: {} vs {}",
                    a.compact_json(),
                    b.compact_json()
                ));
            }
        }
        if self.events.len() != other.events.len() {
            let (longer, n) = if self.events.len() > other.events.len() {
                (&self.events, other.events.len())
            } else {
                (&other.events, self.events.len())
            };
            return Some(format!(
                "length: {} vs {} (first extra: {})",
                self.events.len(),
                other.events.len(),
                longer[n].compact_json()
            ));
        }
        None
    }
}

/// Renders a [`RoundSeries`] as an array of `[round, value]` pairs.
fn series_json(series: &RoundSeries) -> Json {
    Json::Arr(
        series
            .points()
            .iter()
            .map(|p| Json::Arr(vec![Json::UInt(u64::from(p.round)), Json::Num(p.value)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, MsgKind, CONDUCTOR};

    fn ev(round: u32, node: u32, seq: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            round,
            node,
            seq,
            kind,
        }
    }

    fn sample() -> TraceDoc {
        TraceDoc::merge(
            "sample",
            7,
            2,
            [
                vec![
                    ev(0, CONDUCTOR, 0, EventKind::RoundStart),
                    ev(0, 0, 0, EventKind::Initiate { update: 0 }),
                    ev(
                        0,
                        0,
                        1,
                        EventKind::Send {
                            to: 1,
                            kind: MsgKind::Push,
                            bytes: 80,
                        },
                    ),
                ],
                vec![
                    ev(
                        1,
                        1,
                        0,
                        EventKind::Deliver {
                            from: 0,
                            kind: MsgKind::Push,
                        },
                    ),
                    ev(1, 1, 1, EventKind::Aware { update: 0 }),
                    ev(1, CONDUCTOR, 1, EventKind::RoundStart),
                ],
            ],
        )
    }

    #[test]
    fn merge_sorts_canonically() {
        let doc = sample();
        let keys: Vec<_> = doc.events.iter().map(TraceEvent::key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(doc.events[0].node, CONDUCTOR, "conductor frames the round");
        assert_eq!(doc.rounds(), 2);
    }

    #[test]
    fn environment_subtrace_drops_message_level_events() {
        let env = sample().environment();
        assert_eq!(env.events.len(), 3); // 2 round starts + initiate
        assert!(env.events.iter().all(|e| e.kind.is_environment()));
    }

    #[test]
    fn json_carries_schema_and_derived_sections() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n  \"schema\": \"rumor-obs/trace/v1\""));
        assert!(json.contains("\"sends_per_round\""));
        assert!(json.contains("\"tree\""));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = sample();
        assert_eq!(a.diff(&a.clone()), None);
        let mut b = sample();
        b.events.pop();
        let d = a.diff(&b).expect("length divergence");
        assert!(d.contains("length"), "{d}");
        let mut c = sample();
        c.events[2].kind = EventKind::Send {
            to: 1,
            kind: MsgKind::Push,
            bytes: 81,
        };
        let d = a.diff(&c).expect("event divergence");
        assert!(d.contains("event 2"), "{d}");
    }
}
