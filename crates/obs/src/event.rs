//! The structured trace event model.
//!
//! Every event is stamped with *virtual time only*: the synchronous round
//! it happened in, the node it happened at, and a per-node sequence
//! number assigned at capture time. Wall-clock time never appears — that
//! is what keeps traces bit-reproducible across runs, executors and
//! worker counts.

/// Sentinel node id for events emitted by the experiment conductor (the
/// round loop itself) rather than by a peer: round boundaries, churn
/// decisions, convergence probes. Sorts *before* every real node within
/// a round in the canonical event order.
pub const CONDUCTOR: u32 = u32::MAX;

/// Coarse message classification for send/deliver events, produced by an
/// optional pure classifier function installed next to the wire sizer.
/// Engines that have no classifier stamp [`MsgKind::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// Unclassified (no classifier installed, or an unknown variant).
    Other,
    /// A push-phase rumor message.
    Push,
    /// A pull-phase digest request (first attempt or retry — retries are
    /// visible as the [`EventKind::TimerFire`] that precedes them).
    PullRequest,
    /// A pull response carrying full missing updates.
    PullResponse,
    /// A wire-v2 delta pull request (digest cursor).
    DeltaRequest,
    /// A wire-v2 delta response carrying updates since the cursor.
    DeltaResponse,
    /// A §6 receipt acknowledgement.
    Ack,
}

impl MsgKind {
    /// Stable lowercase name used in JSON and timelines.
    pub const fn name(self) -> &'static str {
        match self {
            Self::Other => "other",
            Self::Push => "push",
            Self::PullRequest => "pull_req",
            Self::PullResponse => "pull_resp",
            Self::DeltaRequest => "delta_req",
            Self::DeltaResponse => "delta_resp",
            Self::Ack => "ack",
        }
    }
}

/// What happened. All payload fields are `Copy` — recording an event
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A round began (conductor or engine scope).
    RoundStart,
    /// A round closed; `sent` messages/frames were queued during it.
    RoundEnd {
        /// Messages handed to the transport during the round.
        sent: u64,
    },
    /// The node handed a message to the transport.
    Send {
        /// Destination peer.
        to: u32,
        /// Coarse message class.
        kind: MsgKind,
        /// Encoded frame bytes (0 when no sizer is installed).
        bytes: u32,
    },
    /// A message reached the node.
    Deliver {
        /// Originating peer.
        from: u32,
        /// Coarse message class.
        kind: MsgKind,
    },
    /// A message was dropped because the destination was offline.
    DropOffline {
        /// Originating peer.
        from: u32,
    },
    /// A message was dropped by a link fault (loss model or partition).
    DropLoss {
        /// Originating peer.
        from: u32,
    },
    /// The node's availability changed (churn transition).
    Status {
        /// New availability.
        online: bool,
    },
    /// A protocol timer fired at the node.
    TimerFire {
        /// The timer's tag, protocol-defined.
        tag: u64,
    },
    /// The node's process crashed (fault injection).
    Crash,
    /// The node's process restarted from a fresh replica.
    Restart,
    /// A Byzantine host tampered with one of the node's outgoing
    /// messages.
    Tamper,
    /// The node initiated a tracked update.
    Initiate {
        /// Dense per-trace update index (assigned in initiation order).
        update: u32,
    },
    /// A convergence probe first observed the node aware of an update.
    Aware {
        /// Dense per-trace update index.
        update: u32,
    },
    /// A conductor-level convergence probe summary.
    Probe {
        /// Nodes online at the probe.
        online: u32,
        /// Online nodes aware of the probed update.
        aware: u32,
    },
}

impl EventKind {
    /// Stable lowercase name used in JSON and timelines.
    pub const fn name(&self) -> &'static str {
        match self {
            Self::RoundStart => "round_start",
            Self::RoundEnd { .. } => "round_end",
            Self::Send { .. } => "send",
            Self::Deliver { .. } => "deliver",
            Self::DropOffline { .. } => "drop_offline",
            Self::DropLoss { .. } => "drop_loss",
            Self::Status { .. } => "status",
            Self::TimerFire { .. } => "timer",
            Self::Crash => "crash",
            Self::Restart => "restart",
            Self::Tamper => "tamper",
            Self::Initiate { .. } => "initiate",
            Self::Aware { .. } => "aware",
            Self::Probe { .. } => "probe",
        }
    }

    /// True for *environment* events: decisions the conductor (round
    /// loop, churn model, fault plan) makes independently of message
    /// interleaving. The environment sub-trace of a run is identical
    /// across the virtual, threaded and sharded executors and any worker
    /// count, while the full message-level trace is only reproducible on
    /// the single-threaded deterministic paths.
    pub const fn is_environment(&self) -> bool {
        matches!(
            self,
            Self::RoundStart
                | Self::Status { .. }
                | Self::Crash
                | Self::Restart
                | Self::Initiate { .. }
        )
    }
}

/// One captured event: `(round, node, seq)` plus the payload. The triple
/// is the canonical sort key — `seq` is per-node monotone within a
/// round, so merging per-cell buffers by this key yields one canonical
/// order regardless of which executor (or how many workers) produced
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual round the event happened in.
    pub round: u32,
    /// Node the event happened at ([`CONDUCTOR`] for conductor events).
    pub node: u32,
    /// Per-node capture sequence within the trace.
    pub seq: u32,
    /// The event payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The canonical ordering key. The conductor sorts first within a
    /// round (its `u32::MAX` id wraps to 0), so round boundaries and
    /// churn decisions precede the node activity they frame.
    pub const fn key(&self) -> (u32, u32, u32) {
        (self.round, self.node.wrapping_add(1), self.seq)
    }

    /// Renders the event as one compact JSON object (no spaces, stable
    /// field order) — the line format used inside `TRACE_*.json`.
    pub fn compact_json(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"round\":");
        s.push_str(&self.round.to_string());
        s.push_str(",\"node\":");
        if self.node == CONDUCTOR {
            s.push_str("\"conductor\"");
        } else {
            s.push_str(&self.node.to_string());
        }
        s.push_str(",\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"ev\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        match self.kind {
            EventKind::RoundStart | EventKind::Crash | EventKind::Restart | EventKind::Tamper => {}
            EventKind::RoundEnd { sent } => {
                s.push_str(",\"sent\":");
                s.push_str(&sent.to_string());
            }
            EventKind::Send { to, kind, bytes } => {
                s.push_str(",\"to\":");
                s.push_str(&to.to_string());
                s.push_str(",\"kind\":\"");
                s.push_str(kind.name());
                s.push_str("\",\"bytes\":");
                s.push_str(&bytes.to_string());
            }
            EventKind::Deliver { from, kind } => {
                s.push_str(",\"from\":");
                s.push_str(&from.to_string());
                s.push_str(",\"kind\":\"");
                s.push_str(kind.name());
                s.push('"');
            }
            EventKind::DropOffline { from } | EventKind::DropLoss { from } => {
                s.push_str(",\"from\":");
                s.push_str(&from.to_string());
            }
            EventKind::Status { online } => {
                s.push_str(",\"online\":");
                s.push_str(if online { "true" } else { "false" });
            }
            EventKind::TimerFire { tag } => {
                s.push_str(",\"tag\":");
                s.push_str(&tag.to_string());
            }
            EventKind::Initiate { update } | EventKind::Aware { update } => {
                s.push_str(",\"update\":");
                s.push_str(&update.to_string());
            }
            EventKind::Probe { online, aware } => {
                s.push_str(",\"online\":");
                s.push_str(&online.to_string());
                s.push_str(",\"aware\":");
                s.push_str(&aware.to_string());
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductor_sorts_first_within_a_round() {
        let conductor = TraceEvent {
            round: 3,
            node: CONDUCTOR,
            seq: 9,
            kind: EventKind::RoundStart,
        };
        let node = TraceEvent {
            round: 3,
            node: 0,
            seq: 0,
            kind: EventKind::Crash,
        };
        assert!(conductor.key() < node.key());
        let earlier_round = TraceEvent {
            round: 2,
            node: 7,
            seq: 4,
            kind: EventKind::Crash,
        };
        assert!(earlier_round.key() < conductor.key());
    }

    #[test]
    fn compact_json_is_stable() {
        let ev = TraceEvent {
            round: 1,
            node: 4,
            seq: 2,
            kind: EventKind::Send {
                to: 9,
                kind: MsgKind::Push,
                bytes: 130,
            },
        };
        assert_eq!(
            ev.compact_json(),
            "{\"round\":1,\"node\":4,\"seq\":2,\"ev\":\"send\",\"to\":9,\"kind\":\"push\",\"bytes\":130}"
        );
        let probe = TraceEvent {
            round: 0,
            node: CONDUCTOR,
            seq: 0,
            kind: EventKind::Probe {
                online: 10,
                aware: 3,
            },
        };
        assert_eq!(
            probe.compact_json(),
            "{\"round\":0,\"node\":\"conductor\",\"seq\":0,\"ev\":\"probe\",\"online\":10,\"aware\":3}"
        );
    }

    #[test]
    fn environment_classification() {
        assert!(EventKind::RoundStart.is_environment());
        assert!(EventKind::Status { online: false }.is_environment());
        assert!(EventKind::Crash.is_environment());
        assert!(!EventKind::RoundEnd { sent: 1 }.is_environment());
        assert!(!EventKind::Deliver {
            from: 0,
            kind: MsgKind::Other
        }
        .is_environment());
    }
}
