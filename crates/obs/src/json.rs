//! A minimal hand-rolled JSON writer for trace artefacts.
//!
//! The workspace deliberately has no JSON dependency; like the bench and
//! fuzz crates, `rumor-obs` writes its artefacts through its own tiny
//! model. Only emission is needed here (traces are produced, never
//! parsed back), so the model is write-only: insertion-ordered objects,
//! 2-space pretty printing, plus a [`Json::Raw`] escape hatch that lets
//! a pre-rendered compact value (one trace event per line) embed inside
//! a pretty document.

use std::fmt::Write as _;

/// A JSON value for emission.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (rounds, counts, seeds).
    UInt(u64),
    /// A float, rendered like Rust's `{}` (used by derived series).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// A pre-rendered JSON fragment emitted verbatim.
    Raw(String),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(entries: [(&str, Json); N]) -> Self {
        Self::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Self {
        Self::Str(s.to_owned())
    }

    /// Renders with 2-space indentation and a stable layout.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Self::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Self::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Self::Raw(s) => out.push_str(s),
            Self::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Self::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    push_indent(out, indent + 1);
                    out.push('"');
                    escape_into(key, out);
                    out.push_str("\": ");
                    value.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Appends `s` to `out` with JSON string escaping.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_stable_layout() {
        let doc = Json::obj([
            ("schema", Json::str("rumor-obs/trace/v1")),
            ("n", Json::UInt(3)),
            ("f", Json::Num(0.5)),
            ("whole", Json::Num(2.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("empty", Json::Arr(vec![])),
            (
                "events",
                Json::Arr(vec![Json::Raw("{\"round\":0}".to_owned())]),
            ),
        ]);
        let expected = "{\n  \"schema\": \"rumor-obs/trace/v1\",\n  \"n\": 3,\n  \"f\": 0.5,\n  \"whole\": 2.0,\n  \"flag\": true,\n  \"none\": null,\n  \"empty\": [],\n  \"events\": [\n    {\"round\":0}\n  ]\n}";
        assert_eq!(doc.pretty(), expected);
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(doc.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
