//! The sharded real-time mode: M worker threads for N replica cells.
//!
//! One OS thread per replica ([`crate::ThreadedCluster`]) stops scaling
//! near N ≈ 1–2k: the conductor pays one channel round-trip and one
//! scheduler wakeup per replica per round, so frames/sec *falls* as the
//! population grows. This mode multiplexes the same [`NodeCell`]s over
//! a fixed worker pool instead: each worker owns one contiguous *shard*
//! of cells and pumps them through the unchanged tick loop, frames
//! cross shards as batched envelope vectors (one channel send per
//! sender-shard × receiver-shard pair per round, not one per frame),
//! and the conductor barriers on M shard reports instead of N node
//! reports. Populations of 10k+ live replicas fit comfortably on one
//! machine.
//!
//! Runtime semantics are identical to the threaded mode — same
//! [`rumor_sim::Scenario`] substreams (churn, control, faults,
//! Byzantine selection), same round-`t`-sent / tick-`t+1`-delivered
//! timing contract, same crash/restart and Byzantine behaviours — with
//! one structural difference: a *crash* parks the victim cell inside
//! its shard (the worker skips its ticks while frames accumulate in its
//! inbox) rather than terminating an OS thread. Restart un-parks it;
//! frames that became deliverable during the gap are dropped as
//! lost-to-offline on the first tick back, exactly like the other two
//! modes.
//!
//! Delivery ordering within a round depends on worker interleaving, so
//! like the threaded mode this path is distributionally — not
//! bit-for-bit — identical to the virtual-time mode; outcome-level
//! parity against the threaded mode is pinned by
//! `tests/cluster_sharded.rs`.

use crate::cell::{CellStats, DelaySpec, Envelope, NodeCell};
use crate::fault::{FaultInjector, FaultSpec};
use crate::report::ClusterReport;
use crate::trace::ConductorTrace;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_churn::{Churn, OnlineSet};
use rumor_net::{LinkFilter, Node};
use rumor_obs::TraceDoc;
use rumor_sim::{Protocol, Scenario, UpdateEvent};
use rumor_types::{derive_seed, PeerId, Round, UpdateId};
use rumor_wire::{Decode, Encode};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Envelopes bound for one shard's cells, flushed once per tick.
type Batch = Vec<(PeerId, Envelope)>;

/// Worker-thread count when [`crate::ClusterBuilder::workers`] is not
/// called: the machine's available parallelism (falling back to 4 when
/// the runtime cannot report it).
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// Contiguous balanced partition of `population` cells over `shards`
/// worker threads: the first `population % shards` shards own one extra
/// cell, so shard sizes differ by at most one.
#[derive(Debug, Clone, Copy)]
struct ShardMap {
    population: usize,
    shards: usize,
    /// Cells per shard before remainder distribution.
    base: usize,
    /// Shards owning `base + 1` cells.
    rem: usize,
}

impl ShardMap {
    fn new(population: usize, workers: usize) -> Self {
        let shards = workers.clamp(1, population.max(1));
        Self {
            population,
            shards,
            base: population / shards,
            rem: population % shards,
        }
    }

    fn shards(&self) -> usize {
        self.shards
    }

    fn population(&self) -> usize {
        self.population
    }

    /// The shard owning global cell index `index`.
    fn shard_of(&self, index: usize) -> usize {
        let wide = (self.base + 1) * self.rem;
        if index < wide {
            index / (self.base + 1)
        } else {
            self.rem + (index - wide) / self.base.max(1)
        }
    }

    /// The global index range `shard` owns.
    fn range(&self, shard: usize) -> std::ops::Range<usize> {
        if shard < self.rem {
            let start = shard * (self.base + 1);
            start..start + self.base + 1
        } else {
            let start = (self.base + 1) * self.rem + (shard - self.rem) * self.base;
            start..start + self.base
        }
    }
}

/// Conductor → shard control messages.
enum ShardCtrl {
    Tick {
        round: u32,
        /// Churn availability per cell, shard-local order.
        online: Vec<bool>,
        probe: Option<UpdateId>,
    },
    Initiate {
        peer: PeerId,
        event: UpdateEvent,
        round: u32,
    },
    /// Park `peer`'s cell: it misses ticks, its inbox accumulates.
    Crash { peer: PeerId },
    /// Un-park `peer`'s cell.
    Restart { peer: PeerId },
    /// Stop and hand the shard's cells back.
    Stop,
}

/// Awareness outcome of a probed tick, aggregated at shard granularity.
#[derive(Debug, Clone, Copy)]
struct ProbeOutcome {
    /// Whether any of the shard's cells was effectively online.
    any_online: bool,
    /// Whether every effectively-online cell was aware (vacuously true
    /// for a shard with nobody online).
    all_online_aware: bool,
}

/// Per-tick shard report: cumulative traffic stats summed over the
/// shard's cells (parked cells included — their counters never leave
/// the shard), plus queue depths and the optional awareness probe.
#[derive(Debug, Clone, Copy, Default)]
struct ShardReport {
    stats: CellStats,
    pending_frames: usize,
    pending_timers: usize,
    probe: Option<ProbeOutcome>,
}

/// Shard → conductor replies, tagged with the shard index.
enum ShardReply<N: Node> {
    Done(ShardReport),
    Initiated {
        update: UpdateId,
        report: ShardReport,
    },
    Stopped {
        cells: Vec<NodeCell<N>>,
    },
}

/// Sums stats and queue depths over `cells`, evaluating the awareness
/// probe against the effectively-online subset (`online && !down`).
fn shard_report<P>(
    protocol: &P,
    cells: &[NodeCell<P::Node>],
    down: &[bool],
    online: &[bool],
    probe: Option<UpdateId>,
) -> ShardReport
where
    P: Protocol,
    <P::Node as Node>::Msg: Encode + Decode,
{
    let mut report = ShardReport::default();
    for cell in cells {
        report.stats.absorb(&cell.stats);
        report.pending_frames += cell.pending_frames();
        report.pending_timers += cell.pending_timers();
    }
    report.probe = probe.map(|update| {
        let mut outcome = ProbeOutcome {
            any_online: false,
            all_online_aware: true,
        };
        for (i, cell) in cells.iter().enumerate() {
            if online[i] && !down[i] {
                outcome.any_online = true;
                if !protocol.is_aware(&cell.node, update) {
                    outcome.all_online_aware = false;
                }
            }
        }
        outcome
    });
    report
}

#[allow(clippy::too_many_arguments)] // spawn plumbing, called once per shard
fn shard_loop<P>(
    shard: usize,
    start: usize,
    map: ShardMap,
    mut cells: Vec<NodeCell<P::Node>>,
    protocol: Arc<P>,
    filter: Arc<dyn LinkFilter + Send + Sync>,
    ctrl: Receiver<ShardCtrl>,
    inbound: Receiver<Batch>,
    peers: Vec<Sender<Batch>>,
    replies: Sender<(usize, ShardReply<P::Node>)>,
) where
    P: Protocol,
    P::Node: Send,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    let mut down = vec![false; cells.len()];
    let mut outboxes: Vec<Batch> = (0..map.shards()).map(|_| Batch::new()).collect();
    // Flushes every non-empty outbox as one batch to its shard. Sends
    // cannot fail while the conductor lives: it owns a receiver clone
    // of every shard's batch channel source — the senders here — and
    // the matching receivers sit in live worker loops.
    let flush = |outboxes: &mut Vec<Batch>, peers: &[Sender<Batch>]| {
        for (target, outbox) in outboxes.iter_mut().enumerate() {
            if !outbox.is_empty() {
                let _ = peers[target].send(std::mem::take(outbox));
            }
        }
    };
    loop {
        let Ok(msg) = ctrl.recv() else {
            return; // conductor gone
        };
        match msg {
            ShardCtrl::Tick {
                round,
                online,
                probe,
            } => {
                // The conductor barriered the previous round, so every
                // batch of frames sent before this tick is already in
                // the inbound channel; frames from the current round
                // carry a later `deliver_from` and wait in the inbox.
                while let Ok(batch) = inbound.try_recv() {
                    for (to, env) in batch {
                        cells[to.index() - start].inbox.push_back(env);
                    }
                }
                for (i, cell) in cells.iter_mut().enumerate() {
                    if down[i] {
                        continue; // parked: no tick, inbox accumulates
                    }
                    cell.tick(round, online[i], &*filter, &mut |to, env| {
                        outboxes[map.shard_of(to.index())].push((to, env));
                    });
                }
                flush(&mut outboxes, &peers);
                let report = shard_report(&*protocol, &cells, &down, &online, probe);
                if replies.send((shard, ShardReply::Done(report))).is_err() {
                    return;
                }
            }
            ShardCtrl::Initiate { peer, event, round } => {
                let local = peer.index() - start;
                let update = cells[local].initiate(
                    round,
                    |node, rng, sink| protocol.initiate(node, &event, Round::new(round), rng, sink),
                    &mut |to, env| {
                        outboxes[map.shard_of(to.index())].push((to, env));
                    },
                );
                flush(&mut outboxes, &peers);
                // The report keeps the conductor's traffic snapshot
                // fresh: frames sent while initiating are visible to
                // `frames_sent()` before the next barrier.
                let report = shard_report(&*protocol, &cells, &down, &[], None);
                if replies
                    .send((shard, ShardReply::Initiated { update, report }))
                    .is_err()
                {
                    return;
                }
            }
            ShardCtrl::Crash { peer } => down[peer.index() - start] = true,
            ShardCtrl::Restart { peer } => down[peer.index() - start] = false,
            ShardCtrl::Stop => {
                let _ = replies.send((shard, ShardReply::Stopped { cells }));
                return;
            }
        }
    }
}

/// A live cluster multiplexing N replica cells over M worker threads.
///
/// Build one with
/// [`ClusterBuilder::sharded`](crate::ClusterBuilder::sharded) (worker
/// count via [`ClusterBuilder::workers`](crate::ClusterBuilder::workers),
/// defaulting to the machine's available parallelism); always
/// [`ShardedCluster::finish`] it (dropping shuts the workers down but
/// discards the report).
pub struct ShardedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    protocol: Arc<P>,
    map: ShardMap,
    ctrls: Vec<Sender<ShardCtrl>>,
    handles: Vec<Option<JoinHandle<()>>>,
    reply_rx: Receiver<(usize, ShardReply<P::Node>)>,
    online: OnlineSet,
    churn: Box<dyn Churn>,
    churn_rng: ChaCha8Rng,
    ctrl_rng: ChaCha8Rng,
    faults: FaultInjector,
    byzantine: Vec<bool>,
    /// Latest per-shard report (stats are cumulative).
    snapshots: Vec<ShardReport>,
    rounds_run: u32,
    converged_round: Option<u32>,
    /// The update the convergence probe state belongs to; probing a
    /// different update resets `converged_round`.
    probed_update: Option<UpdateId>,
    seed: u64,
    trace: Option<ConductorTrace>,
}

impl<P> std::fmt::Debug for ShardedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCluster")
            .field("population", &self.map.population())
            .field("workers", &self.map.shards())
            .field("rounds_run", &self.rounds_run)
            .finish_non_exhaustive()
    }
}

impl<P> ShardedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    pub(crate) fn mount(
        scenario: &Scenario,
        protocol: P,
        faults: FaultSpec,
        delay: DelaySpec,
        wire: rumor_wire::WireVersion,
        workers: Option<usize>,
        trace: bool,
    ) -> Self {
        let online = scenario.initial_online_set();
        let (cells, byzantine) =
            crate::builder::build_cells(scenario, &protocol, &online, &faults, delay, wire, trace);
        let population = cells.len();
        let trace = trace.then(|| ConductorTrace::new(&online, population));
        let map = ShardMap::new(population, workers.unwrap_or_else(default_workers));
        let protocol = Arc::new(protocol);
        let filter: Arc<dyn LinkFilter + Send + Sync> = Arc::from(scenario.link_filter());
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut batch_txs = Vec::with_capacity(map.shards());
        let mut batch_rxs = Vec::with_capacity(map.shards());
        for _ in 0..map.shards() {
            let (tx, rx) = mpsc::channel::<Batch>();
            batch_txs.push(tx);
            batch_rxs.push(rx);
        }
        let mut ctrls = Vec::with_capacity(map.shards());
        let mut handles = Vec::with_capacity(map.shards());
        let mut cells = cells.into_iter();
        for (shard, inbound) in batch_rxs.into_iter().enumerate() {
            let range = map.range(shard);
            let shard_cells: Vec<NodeCell<P::Node>> = cells.by_ref().take(range.len()).collect();
            let (ctrl_tx, ctrl_rx) = mpsc::channel();
            let protocol = Arc::clone(&protocol);
            let filter = Arc::clone(&filter);
            let peers = batch_txs.clone();
            let replies = reply_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("rumor-shard-{shard}"))
                .spawn(move || {
                    shard_loop::<P>(
                        shard,
                        range.start,
                        map,
                        shard_cells,
                        protocol,
                        filter,
                        ctrl_rx,
                        inbound,
                        peers,
                        replies,
                    )
                })
                .expect("spawn cluster shard thread");
            ctrls.push(ctrl_tx);
            handles.push(Some(handle));
        }
        Self {
            protocol,
            map,
            ctrls,
            handles,
            reply_rx,
            online,
            churn: scenario.make_churn(),
            churn_rng: ChaCha8Rng::seed_from_u64(derive_seed(scenario.seed(), "churn")),
            ctrl_rng: ChaCha8Rng::seed_from_u64(derive_seed(scenario.seed(), "cluster/control")),
            faults: FaultInjector::new(
                faults,
                derive_seed(scenario.seed(), "cluster/fault"),
                population,
            ),
            byzantine,
            snapshots: vec![ShardReport::default(); map.shards()],
            rounds_run: 0,
            converged_round: None,
            probed_update: None,
            seed: scenario.seed(),
            trace,
        }
    }

    /// Population size (= cells multiplexed over the worker pool).
    pub fn population(&self) -> usize {
        self.map.population()
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.map.shards()
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// Nodes churn-online and not crashed.
    pub fn online_count(&self) -> usize {
        self.online_peers().len()
    }

    /// Peers that are churn-online and not crashed right now, ascending.
    pub fn online_peers(&self) -> Vec<PeerId> {
        (0..self.map.population() as u32)
            .map(PeerId::new)
            .filter(|&p| self.effective_online(p))
            .collect()
    }

    fn effective_online(&self, peer: PeerId) -> bool {
        self.online.is_online(peer) && !self.faults.is_down(peer)
    }

    /// Whether `peer` was mounted as a Byzantine member.
    pub fn is_byzantine(&self, peer: PeerId) -> bool {
        self.byzantine.get(peer.index()).copied().unwrap_or(false)
    }

    /// Frames handed to the transport so far (per the last barrier or
    /// initiation).
    pub fn frames_sent(&self) -> u64 {
        self.snapshots.iter().map(|s| s.stats.sent).sum()
    }

    /// Encoded bytes of [`ShardedCluster::frames_sent`].
    pub fn bytes_sent(&self) -> u64 {
        self.snapshots.iter().map(|s| s.stats.bytes_sent).sum()
    }

    /// Logical protocol messages inside [`ShardedCluster::frames_sent`]
    /// (equal to it under wire v1; larger under v2 batch frames).
    pub fn messages_sent(&self) -> u64 {
        self.snapshots.iter().map(|s| s.stats.messages_sent).sum()
    }

    /// True when, as of the last barrier, every frame was consumed, no
    /// timer is armed, and no node is crashed.
    pub fn is_quiescent(&self) -> bool {
        if self.faults.any_down() {
            return false;
        }
        let sent: u64 = self.snapshots.iter().map(|s| s.stats.sent).sum();
        let consumed: u64 = self.snapshots.iter().map(|s| s.stats.consumed()).sum();
        sent == consumed
            && self
                .snapshots
                .iter()
                .all(|s| s.pending_frames == 0 && s.pending_timers == 0)
    }

    /// Waits for one reply from `from`, asserting its variant via
    /// `pick`. No reply from any other shard can be outstanding: the
    /// conductor barriers every tick before issuing new control.
    fn recv_from<T>(&self, from: usize, pick: impl Fn(ShardReply<P::Node>) -> Option<T>) -> T {
        let (shard, reply) = self
            .reply_rx
            .recv()
            .expect("cluster shard channel closed unexpectedly");
        assert_eq!(shard, from, "unexpected reply sender during control wait");
        pick(reply).unwrap_or_else(|| panic!("unexpected reply variant from shard {from}"))
    }

    /// Initiates `event` at a random effectively-online node. `None`
    /// when nobody is up.
    pub fn initiate(&mut self, event: &UpdateEvent) -> Option<UpdateId> {
        let candidates = self.online_peers();
        if candidates.is_empty() {
            return None;
        }
        let initiator = candidates[self.ctrl_rng.gen_range(0..candidates.len())];
        let shard = self.map.shard_of(initiator.index());
        self.ctrls[shard]
            .send(ShardCtrl::Initiate {
                peer: initiator,
                event: event.clone(),
                round: self.rounds_run,
            })
            .expect("shard alive");
        let (update, report) = self.recv_from(shard, |reply| match reply {
            ShardReply::Initiated { update, report } => Some((update, report)),
            _ => None,
        });
        // Fold the fresh snapshot so traffic accounting never lags an
        // initiation; the probe outcome still belongs to the last
        // probed tick.
        let probe = self.snapshots[shard].probe;
        self.snapshots[shard] = report;
        self.snapshots[shard].probe = probe;
        if let Some(trace) = self.trace.as_mut() {
            trace.initiate(self.rounds_run, initiator, update);
        }
        Some(update)
    }

    /// Executes one round across all shards, with an optional awareness
    /// probe for `probe`.
    pub fn step(&mut self, probe: Option<UpdateId>) {
        if self.rounds_run > 0 {
            self.churn
                .step(self.rounds_run - 1, &mut self.online, &mut self.churn_rng);
        }
        let round = self.rounds_run;
        if let Some(trace) = self.trace.as_mut() {
            trace.round_start(round, &self.online);
        }
        // Fault events ride the ctrl channels ahead of the tick: FIFO
        // ordering guarantees a shard parks/un-parks the cell before it
        // pumps this round.
        let events = self.faults.step(round);
        if let Some(trace) = self.trace.as_mut() {
            trace.fault_events(round, &events);
        }
        for peer in events.restarts {
            self.ctrls[self.map.shard_of(peer.index())]
                .send(ShardCtrl::Restart { peer })
                .expect("shard alive");
        }
        if let Some(peer) = events.crash {
            self.ctrls[self.map.shard_of(peer.index())]
                .send(ShardCtrl::Crash { peer })
                .expect("shard alive");
        }
        if let Some(update) = probe {
            if self.probed_update != Some(update) {
                // A fresh update is being probed: the previous probe's
                // convergence verdict must not leak into this one.
                self.probed_update = Some(update);
                self.converged_round = None;
            }
        }

        // Broadcast the tick to every shard…
        for (shard, ctrl) in self.ctrls.iter().enumerate() {
            let online = self
                .map
                .range(shard)
                .map(|i| self.online.is_online(PeerId::new(i as u32)))
                .collect();
            ctrl.send(ShardCtrl::Tick {
                round,
                online,
                probe,
            })
            .expect("shard alive");
        }
        // …and barrier on their reports.
        for _ in 0..self.ctrls.len() {
            let (shard, reply) = self
                .reply_rx
                .recv()
                .expect("cluster shard channel closed unexpectedly");
            match reply {
                ShardReply::Done(report) => self.snapshots[shard] = report,
                _ => panic!("unexpected non-Done reply from shard {shard} during tick barrier"),
            }
        }
        self.rounds_run += 1;

        if probe.is_some() && self.converged_round.is_none() && self.probe_converged() {
            self.converged_round = Some(round);
        }
    }

    /// Whether the last probed tick saw every effectively-online cell
    /// aware (and at least one online), per the shard reports.
    fn probe_converged(&self) -> bool {
        let mut any = false;
        for snapshot in &self.snapshots {
            let Some(probe) = snapshot.probe else {
                return false;
            };
            if !probe.all_online_aware {
                return false;
            }
            any |= probe.any_online;
        }
        any
    }

    /// Runs `n` rounds without probing (the throughput path).
    pub fn run_rounds(&mut self, n: u32) {
        for _ in 0..n {
            self.step(None);
        }
    }

    /// Steps (probing every round) until every online node is aware of
    /// `update` or `max_rounds` elapse; returns the converged round.
    pub fn run_until_all_online_aware(&mut self, update: UpdateId, max_rounds: u32) -> Option<u32> {
        let start = self.rounds_run;
        while self.rounds_run - start < max_rounds {
            self.step(Some(update));
            if self.converged_round.is_some() {
                return self.converged_round;
            }
        }
        None
    }

    /// Gracefully shuts the worker pool down, reclaims the node states
    /// and folds the run into a [`ClusterReport`] for `update`.
    pub fn finish(self, update: UpdateId) -> ClusterReport {
        self.finish_traced(update, "sharded").0
    }

    /// Like [`ShardedCluster::finish`], additionally assembling the
    /// captured trace into a canonical [`TraceDoc`] labelled `label`
    /// (conductor events plus every reclaimed cell's buffer), or `None`
    /// when the cluster was not built with
    /// [`ClusterBuilder::traced`](crate::ClusterBuilder::traced).
    pub fn finish_traced(
        mut self,
        update: UpdateId,
        label: &str,
    ) -> (ClusterReport, Option<TraceDoc>) {
        let mut shard_cells: Vec<Vec<NodeCell<P::Node>>> = Vec::with_capacity(self.ctrls.len());
        shard_cells.resize_with(self.ctrls.len(), Vec::new);
        for ctrl in &self.ctrls {
            ctrl.send(ShardCtrl::Stop).expect("shard alive");
        }
        for _ in 0..self.ctrls.len() {
            let (shard, reply) = self
                .reply_rx
                .recv()
                .expect("cluster shard channel closed unexpectedly");
            match reply {
                ShardReply::Stopped { cells } => shard_cells[shard] = cells,
                _ => panic!("unexpected non-Stopped reply from shard {shard} during shutdown"),
            }
        }
        for handle in &mut self.handles {
            if let Some(handle) = handle.take() {
                handle.join().expect("cluster shard panicked");
            }
        }
        let mut cells: Vec<NodeCell<P::Node>> = shard_cells.into_iter().flatten().collect();

        let aware_set: Vec<PeerId> = cells
            .iter()
            .filter(|c| self.protocol.is_aware(&c.node, update))
            .map(|c| c.id)
            .collect();
        let online = self.online_count();
        let aware_online = aware_set
            .iter()
            .filter(|&&p| self.effective_online(p))
            .count();
        let report = ClusterReport::fold(
            crate::report::RunOutcome {
                rounds: self.rounds_run,
                crashes: self.faults.crashes,
                restarts: self.faults.restarts,
                online,
                aware_online,
                converged_round: self.converged_round,
                aware_set,
                byzantine: self.byzantine.iter().filter(|&&f| f).count(),
            },
            cells.iter().map(|c| &c.stats),
        );
        let population = self.map.population() as u32;
        let trace = self.trace.as_mut().map(|conductor| {
            let buffers = std::iter::once(conductor.take())
                .chain(cells.iter_mut().map(NodeCell::take_trace))
                .collect::<Vec<_>>();
            TraceDoc::merge(label, self.seed, population, buffers)
        });
        (report, trace)
    }
}

impl<P> Drop for ShardedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    fn drop(&mut self) {
        // Best-effort shutdown for clusters dropped without `finish`
        // (including unwinds): stop every shard and join it. After a
        // `finish` the channels are closed and the handles taken, so
        // both loops no-op.
        for ctrl in &self.ctrls {
            let _ = ctrl.send(ShardCtrl::Stop);
        }
        for handle in &mut self.handles {
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_partitions_contiguously_and_exhaustively() {
        for (population, workers) in [(1, 1), (5, 2), (7, 8), (64, 6), (1000, 16), (10_000, 12)] {
            let map = ShardMap::new(population, workers);
            assert!(map.shards() <= workers.max(1));
            assert!(map.shards() <= population);
            let mut covered = 0usize;
            let mut next = 0usize;
            for shard in 0..map.shards() {
                let range = map.range(shard);
                assert_eq!(range.start, next, "ranges must be contiguous");
                next = range.end;
                for index in range.clone() {
                    assert_eq!(
                        map.shard_of(index),
                        shard,
                        "shard_of({index}) disagrees with range({shard}) at N={population} M={workers}"
                    );
                }
                covered += range.len();
            }
            assert_eq!(covered, population, "every cell owned exactly once");
            assert_eq!(next, population);
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let map = ShardMap::new(10, 4);
        let sizes: Vec<usize> = (0..map.shards()).map(|s| map.range(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced shards: {sizes:?}");
    }

    #[test]
    fn worker_count_is_clamped_to_the_population() {
        assert_eq!(ShardMap::new(3, 64).shards(), 3);
        assert_eq!(ShardMap::new(64, 0).shards(), 1);
        assert_eq!(ShardMap::new(64, 4).shards(), 4);
    }
}
