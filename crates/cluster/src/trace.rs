//! Conductor-side trace capture shared by the three executors.
//!
//! Message-level events (send, deliver, drop, timer, tamper) are
//! captured inside each [`NodeCell`](crate::cell::NodeCell)'s own
//! `MemTracer`, so they never cross a thread boundary until the run
//! finishes. Everything the *conductor* decides — round boundaries,
//! churn transitions, crash/restart faults, update initiations — is
//! captured here instead, from the same seeded streams in the same
//! order in all three modes. That makes the environment sub-trace
//! ([`TraceDoc::environment`](rumor_obs::TraceDoc::environment))
//! byte-identical across the virtual, threaded and sharded executors
//! and across worker counts, even though message interleavings (and
//! therefore the full trace) are only deterministic in virtual time.

use crate::fault::FaultEvents;
use rumor_churn::OnlineSet;
use rumor_obs::{EventKind, MemTracer, TraceEvent, Tracer, CONDUCTOR};
use rumor_types::{PeerId, UpdateId};

/// The conductor's trace state: an event buffer plus the bookkeeping
/// needed to turn seeded decisions into events (previous availability
/// for churn transitions, dense per-trace update indices, per-update
/// awareness snapshots for the probe path).
pub(crate) struct ConductorTrace {
    tracer: MemTracer,
    prev_online: Vec<bool>,
    traced_updates: Vec<UpdateId>,
    /// The update the awareness snapshot belongs to.
    aware_update: Option<UpdateId>,
    aware: Vec<bool>,
}

impl ConductorTrace {
    /// Starts a conductor capture primed with the round-0 availability
    /// (priming is not a transition, mirroring the cell semantics).
    pub fn new(online: &OnlineSet, population: usize) -> Self {
        Self {
            tracer: MemTracer::new(),
            prev_online: (0..population)
                .map(|i| online.is_online(PeerId::new(i as u32)))
                .collect(),
            traced_updates: Vec::new(),
            aware_update: None,
            aware: vec![false; population],
        }
    }

    /// Emits the round boundary and any churn transitions since the
    /// previous round, in ascending node order.
    pub fn round_start(&mut self, round: u32, online: &OnlineSet) {
        self.tracer.record(round, CONDUCTOR, EventKind::RoundStart);
        for (i, prev) in self.prev_online.iter_mut().enumerate() {
            let now = online.is_online(PeerId::new(i as u32));
            if *prev != now {
                *prev = now;
                self.tracer
                    .record(round, i as u32, EventKind::Status { online: now });
            }
        }
    }

    /// Emits this round's fault decisions in application order:
    /// restarts first, then at most one crash.
    pub fn fault_events(&mut self, round: u32, events: &FaultEvents) {
        for peer in &events.restarts {
            self.tracer.record(round, peer.as_u32(), EventKind::Restart);
        }
        if let Some(victim) = events.crash {
            self.tracer.record(round, victim.as_u32(), EventKind::Crash);
        }
    }

    /// Dense per-trace index of `update`, assigned in initiation order.
    fn update_index(&mut self, update: UpdateId) -> u32 {
        match self.traced_updates.iter().position(|&u| u == update) {
            Some(i) => i as u32,
            None => {
                self.traced_updates.push(update);
                (self.traced_updates.len() - 1) as u32
            }
        }
    }

    /// Emits an initiation at `initiator`.
    pub fn initiate(&mut self, round: u32, initiator: PeerId, update: UpdateId) {
        let index = self.update_index(update);
        self.tracer.record(
            round,
            initiator.as_u32(),
            EventKind::Initiate { update: index },
        );
    }

    /// Folds one convergence-probe observation (virtual time only, where
    /// per-node awareness is visible to the conductor): emits `Aware`
    /// for every node newly aware of `update`, then the probe summary.
    /// The initiator counts as aware from its `Initiate` event, not a
    /// duplicate `Aware`.
    pub fn probe(
        &mut self,
        round: u32,
        update: UpdateId,
        aware_now: impl Iterator<Item = bool>,
        online: u32,
    ) {
        if self.aware_update != Some(update) {
            self.aware_update = Some(update);
            self.aware.iter_mut().for_each(|a| *a = false);
            if let Some(initiator) = self.initiator_of(update) {
                self.aware[initiator.index()] = true;
            }
        }
        let index = self.update_index(update);
        let mut aware_count = 0u32;
        for (i, now) in aware_now.enumerate() {
            if now {
                aware_count += 1;
                if !self.aware[i] {
                    self.aware[i] = true;
                    self.tracer
                        .record(round, i as u32, EventKind::Aware { update: index });
                }
            }
        }
        self.tracer.record(
            round,
            CONDUCTOR,
            EventKind::Probe {
                online,
                aware: aware_count,
            },
        );
    }

    /// The node whose `Initiate` event carries `update`, if captured.
    fn initiator_of(&self, update: UpdateId) -> Option<PeerId> {
        let index = self.traced_updates.iter().position(|&u| u == update)? as u32;
        self.tracer.events().iter().find_map(|e| match e.kind {
            EventKind::Initiate { update: u } if u == index => Some(PeerId::new(e.node)),
            _ => None,
        })
    }

    /// Drains the captured buffer.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_obs::TraceDoc;

    #[test]
    fn churn_transitions_emit_status_once_per_flip() {
        let mut online = OnlineSet::all_offline(3);
        online.set_online(PeerId::new(0), true);
        let mut trace = ConductorTrace::new(&online, 3);
        trace.round_start(0, &online);
        online.set_online(PeerId::new(0), false);
        online.set_online(PeerId::new(2), true);
        trace.round_start(1, &online);
        trace.round_start(2, &online);
        let doc = TraceDoc::new("t", 0, 3, trace.take());
        let statuses: Vec<_> = doc
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Status { .. }))
            .collect();
        assert_eq!(statuses.len(), 2, "one event per transition");
        assert_eq!(statuses[0].node, 0);
        assert_eq!(statuses[1].node, 2);
        assert_eq!(doc.environment().events.len(), 5, "3 rounds + 2 statuses");
    }

    #[test]
    fn probe_emits_aware_once_and_skips_the_initiator() {
        let online = OnlineSet::all_offline(3);
        let mut trace = ConductorTrace::new(&online, 3);
        let update = UpdateId::from_bits(9);
        trace.initiate(0, PeerId::new(1), update);
        // Initiator plus node 2 aware: only node 2 gets an Aware event.
        trace.probe(1, update, [false, true, true].into_iter(), 2);
        trace.probe(2, update, [true, true, true].into_iter(), 3);
        let events = trace.take();
        let aware: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Aware { .. }))
            .map(|e| (e.round, e.node))
            .collect();
        assert_eq!(aware, vec![(1, 2), (2, 0)]);
        let probes = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Probe { .. }))
            .count();
        assert_eq!(probes, 2);
    }
}
