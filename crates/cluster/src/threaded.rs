//! The multi-threaded real-time mode: one OS thread per replica.
//!
//! Every node runs on its own thread, joined by in-process mpsc channels
//! carrying *encoded* `rumor-wire` frames — no shared protocol state,
//! exactly the deployment shape of the paper's replicas. A conductor
//! (the caller's thread) paces rounds: it steps churn, applies the fault
//! injector (a crash really terminates the victim's thread; its mailbox
//! and node state survive for the restart), broadcasts one `Tick` per
//! live worker, and barriers on their `Done` reports — which carry
//! cumulative traffic stats and optional awareness probes, giving
//! quiescence detection and convergence tracking without ever touching a
//! worker's state from outside.
//!
//! Delivery timing matches the sync round model: a frame sent during
//! round `t` is processed at tick `t + 1` (workers buffer frames whose
//! `deliver_from` exceeds the current round), so protocol behaviour is
//! distributionally identical to the virtual-time mode; only arrival
//! interleavings — and therefore RNG realisations — differ.

use crate::cell::{CellStats, DelaySpec, Envelope, NodeCell};
use crate::fault::{FaultInjector, FaultSpec};
use crate::report::ClusterReport;
use crate::trace::ConductorTrace;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_churn::{Churn, OnlineSet};
use rumor_net::{LinkFilter, Node};
use rumor_obs::TraceDoc;
use rumor_sim::{Protocol, Scenario, UpdateEvent};
use rumor_types::{derive_seed, PeerId, Round, UpdateId};
use rumor_wire::{Decode, Encode};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Conductor → worker control messages.
enum Ctrl {
    Tick {
        round: u32,
        online: bool,
        probe: Option<UpdateId>,
    },
    Initiate {
        event: UpdateEvent,
        round: u32,
    },
    /// Stop and hand back the cell + mailbox (crash or graceful
    /// shutdown — the conductor decides which it was).
    Stop,
}

/// Per-tick worker report: cumulative stats snapshot plus queue depths.
#[derive(Debug, Clone, Copy)]
struct DoneReport {
    stats: CellStats,
    pending_frames: usize,
    pending_timers: usize,
    aware: Option<bool>,
}

/// Worker → conductor replies, tagged with the worker's peer id.
enum Reply<N: Node> {
    Done(DoneReport),
    /// Initiation outcome plus a fresh stats snapshot: frames sent
    /// while initiating must reach the conductor's accounting
    /// immediately, not at the next barrier (and not never, should the
    /// worker crash before its next tick).
    Initiated {
        update: UpdateId,
        report: DoneReport,
    },
    Stopped {
        cell: Box<NodeCell<N>>,
        mailbox: Receiver<Envelope>,
    },
}

/// One worker slot as the conductor sees it.
enum Slot<N: Node> {
    Running {
        ctrl: Sender<Ctrl>,
        handle: JoinHandle<()>,
    },
    /// Crashed: the thread exited; state and mailbox wait for restart.
    Crashed {
        cell: Box<NodeCell<N>>,
        mailbox: Receiver<Envelope>,
    },
}

fn worker_loop<P>(
    mut cell: NodeCell<P::Node>,
    protocol: Arc<P>,
    filter: Arc<dyn LinkFilter + Send + Sync>,
    ctrl: Receiver<Ctrl>,
    data: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    replies: Sender<(PeerId, Reply<P::Node>)>,
) where
    P: Protocol,
    P::Node: Send,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    let id = cell.id;
    loop {
        let Ok(msg) = ctrl.recv() else {
            return; // conductor gone
        };
        match msg {
            Ctrl::Tick {
                round,
                online,
                probe,
            } => {
                // Everything sent before this tick's barrier is already
                // in the channel; frames from the current round carry a
                // later `deliver_from` and wait in the inbox.
                while let Ok(env) = data.try_recv() {
                    cell.inbox.push_back(env);
                }
                cell.tick(round, online, &*filter, &mut |to, env| {
                    // Sends cannot fail: every mailbox receiver survives
                    // crashes inside the conductor's slot.
                    let _ = peers[to.index()].send(env);
                });
                let report = DoneReport {
                    stats: cell.stats,
                    pending_frames: cell.pending_frames(),
                    pending_timers: cell.pending_timers(),
                    aware: probe.map(|u| protocol.is_aware(&cell.node, u)),
                };
                if replies.send((id, Reply::Done(report))).is_err() {
                    return;
                }
            }
            Ctrl::Initiate { event, round } => {
                let update = cell.initiate(
                    round,
                    |node, rng, sink| protocol.initiate(node, &event, Round::new(round), rng, sink),
                    &mut |to, env| {
                        let _ = peers[to.index()].send(env);
                    },
                );
                let report = DoneReport {
                    stats: cell.stats,
                    pending_frames: cell.pending_frames(),
                    pending_timers: cell.pending_timers(),
                    aware: None,
                };
                if replies
                    .send((id, Reply::Initiated { update, report }))
                    .is_err()
                {
                    return;
                }
            }
            Ctrl::Stop => {
                let _ = replies.send((
                    id,
                    Reply::Stopped {
                        cell: Box::new(cell),
                        mailbox: data,
                    },
                ));
                return;
            }
        }
    }
}

/// A live cluster whose replicas run on OS threads.
///
/// Build one with
/// [`ClusterBuilder::threaded`](crate::ClusterBuilder::threaded); always
/// [`ThreadedCluster::finish`] it (dropping shuts the threads down but
/// discards the report).
pub struct ThreadedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    protocol: Arc<P>,
    filter: Arc<dyn LinkFilter + Send + Sync>,
    slots: Vec<Option<Slot<P::Node>>>,
    data_senders: Vec<Sender<Envelope>>,
    reply_tx: Sender<(PeerId, Reply<P::Node>)>,
    reply_rx: Receiver<(PeerId, Reply<P::Node>)>,
    online: OnlineSet,
    churn: Box<dyn Churn>,
    churn_rng: ChaCha8Rng,
    ctrl_rng: ChaCha8Rng,
    faults: FaultInjector,
    byzantine: Vec<bool>,
    /// Latest per-worker Done snapshot (stats are cumulative).
    snapshots: Vec<DoneReport>,
    rounds_run: u32,
    converged_round: Option<u32>,
    /// The update the convergence probe state belongs to; probing a
    /// different update resets `converged_round`.
    probed_update: Option<UpdateId>,
    seed: u64,
    trace: Option<ConductorTrace>,
}

impl<P> std::fmt::Debug for ThreadedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedCluster")
            .field("population", &self.slots.len())
            .field("rounds_run", &self.rounds_run)
            .finish_non_exhaustive()
    }
}

impl<P> ThreadedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    pub(crate) fn mount(
        scenario: &Scenario,
        protocol: P,
        faults: FaultSpec,
        delay: DelaySpec,
        wire: rumor_wire::WireVersion,
        trace: bool,
    ) -> Self {
        let online = scenario.initial_online_set();
        let (cells, byzantine) =
            crate::builder::build_cells(scenario, &protocol, &online, &faults, delay, wire, trace);
        let population = cells.len();
        let trace = trace.then(|| ConductorTrace::new(&online, population));
        let protocol = Arc::new(protocol);
        let filter: Arc<dyn LinkFilter + Send + Sync> = Arc::from(scenario.link_filter());
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut data_senders = Vec::with_capacity(population);
        let mut mailboxes = Vec::with_capacity(population);
        for _ in 0..population {
            let (tx, rx) = mpsc::channel::<Envelope>();
            data_senders.push(tx);
            mailboxes.push(rx);
        }
        let mut cluster = Self {
            protocol,
            filter,
            slots: Vec::with_capacity(population),
            data_senders,
            reply_tx,
            reply_rx,
            online,
            churn: scenario.make_churn(),
            churn_rng: ChaCha8Rng::seed_from_u64(derive_seed(scenario.seed(), "churn")),
            ctrl_rng: ChaCha8Rng::seed_from_u64(derive_seed(scenario.seed(), "cluster/control")),
            faults: FaultInjector::new(
                faults,
                derive_seed(scenario.seed(), "cluster/fault"),
                population,
            ),
            byzantine,
            snapshots: vec![
                DoneReport {
                    stats: CellStats::default(),
                    pending_frames: 0,
                    pending_timers: 0,
                    aware: None,
                };
                population
            ],
            rounds_run: 0,
            converged_round: None,
            probed_update: None,
            seed: scenario.seed(),
            trace,
        };
        for (cell, mailbox) in cells.into_iter().zip(mailboxes) {
            let slot = cluster.spawn(Box::new(cell), mailbox);
            cluster.slots.push(Some(slot));
        }
        cluster
    }

    fn spawn(&self, cell: Box<NodeCell<P::Node>>, mailbox: Receiver<Envelope>) -> Slot<P::Node> {
        let (ctrl_tx, ctrl_rx) = mpsc::channel();
        let protocol = Arc::clone(&self.protocol);
        let filter = Arc::clone(&self.filter);
        let peers = self.data_senders.clone();
        let replies = self.reply_tx.clone();
        let name = format!("rumor-node-{}", cell.id.as_u32());
        let handle = std::thread::Builder::new()
            .name(name)
            .stack_size(256 * 1024)
            .spawn(move || {
                worker_loop::<P>(*cell, protocol, filter, ctrl_rx, mailbox, peers, replies)
            })
            .expect("spawn cluster node thread");
        Slot::Running {
            ctrl: ctrl_tx,
            handle,
        }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.slots.len()
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// Nodes churn-online and not crashed.
    pub fn online_count(&self) -> usize {
        self.online_peers().len()
    }

    /// Peers that are churn-online and not crashed right now, ascending.
    pub fn online_peers(&self) -> Vec<PeerId> {
        (0..self.slots.len() as u32)
            .map(PeerId::new)
            .filter(|&p| self.effective_online(p))
            .collect()
    }

    fn effective_online(&self, peer: PeerId) -> bool {
        self.online.is_online(peer) && !self.faults.is_down(peer)
    }

    /// Whether `peer` was mounted as a Byzantine member.
    pub fn is_byzantine(&self, peer: PeerId) -> bool {
        self.byzantine.get(peer.index()).copied().unwrap_or(false)
    }

    /// Frames handed to the transport so far (per the last barrier).
    pub fn frames_sent(&self) -> u64 {
        self.snapshots.iter().map(|s| s.stats.sent).sum()
    }

    /// Encoded bytes of [`ThreadedCluster::frames_sent`].
    pub fn bytes_sent(&self) -> u64 {
        self.snapshots.iter().map(|s| s.stats.bytes_sent).sum()
    }

    /// Logical protocol messages inside [`ThreadedCluster::frames_sent`]
    /// (equal to it under wire v1; larger under v2 batch frames).
    pub fn messages_sent(&self) -> u64 {
        self.snapshots.iter().map(|s| s.stats.messages_sent).sum()
    }

    /// True when, as of the last barrier, every frame was consumed, no
    /// timer is armed, and no node is crashed.
    pub fn is_quiescent(&self) -> bool {
        if self.faults.any_down() {
            return false;
        }
        let sent: u64 = self.snapshots.iter().map(|s| s.stats.sent).sum();
        let consumed: u64 = self.snapshots.iter().map(|s| s.stats.consumed()).sum();
        sent == consumed
            && self
                .snapshots
                .iter()
                .all(|s| s.pending_frames == 0 && s.pending_timers == 0)
    }

    /// Waits for one reply from `from`, asserting its variant via
    /// `pick`. No reply from any other peer can be outstanding: the
    /// conductor barriers every tick before issuing new control.
    fn recv_from<T>(&self, from: PeerId, pick: impl Fn(Reply<P::Node>) -> Option<T>) -> T {
        let (id, reply) = self
            .reply_rx
            .recv()
            .expect("cluster worker channel closed unexpectedly");
        assert_eq!(id, from, "unexpected reply sender during control wait");
        pick(reply).unwrap_or_else(|| panic!("unexpected reply variant from {from}"))
    }

    /// Initiates `event` at a random effectively-online node. `None`
    /// when nobody is up.
    pub fn initiate(&mut self, event: &UpdateEvent) -> Option<UpdateId> {
        let candidates: Vec<PeerId> = (0..self.slots.len() as u32)
            .map(PeerId::new)
            .filter(|&p| self.effective_online(p))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let initiator = candidates[self.ctrl_rng.gen_range(0..candidates.len())];
        let round = self.rounds_run;
        let Some(Slot::Running { ctrl, .. }) = &self.slots[initiator.index()] else {
            unreachable!("effective_online excludes crashed nodes");
        };
        ctrl.send(Ctrl::Initiate {
            event: event.clone(),
            round,
        })
        .expect("worker alive");
        let (update, report) = self.recv_from(initiator, |reply| match reply {
            Reply::Initiated { update, report } => Some((update, report)),
            _ => None,
        });
        // Fold the fresh snapshot so `frames_sent` / `is_quiescent`
        // never lag an initiation; the awareness flag still belongs to
        // the last probed tick, so keep the old one.
        let aware = self.snapshots[initiator.index()].aware;
        self.snapshots[initiator.index()] = report;
        self.snapshots[initiator.index()].aware = aware;
        if let Some(trace) = self.trace.as_mut() {
            trace.initiate(round, initiator, update);
        }
        Some(update)
    }

    /// Stops `victim`'s thread, parking its state and mailbox in the
    /// slot (frames keep accumulating in the mailbox while down).
    fn crash(&mut self, victim: PeerId) {
        let slot = self.slots[victim.index()]
            .take()
            .expect("slot always present");
        let Slot::Running { ctrl, handle } = slot else {
            unreachable!("fault injector never crashes a down node");
        };
        ctrl.send(Ctrl::Stop).expect("worker alive");
        let (cell, mailbox) = self.recv_from(victim, |reply| match reply {
            Reply::Stopped { cell, mailbox } => Some((cell, mailbox)),
            _ => None,
        });
        handle.join().expect("crashed worker panicked");
        // The parked cell will miss every barrier while down; fold its
        // final stats now so mid-run accounting keeps the frames it
        // sent since its last Done (e.g. an initiation this round).
        let aware = self.snapshots[victim.index()].aware;
        self.snapshots[victim.index()] = DoneReport {
            stats: cell.stats,
            pending_frames: cell.pending_frames(),
            pending_timers: cell.pending_timers(),
            aware,
        };
        self.slots[victim.index()] = Some(Slot::Crashed { cell, mailbox });
    }

    /// Executes one round across all live workers, with an optional
    /// awareness probe for `probe`.
    pub fn step(&mut self, probe: Option<UpdateId>) {
        if self.rounds_run > 0 {
            self.churn
                .step(self.rounds_run - 1, &mut self.online, &mut self.churn_rng);
        }
        let round = self.rounds_run;
        if let Some(trace) = self.trace.as_mut() {
            trace.round_start(round, &self.online);
        }
        let events = self.faults.step(round);
        if let Some(trace) = self.trace.as_mut() {
            trace.fault_events(round, &events);
        }
        for peer in events.restarts {
            let slot = self.slots[peer.index()].take().expect("slot present");
            let Slot::Crashed { cell, mailbox } = slot else {
                unreachable!("restart of a running node");
            };
            self.slots[peer.index()] = Some(self.spawn(cell, mailbox));
        }
        if let Some(victim) = events.crash {
            self.crash(victim);
        }
        if let Some(update) = probe {
            if self.probed_update != Some(update) {
                // A fresh update is being probed: the previous probe's
                // convergence verdict must not leak into this one.
                self.probed_update = Some(update);
                self.converged_round = None;
            }
        }

        // Broadcast the tick to every running worker…
        let mut ticked = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(Slot::Running { ctrl, .. }) = slot {
                let peer = PeerId::new(i as u32);
                ctrl.send(Ctrl::Tick {
                    round,
                    online: self.online.is_online(peer),
                    probe,
                })
                .expect("worker alive");
                ticked += 1;
            }
        }
        // …and barrier on their Done reports.
        for _ in 0..ticked {
            let (id, reply) = self
                .reply_rx
                .recv()
                .expect("cluster worker channel closed unexpectedly");
            match reply {
                Reply::Done(report) => self.snapshots[id.index()] = report,
                _ => panic!("unexpected non-Done reply from {id} during tick barrier"),
            }
        }
        self.rounds_run += 1;

        if probe.is_some() && self.converged_round.is_none() && self.probe_converged() {
            self.converged_round = Some(round);
        }
    }

    /// Whether the last probed tick saw every effectively-online worker
    /// aware (and at least one online).
    fn probe_converged(&self) -> bool {
        let mut any = false;
        for i in 0..self.slots.len() as u32 {
            let p = PeerId::new(i);
            if self.effective_online(p) {
                any = true;
                if self.snapshots[p.index()].aware != Some(true) {
                    return false;
                }
            }
        }
        any
    }

    /// Runs `n` rounds without probing (the throughput path).
    pub fn run_rounds(&mut self, n: u32) {
        for _ in 0..n {
            self.step(None);
        }
    }

    /// Steps (probing every round) until every online node is aware of
    /// `update` or `max_rounds` elapse; returns the converged round.
    pub fn run_until_all_online_aware(&mut self, update: UpdateId, max_rounds: u32) -> Option<u32> {
        let start = self.rounds_run;
        while self.rounds_run - start < max_rounds {
            self.step(Some(update));
            if self.converged_round.is_some() {
                return self.converged_round;
            }
        }
        None
    }

    /// Gracefully shuts every thread down, reclaims the node states and
    /// folds the run into a [`ClusterReport`] for `update`.
    pub fn finish(self, update: UpdateId) -> ClusterReport {
        self.finish_traced(update, "threaded").0
    }

    /// Like [`ThreadedCluster::finish`], additionally assembling the
    /// captured trace into a canonical [`TraceDoc`] labelled `label`
    /// (conductor events plus every reclaimed cell's buffer), or `None`
    /// when the cluster was not built with
    /// [`ClusterBuilder::traced`](crate::ClusterBuilder::traced).
    pub fn finish_traced(
        mut self,
        update: UpdateId,
        label: &str,
    ) -> (ClusterReport, Option<TraceDoc>) {
        let population = self.slots.len();
        let mut cells: Vec<Box<NodeCell<P::Node>>> = Vec::with_capacity(population);
        for i in 0..population {
            match self.slots[i].take() {
                Some(Slot::Running { ctrl, handle }) => {
                    ctrl.send(Ctrl::Stop).expect("worker alive");
                    let peer = PeerId::new(i as u32);
                    let (cell, _mailbox) = self.recv_from(peer, |reply| match reply {
                        Reply::Stopped { cell, mailbox } => Some((cell, mailbox)),
                        _ => None,
                    });
                    handle.join().expect("cluster worker panicked");
                    cells.push(cell);
                }
                Some(Slot::Crashed { cell, .. }) => cells.push(cell),
                None => unreachable!("slot present until finish"),
            }
        }

        let aware_set: Vec<PeerId> = cells
            .iter()
            .filter(|c| self.protocol.is_aware(&c.node, update))
            .map(|c| c.id)
            .collect();
        let online = (0..population as u32)
            .map(PeerId::new)
            .filter(|&p| self.effective_online(p))
            .count();
        let aware_online = aware_set
            .iter()
            .filter(|&&p| self.effective_online(p))
            .count();
        let report = ClusterReport::fold(
            crate::report::RunOutcome {
                rounds: self.rounds_run,
                crashes: self.faults.crashes,
                restarts: self.faults.restarts,
                online,
                aware_online,
                converged_round: self.converged_round,
                aware_set,
                byzantine: self.byzantine.iter().filter(|&&f| f).count(),
            },
            cells.iter().map(|c| &c.stats),
        );
        let trace = self.trace.as_mut().map(|conductor| {
            let buffers = std::iter::once(conductor.take())
                .chain(cells.iter_mut().map(|c| c.take_trace()))
                .collect::<Vec<_>>();
            TraceDoc::merge(label, self.seed, population as u32, buffers)
        });
        (report, trace)
    }
}

impl<P> Drop for ThreadedCluster<P>
where
    P: Protocol + Send + Sync + 'static,
    P::Node: Send + 'static,
    <P::Node as Node>::Msg: Encode + Decode + Send,
{
    fn drop(&mut self) {
        // Best-effort shutdown for clusters dropped without `finish`
        // (including unwinds): stop every running worker and join it.
        for slot in &mut self.slots {
            if let Some(Slot::Running { ctrl, handle }) = slot.take() {
                let _ = ctrl.send(Ctrl::Stop);
                let _ = handle.join();
            }
        }
    }
}
