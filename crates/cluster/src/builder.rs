//! Mounting a [`Scenario`] + [`Protocol`] into a live cluster.

use crate::byzantine::{byzantine_seed, select_byzantine, ByzantineState};
use crate::cell::{DelaySpec, NodeCell};
use crate::fault::{FaultError, FaultSpec};
use crate::sharded::ShardedCluster;
use crate::threaded::ThreadedCluster;
use crate::virtual_time::VirtualCluster;
use rumor_churn::OnlineSet;
use rumor_net::Node;
use rumor_sim::{Protocol, Scenario};
use rumor_types::{PeerId, SeedSequence};
use rumor_wire::{Decode, Encode, WireVersion};

/// Builds a live cluster from the same declarative [`Scenario`] the
/// simulation harness uses — identical topology draw, initial
/// availability, churn model and loss/partition parameters — plus the
/// cluster-only knobs: thread crash/restart faults and extra delivery
/// delay.
///
/// # Examples
///
/// ```
/// use rumor_cluster::ClusterBuilder;
/// use rumor_core::ProtocolConfig;
/// use rumor_sim::{PaperProtocol, Scenario, UpdateEvent};
/// use rumor_types::DataKey;
///
/// let scenario = Scenario::builder(32, 7).build()?;
/// let config = ProtocolConfig::builder(32)
///     .fanout_absolute(4)
///     .staleness_rounds(6) // periodic pulls repair any push miss
///     .build()?;
/// let mut cluster = ClusterBuilder::new(&scenario)
///     .virtual_time(PaperProtocol::new(config));
/// let event = UpdateEvent { round: 0, key: DataKey::from_name("motd"), delete: false, sequence: 0 };
/// let update = cluster.initiate(&event).expect("someone online");
/// cluster.run_until_all_online_aware(update, 40).expect("converges");
/// assert_eq!(cluster.report(update).decode_errors, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClusterBuilder<'a> {
    scenario: &'a Scenario,
    faults: FaultSpec,
    delay: DelaySpec,
    wire: WireVersion,
    workers: Option<usize>,
    trace: bool,
}

impl<'a> ClusterBuilder<'a> {
    /// Starts a cluster over `scenario`'s environment with no crash
    /// faults and no extra delay.
    pub fn new(scenario: &'a Scenario) -> Self {
        Self {
            scenario,
            faults: FaultSpec::default(),
            delay: DelaySpec::default(),
            wire: WireVersion::default(),
            workers: None,
            trace: false,
        }
    }

    /// Enables structured trace capture (`rumor-obs`): every cell
    /// buffers its message-level events locally and the conductor
    /// records its environment decisions, assembled into a
    /// [`rumor_obs::TraceDoc`] by [`VirtualCluster::take_trace`],
    /// [`ThreadedCluster::finish_traced`] or
    /// [`ShardedCluster::finish_traced`]. Capture consumes no
    /// randomness, so a traced run is bit-identical to an untraced one.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Selects the wire codec version every mounted cell speaks.
    /// [`WireVersion::V1`] — the default — frames one message per frame
    /// and keeps existing seeded runs bit-identical; [`WireVersion::V2`]
    /// coalesces each tick's per-peer traffic into batch frames (one
    /// header amortised over the group) and decodes both versions.
    pub fn wire(mut self, wire: WireVersion) -> Self {
        self.wire = wire;
        self
    }

    /// Installs a crash/restart (and optionally Byzantine) fault plan.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultError`] from [`FaultSpec::validate`] when any
    /// rate or fraction is not a probability or the restart gap is zero
    /// — bad plans are rejected at build time, not silently run.
    pub fn faults(mut self, spec: FaultSpec) -> Result<Self, FaultError> {
        self.faults = spec.validate()?;
        Ok(self)
    }

    /// Installs an extra-delivery-delay plan.
    pub fn delay(mut self, spec: DelaySpec) -> Self {
        self.delay = spec;
        self
    }

    /// Mounts `protocol` into the deterministic single-threaded
    /// virtual-time runtime (the golden-pinnable correctness path).
    pub fn virtual_time<P>(self, protocol: P) -> VirtualCluster<P>
    where
        P: Protocol,
        <P::Node as Node>::Msg: Encode + Decode,
    {
        VirtualCluster::mount(
            self.scenario,
            protocol,
            self.faults,
            self.delay,
            self.wire,
            self.trace,
        )
    }

    /// Sets the worker-thread count for [`ClusterBuilder::sharded`]
    /// (clamped to at least 1 and at most the population at mount).
    /// Defaults to the machine's available parallelism. Ignored by the
    /// other two modes.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Mounts `protocol` onto one OS thread per replica (the real-time
    /// deployment-shaped path, practical to a couple thousand nodes).
    pub fn threaded<P>(self, protocol: P) -> ThreadedCluster<P>
    where
        P: Protocol + Send + Sync + 'static,
        P::Node: Send + 'static,
        <P::Node as Node>::Msg: Encode + Decode + Send,
    {
        ThreadedCluster::mount(
            self.scenario,
            protocol,
            self.faults,
            self.delay,
            self.wire,
            self.trace,
        )
    }

    /// Mounts `protocol` onto a fixed pool of worker threads, each
    /// owning a contiguous shard of replicas (the scale path — 10k+
    /// live replicas on one machine). Worker count via
    /// [`ClusterBuilder::workers`].
    pub fn sharded<P>(self, protocol: P) -> ShardedCluster<P>
    where
        P: Protocol + Send + Sync + 'static,
        P::Node: Send + 'static,
        <P::Node as Node>::Msg: Encode + Decode + Send,
    {
        ShardedCluster::mount(
            self.scenario,
            protocol,
            self.faults,
            self.delay,
            self.wire,
            self.workers,
            self.trace,
        )
    }
}

/// Spawns the scenario's node population into cells: one node per peer
/// (same topology row and round-0 availability the driver would hand
/// out) with per-node RNG substreams derived under the `"cluster/node"`
/// and `"cluster/link"` namespaces. The fault plan's Byzantine fraction
/// is selected here (its own `"cluster/byzantine"` substream — zero
/// draws when empty) and mounted on the chosen cells; the returned flag
/// vector records who is adversarial.
pub(crate) fn build_cells<P: Protocol>(
    scenario: &Scenario,
    protocol: &P,
    online: &OnlineSet,
    faults: &FaultSpec,
    delay: DelaySpec,
    wire: WireVersion,
    trace: bool,
) -> (Vec<NodeCell<P::Node>>, Vec<bool>)
where
    <P::Node as Node>::Msg: Encode + Decode,
{
    let mut node_seeds = SeedSequence::new(scenario.seed(), "cluster/node");
    let mut link_seeds = SeedSequence::new(scenario.seed(), "cluster/link");
    let flags = select_byzantine(scenario.seed(), scenario.population(), &faults.byzantine);
    let cells = scenario
        .adjacency()
        .into_iter()
        .enumerate()
        .map(|(i, known)| {
            let id = PeerId::new(i as u32);
            let node = protocol.spawn(id, known, online.is_online(id));
            let mut cell = NodeCell::new(
                id,
                node,
                node_seeds.next_seed(),
                link_seeds.next_seed(),
                delay,
            );
            cell.set_wire(wire);
            if trace {
                cell.enable_trace(protocol.trace_msg_kind());
            }
            if flags[i] {
                cell.set_byzantine(ByzantineState::new(
                    faults.byzantine.behaviour,
                    byzantine_seed(scenario.seed(), i as u64),
                    protocol.byzantine_liar(),
                ));
            }
            cell
        })
        .collect();
    (cells, flags)
}
